//! Non-ideality sensitivity study: variation level × wire resistance.
//!
//! ```text
//! cargo run --release --example nonideal_study
//! ```
//!
//! Sweeps the two device/circuit non-idealities the paper studies —
//! conductance variation and interconnect segment resistance — on a fixed
//! Wishart workload, printing the error grid for the original AMC and the
//! one-stage BlockAMC. This extends the paper's two operating points
//! (σ = 0.05, r = 1 Ω) into a full sensitivity map.

use amc_circuit::interconnect::InterconnectModel;
use amc_circuit::opamp::OpAmpSpec;
use amc_circuit::sim::SimConfig;
use amc_device::mapping::MappingConfig;
use amc_device::variation::VariationModel;
use amc_linalg::{generate, lu, metrics};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{SolverConfig, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let trials = 8;
    let sigmas = [0.0, 0.01, 0.02, 0.05, 0.10];
    let wires = [0.0, 0.5, 1.0, 2.0, 5.0];

    println!("mean relative error over {trials} trials, {n}x{n} Wishart");
    println!("rows: variation σ_rel; columns: wire resistance (Ω/segment)\n");

    for (label, stages) in [
        ("Original AMC", Stages::Original),
        ("BlockAMC", Stages::One),
    ] {
        println!("{label}:");
        print!("{:>7}", "σ \\ r");
        for w in wires {
            print!(" {w:>9.1}");
        }
        println!();
        for sigma in sigmas {
            print!("{sigma:>7.2}");
            for wire in wires {
                let config = CircuitEngineConfig {
                    mapping: MappingConfig::paper_default(),
                    variation: if sigma == 0.0 {
                        VariationModel::None
                    } else {
                        VariationModel::Proportional { sigma_rel: sigma }
                    },
                    sim: SimConfig {
                        opamp: OpAmpSpec::ideal(),
                        interconnect: if wire == 0.0 {
                            InterconnectModel::Ideal
                        } else {
                            InterconnectModel::SeriesApprox { r_segment: wire }
                        },
                        check_saturation: false,
                        settle_epsilon: 1e-3,
                    },
                };
                let mut errs = Vec::new();
                for trial in 0..trials {
                    let mut rng = ChaCha8Rng::seed_from_u64(100 + trial);
                    let a = generate::wishart_default(n, &mut rng)?;
                    let b = generate::random_vector(n, &mut rng);
                    let x_ref = lu::solve(&a, &b)?;
                    let engine = CircuitEngine::new(config, 1000 + trial);
                    let mut solver = SolverConfig::builder().stages(stages).build(engine)?;
                    if let Ok(r) = solver.solve(&a, &b) {
                        errs.push(metrics::relative_error(&x_ref, &r.x));
                    }
                }
                let stats = metrics::ErrorStats::from_samples(&errs);
                print!(" {:>9.4}", stats.mean);
            }
            println!();
        }
        println!();
    }
    println!(
        "reading guide: the σ = 0.00 row isolates the wire-resistance error;\n\
         the r = 0.0 column isolates variation. BlockAMC's advantage grows\n\
         toward the bottom-right (both non-idealities at once), matching\n\
         the paper's Fig. 9 conclusion."
    );
    Ok(())
}

//! Quickstart: solve a linear system with the one-stage BlockAMC solver.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small Wishart system, solves it three ways — exact digital LU,
//! an ideal analog BlockAMC, and a noisy analog BlockAMC with the paper's
//! 5% conductance variation — and prints the relative errors. Then shows
//! the point of the prepare/solve split: many right-hand sides against
//! one programmed set of arrays.

use amc_linalg::{generate, lu, metrics};
use blockamc::engine::{AmcEngine, CircuitEngine, CircuitEngineConfig, NumericEngine};
use blockamc::solver::{SolverConfig, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let a = generate::wishart_default(n, &mut rng)?;
    let b = generate::random_vector(n, &mut rng);

    // Reference: exact digital solve.
    let x_ref = lu::solve(&a, &b)?;
    println!("solving a {n}x{n} Wishart system A·x = b\n");

    // BlockAMC with the exact numeric engine (algorithm check).
    let mut digital = SolverConfig::builder()
        .stages(Stages::One)
        .build(NumericEngine::new())?;
    let r = digital.solve(&a, &b)?;
    println!(
        "BlockAMC + numeric engine : rel. error {:.3e} ({} INV + {} MVM ops)",
        metrics::relative_error(&x_ref, &r.x),
        r.stats_delta.inv_ops,
        r.stats_delta.mvm_ops,
    );

    // BlockAMC on an ideal analog stack (devices + circuits, no noise).
    let mut ideal = SolverConfig::builder()
        .stages(Stages::One)
        .build(CircuitEngine::new(CircuitEngineConfig::ideal(), 1))?;
    let r = ideal.solve(&a, &b)?;
    println!(
        "BlockAMC + ideal circuit  : rel. error {:.3e}",
        metrics::relative_error(&x_ref, &r.x)
    );

    // BlockAMC with the paper's device variation (5% write accuracy).
    let mut noisy = SolverConfig::builder()
        .stages(Stages::One)
        .build(CircuitEngine::new(
            CircuitEngineConfig::paper_variation(),
            1,
        ))?;
    let r = noisy.solve(&a, &b)?;
    let err = metrics::relative_error(&x_ref, &r.x);
    println!("BlockAMC + 5% variation   : rel. error {err:.3e}");
    println!(
        "\nanalog cost of the noisy solve: {:.1} ns settling, {:.2} nJ",
        r.stats_delta.analog_time_s * 1e9,
        r.stats_delta.analog_energy_j * 1e9,
    );
    println!("first solution entries: {:?}", &r.x[..4.min(n)]);

    // The paper's amortization (§III.B): matrices live in nonvolatile
    // arrays, so program once with `prepare` and stream right-hand sides
    // through the `PreparedSolver` — zero reprogramming per solve.
    let mut prepared = noisy.prepare(&a)?;
    let programmed = prepared.engine().stats().program_ops;
    let batch: Vec<Vec<f64>> = (0..8)
        .map(|_| generate::random_vector(n, &mut rng))
        .collect();
    let solutions = prepared.solve_batch(&batch)?;
    let reprogrammed = prepared.engine().stats().program_ops - programmed;
    println!(
        "\nprepared solver: {} right-hand sides solved on one programming \
         pass ({reprogrammed} arrays reprogrammed during the batch)",
        solutions.len(),
    );
    Ok(())
}

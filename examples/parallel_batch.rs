//! Sharded batch solving: one Poisson system, 64 right-hand sides,
//! four macro replicas.
//!
//! ```text
//! cargo run --release --example parallel_batch
//! ```
//!
//! A discretized 1-D Poisson operator is prepared (programmed) once;
//! the batch API then solves 64 load vectors against it. The parallel
//! path replicates the prepared solver across 4 workers and shards the
//! batch over the `amc-par` work-stealing pool — output is bit-identical
//! to the serial path by construction, and the measured wall-clock
//! speedup tracks the host's core count. The macro-model timing shows
//! the architectural speedup of four independently-programmed macro
//! instances regardless of host.

use amc_circuit::opamp::OpAmpSpec;
use amc_linalg::generate;
use blockamc::batch::{solve_batch, solve_batch_parallel};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{SolverConfig, Stages};
use std::time::Instant;

const WORKERS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let k = 64;
    let a = generate::poisson_1d(n)?;
    let h = 1.0 / (n as f64 + 1.0);
    // 64 load cases: point loads sweeping across the domain.
    let batch: Vec<Vec<f64>> = (0..k)
        .map(|load| {
            let mut b = vec![0.0; n];
            b[load % n] = h * h;
            b
        })
        .collect();

    println!("1-D Poisson, {n} interior points, {k} load cases, {WORKERS} workers");
    println!("host cores: {}\n", amc_par::available_workers());

    let config = CircuitEngineConfig::paper_variation();
    let build = || {
        SolverConfig::builder()
            .stages(Stages::One)
            .capture_trace(false)
            .build(CircuitEngine::new(config, 11))
    };

    let mut serial_solver = build()?;
    let t0 = Instant::now();
    let serial = solve_batch(&mut serial_solver, &a, &batch, &OpAmpSpec::ideal(), 0.0)?;
    let serial_s = t0.elapsed().as_secs_f64();

    let mut parallel_solver = build()?;
    let t0 = Instant::now();
    let parallel = solve_batch_parallel(
        &mut parallel_solver,
        &a,
        &batch,
        &OpAmpSpec::ideal(),
        0.0,
        WORKERS,
    )?;
    let parallel_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        serial.solutions, parallel.solutions,
        "sharding must be invisible in the output"
    );
    println!("serial   : {:>8.2} ms wall", serial_s * 1e3);
    println!(
        "parallel : {:>8.2} ms wall ({:.2}x measured speedup)",
        parallel_s * 1e3,
        serial_s / parallel_s
    );
    println!("outputs  : bit-identical across {k} solutions\n");

    println!("macro-model analog time for this batch:");
    println!(
        "  1 pipelined macro : {:.3e} s",
        serial.batch_time_pipelined_s
    );
    println!(
        "  {WORKERS} sharded macros  : {:.3e} s ({:.2}x architectural speedup)",
        parallel.batch_time_parallel_s(WORKERS),
        serial.batch_time_pipelined_s / parallel.batch_time_parallel_s(WORKERS)
    );
    Ok(())
}

//! Solving a 1-D Poisson boundary-value problem with BlockAMC.
//!
//! ```text
//! cargo run --release --example poisson_solver
//! ```
//!
//! Discretizing `−u''(t) = f(t)` on `[0, 1]` with zero boundary values
//! gives the SPD Toeplitz system `tridiag(−1, 2, −1)·u = h²·f` — the
//! classic scientific-computing workload the paper's introduction
//! motivates. It is also a *hard* analog workload: the condition number
//! grows as `(n/π)²`, so conductance noise is strongly amplified. This
//! example shows (a) how the analog error tracks the conditioning, and
//! (b) the paper's remedy — use the analog result as a seed and polish it
//! with a few digital refinement iterations.

use amc_circuit::sim::SimConfig;
use amc_device::mapping::MappingConfig;
use amc_device::variation::VariationModel;
use amc_linalg::{generate, lu, metrics};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
use blockamc::refine::refine_with_cg;
use blockamc::solver::{SolverConfig, Stages};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32; // interior grid points; κ ≈ (n/π)² ≈ 104
    let h = 1.0 / (n as f64 + 1.0);
    let a = generate::poisson_1d(n)?;

    // Source term: a step load f(t) = 1 for t < 1/2, −1 otherwise.
    // (Deliberately *not* a sine: sampled sines are exact eigenvectors of
    // the discrete Laplacian, which makes cold-started CG converge in one
    // iteration and would hide the seed's value.)
    let f: Vec<f64> = (1..=n)
        .map(|i| if (i as f64) * h < 0.5 { 1.0 } else { -1.0 })
        .collect();
    let b: Vec<f64> = f.iter().map(|v| v * h * h).collect();
    let u_ref = lu::solve(&a, &b)?;

    println!("1-D Poisson, {n} interior points (tridiagonal SPD Toeplitz)\n");

    // Algorithm check with the exact engine.
    let mut digital = SolverConfig::builder()
        .stages(Stages::One)
        .build(NumericEngine::new())?;
    println!(
        "BlockAMC + numeric engine: rel. error {:.3e}",
        metrics::relative_error(&u_ref, &digital.solve(&a, &b)?.x)
    );

    // Analog error vs write accuracy: conditioning amplifies the noise.
    println!("\nanalog rel. error vs device write accuracy (one-stage BlockAMC):");
    for sigma in [0.001, 0.005, 0.01, 0.05] {
        let config = CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::Proportional { sigma_rel: sigma },
            sim: SimConfig::ideal(),
        };
        let engine = CircuitEngine::new(config, 3);
        let mut solver = SolverConfig::builder().stages(Stages::One).build(engine)?;
        let r = solver.solve(&a, &b)?;
        println!(
            "  σ_rel = {sigma:>5.3}: rel. error {:.3e}",
            metrics::relative_error(&u_ref, &r.x)
        );
    }

    // The paper's remedy: analog seed + digital refinement.
    let config = CircuitEngineConfig {
        mapping: MappingConfig::paper_default(),
        variation: VariationModel::Proportional { sigma_rel: 0.01 },
        sim: SimConfig::ideal(),
    };
    let engine = CircuitEngine::new(config, 3);
    let mut solver = SolverConfig::builder().stages(Stages::One).build(engine)?;
    let seed = solver.solve(&a, &b)?.x;
    let refined = refine_with_cg(&a, &b, &seed, 1e-12, 100_000)?;
    println!(
        "\nanalog seed (σ=0.01) + CG polish: {} iterations \
         (vs {} from a zero start), final rel. error {:.3e}",
        refined.iterations_with_seed,
        refined.iterations_cold,
        metrics::relative_error(&u_ref, &refined.x)
    );
    if refined.iterations_with_seed >= refined.iterations_cold {
        println!(
            "note: on this ill-conditioned system the noisy seed does NOT\n\
             help CG — the analog noise injects rough error modes that CG\n\
             removes slowly, while the zero start only needs the smooth\n\
             modes of the load. This is exactly why the paper stresses\n\
             *accuracy* of the seed: BlockAMC's error advantage over the\n\
             original AMC translates directly into refinement savings\n\
             (compare examples/preconditioner.rs on a well-conditioned\n\
             Wishart system, where the seed does pay off)."
        );
    }

    println!("\n   t      u_digital  u_refined");
    for frac in [0.25, 0.5, 0.75] {
        let i = ((n as f64) * frac) as usize;
        let t = (i + 1) as f64 * h;
        println!("  {t:.2}   {:>9.5}  {:>9.5}", u_ref[i], refined.x[i]);
    }
    Ok(())
}

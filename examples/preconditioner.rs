//! AMC as a seed solution for digital iterative refinement.
//!
//! ```text
//! cargo run --release --example preconditioner
//! ```
//!
//! The paper positions analog matrix computing as a *seed/preconditioner*
//! for digital iterative methods (§IV). This example measures that
//! pipeline end to end: solve with the analog BlockAMC (fast, ~5–10%
//! accurate), hand the seed to conjugate gradients, and count how many
//! digital iterations the analog pass saves at several accuracy targets.

use amc_linalg::{generate, lu, metrics};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::refine::{refine_with_cg, seed_quality};
use blockamc::solver::{SolverConfig, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 96;
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let a = generate::wishart_default(n, &mut rng)?;
    let b = generate::random_vector(n, &mut rng);
    let x_ref = lu::solve(&a, &b)?;

    // Analog pass.
    let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 8);
    let mut solver = SolverConfig::builder().stages(Stages::One).build(engine)?;
    let analog = solver.solve(&a, &b)?;
    let seed_res = seed_quality(&a, &b, &analog.x)?;
    println!(
        "{n}x{n} Wishart system; analog BlockAMC seed: rel. error {:.3e}, \
         relative residual {seed_res:.3e}",
        metrics::relative_error(&x_ref, &analog.x)
    );
    println!(
        "analog cost: {:.1} ns settling, {:.2} nJ\n",
        analog.stats_delta.analog_time_s * 1e9,
        analog.stats_delta.analog_energy_j * 1e9
    );

    println!("digital CG iterations to reach a target residual:");
    println!(
        "{:>12} {:>12} {:>12} {:>8}",
        "tolerance", "cold start", "analog seed", "saved"
    );
    for tol in [1e-4, 1e-6, 1e-8, 1e-10] {
        let outcome = refine_with_cg(&a, &b, &analog.x, tol, 100_000)?;
        println!(
            "{tol:>12.0e} {:>12} {:>12} {:>8}",
            outcome.iterations_cold,
            outcome.iterations_with_seed,
            outcome.iterations_saved()
        );
    }
    println!(
        "\nthe analog seed buys a constant head start (its ~{:.0}% accuracy),\n\
         which matters most at loose tolerances — exactly the regime where\n\
         a preconditioner pays for itself every solve.",
        100.0 * seed_res
    );
    Ok(())
}

//! Stuck-at fault tolerance of the AMC solvers.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
//!
//! The paper's motivation names cell yield as a scalability barrier:
//! "memory cells may get stuck in the ON or OFF state, losing the
//! tunability of conductance states". This example injects stuck-at
//! faults at increasing rates and compares how gracefully the original
//! AMC and BlockAMC degrade — an experiment the paper motivates but does
//! not run.

use amc_circuit::sim::SimConfig;
use amc_device::faults::FaultModel;
use amc_device::mapping::MappingConfig;
use amc_device::variation::VariationModel;
use amc_linalg::{generate, lu, metrics};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{SolverConfig, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 48;
    let trials = 10;
    let rates = [0.0, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2];

    println!(
        "stuck-at fault sweep, {n}x{n} Wishart, {trials} trials \
         (half stuck-ON at g_max, half stuck-OFF at 0)\n"
    );
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "fault rate", "Original AMC", "One-stage", "Two-stage"
    );

    for rate in rates {
        let mut cols = Vec::new();
        for stages in [Stages::Original, Stages::One, Stages::Two] {
            let mut errs = Vec::new();
            for t in 0..trials {
                let mut rng = ChaCha8Rng::seed_from_u64(500 + t);
                let a = generate::wishart_default(n, &mut rng)?;
                let b = generate::random_vector(n, &mut rng);
                let x_ref = lu::solve(&a, &b)?;
                let mut mapping = MappingConfig::paper_default();
                mapping.faults = FaultModel::new(rate / 2.0, rate / 2.0, mapping.g_max, 0.0)?;
                let config = CircuitEngineConfig {
                    mapping,
                    variation: VariationModel::Proportional { sigma_rel: 0.05 },
                    sim: SimConfig::ideal(),
                };
                let engine = CircuitEngine::new(config, 900 + t);
                let mut solver = SolverConfig::builder().stages(stages).build(engine)?;
                if let Ok(r) = solver.solve(&a, &b) {
                    let e = metrics::relative_error(&x_ref, &r.x);
                    if e.is_finite() {
                        errs.push(e);
                    }
                }
            }
            cols.push(metrics::ErrorStats::from_samples(&errs).median);
        }
        println!(
            "{rate:>10.0e} {:>16.4} {:>16.4} {:>16.4}",
            cols[0], cols[1], cols[2]
        );
    }

    println!(
        "\na stuck-ON cell injects a full-scale matrix error (g_max ≈ 1.5·G0),\n\
         so tolerance is set by how much of the matrix one array carries:\n\
         smaller BlockAMC blocks mean each fault corrupts a smaller share\n\
         of the computation — and a bad array can be remapped individually."
    );
    Ok(())
}

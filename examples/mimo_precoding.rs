//! Massive-MIMO zero-forcing precoding with BlockAMC.
//!
//! ```text
//! cargo run --release --example mimo_precoding
//! ```
//!
//! One of the motivating applications for in-memory INV circuits is
//! massive-MIMO precoding (Zuo, Sun & Huang, IEEE TCAS-II 2023 — the
//! paper's ref. [9]): the zero-forcing precoder solves
//! `(H·Hᴴ)·w = s` for every symbol vector `s`, where `H` is the
//! `K x M` downlink channel matrix (K users, M antennas).
//!
//! Complex matrices are handled with the standard real embedding
//! `[[Re, −Im], [Im, Re]]`, which doubles the dimension — exactly the
//! kind of larger-than-one-array problem BlockAMC targets. The Gram
//! matrix `H·Hᴴ` of an i.i.d. channel is a Wishart matrix, tying this
//! example directly to the paper's benchmark family.

use amc_linalg::{generate, lu, metrics, vector, Matrix};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{SolverConfig, Stages};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds the real embedding `[[Re, −Im], [Im, Re]]` of a complex matrix
/// given as (real, imaginary) parts.
fn real_embedding(re: &Matrix, im: &Matrix) -> Matrix {
    let neg_im = im.scaled(-1.0);
    Matrix::from_blocks(re, &neg_im, im, re).expect("blocks tile")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 users, 32 antennas: a small but representative downlink.
    let users = 8;
    let antennas = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    // i.i.d. Rayleigh channel H = Hr + j·Hi (K x M).
    let hr = generate::gaussian(users, antennas, &mut rng).scaled(1.0 / (antennas as f64).sqrt());
    let hi = generate::gaussian(users, antennas, &mut rng).scaled(1.0 / (antennas as f64).sqrt());

    // Gram matrix G = H·Hᴴ (K x K complex):
    //   Re(G) = Hr·Hrᵀ + Hi·Hiᵀ,  Im(G) = Hi·Hrᵀ − Hr·Hiᵀ.
    let re_g = &hr.matmul(&hr.transpose())? + &hi.matmul(&hi.transpose())?;
    let im_g = &hi.matmul(&hr.transpose())? - &hr.matmul(&hi.transpose())?;
    let gram = real_embedding(&re_g, &im_g); // 2K x 2K real system

    // Random QPSK-ish symbol vector s (real embedding of K complex symbols).
    let s: Vec<f64> = (0..2 * users)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();

    println!(
        "zero-forcing precoding: {} users x {} antennas (real system {}x{})\n",
        users,
        antennas,
        2 * users,
        2 * users
    );

    // Digital reference.
    let w_ref = lu::solve(&gram, &s)?;

    // Analog BlockAMC precoder with the paper's variation level. The
    // Gram matrix is programmed once (`prepare`) and reused for every
    // symbol vector of the coherence interval — the paper's §III.B
    // amortization, which is exactly the MIMO traffic pattern.
    let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 9);
    let mut solver = SolverConfig::builder().stages(Stages::One).build(engine)?;
    let mut precoder = solver.prepare(&gram)?;
    let report = precoder.solve(&s)?;
    let err = metrics::relative_error(&w_ref, &report.x);
    println!("analog precoder rel. error vs digital ZF: {err:.3e}");

    // What matters for MIMO: the residual inter-user interference after
    // applying the analog precoding weights, ‖G·w − s‖ per user.
    let received = gram.matvec(&report.x)?;
    let interference = vector::norm2(&vector::sub(&received, &s)) / vector::norm2(&s);
    println!("normalized residual interference     : {interference:.3e}");

    // And the analog latency advantage: one BlockAMC pass vs an O(K³)
    // digital factorization per coherence interval.
    println!(
        "analog settle time for the solve     : {:.1} ns",
        report.stats_delta.analog_time_s * 1e9
    );

    // Stream further symbol vectors through the same programmed arrays.
    let symbols: Vec<Vec<f64>> = (0..4)
        .map(|_| {
            (0..2 * users)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect()
        })
        .collect();
    let weights = precoder.solve_batch(&symbols)?;
    println!(
        "streamed {} more symbol vectors, zero arrays reprogrammed",
        weights.len()
    );

    // The seed can be polished by a few digital refinement steps (the
    // paper's positioning of AMC as a preconditioner).
    let outcome = blockamc::refine::refine_with_cg(&gram, &s, &report.x, 1e-12, 10_000)?;
    println!(
        "digital CG polish: {} iterations with the analog seed vs {} cold",
        outcome.iterations_with_seed, outcome.iterations_cold
    );
    Ok(())
}

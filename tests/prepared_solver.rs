//! Integration tests of the builder facade: prepare/solve split,
//! per-level signal plans, and the amortization guarantee.
//!
//! The headline physical claim of the redesign: a multi-RHS workload
//! driven through [`blockamc::solver::PreparedSolver`] programs each
//! array exactly once (`EngineStats::program_ops` stays flat across
//! solves), and repeated solves see one fixed variation draw — the
//! paper's §III.B amortization of nonvolatile array programming.

use amc_linalg::{generate, lu, metrics, vector, Matrix};
use blockamc::converter::{Converter, IoConfig};
use blockamc::engine::{AmcEngine, CircuitEngine, CircuitEngineConfig, NumericEngine};
use blockamc::solver::{LevelIo, SignalPlan, SolverConfig, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = generate::wishart_default(n, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);
    (a, b)
}

/// Diagonally dominant matrix and RHS with exactly-representable
/// entries (same construction as `tests/io_signal_paths.rs`), so
/// snapshot expectations are exact on every IEEE-754 platform.
fn dyadic_workload(n: usize) -> (Matrix, Vec<f64>) {
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            4.0
        } else {
            ((i * 3 + j * 5) % 7) as f64 * 0.125 - 0.375
        }
    });
    let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 * 0.25 - 0.5).collect();
    (a, b)
}

#[test]
fn multi_rhs_workload_programs_each_array_exactly_once() {
    // Acceptance criterion: many right-hand sides, one programming pass.
    let (a, _) = workload(16, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let batch: Vec<Vec<f64>> = (0..16)
        .map(|_| generate::random_vector(16, &mut rng))
        .collect();
    for (stages, arrays) in [(Stages::One, 4), (Stages::Two, 16)] {
        let mut solver = SolverConfig::builder()
            .stages(stages)
            .build(NumericEngine::new())
            .unwrap();
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.engine().stats().program_ops, arrays, "{stages:?}");
        let solutions = prepared.solve_batch(&batch).unwrap();
        assert_eq!(
            prepared.engine().stats().program_ops,
            arrays,
            "{stages:?}: solving must not reprogram"
        );
        for (b, x) in batch.iter().zip(&solutions) {
            let x_ref = lu::solve(&a, b).unwrap();
            assert!(vector::approx_eq(x, &x_ref, 1e-8), "{stages:?}");
        }
    }
}

#[test]
fn program_ops_stay_flat_across_repeated_solves() {
    // Per-solve stats deltas report zero programming, under both engines.
    let (a, b) = workload(12, 3);
    let mut numeric = SolverConfig::builder()
        .stages(Stages::One)
        .build(NumericEngine::new())
        .unwrap();
    let mut prepared = numeric.prepare(&a).unwrap();
    for _ in 0..5 {
        let r = prepared.solve(&b).unwrap();
        assert_eq!(r.stats_delta.program_ops, 0);
        assert_eq!(r.stats_delta.inv_ops, 3);
        assert_eq!(r.stats_delta.mvm_ops, 2);
    }

    let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 7);
    let mut analog = SolverConfig::builder()
        .stages(Stages::Two)
        .build(engine)
        .unwrap();
    let mut prepared = analog.prepare(&a).unwrap();
    let baseline = prepared.engine().stats().program_ops;
    let first = prepared.solve(&b).unwrap().x;
    for _ in 0..3 {
        // One variation draw: repeated solves are bit-identical.
        assert_eq!(prepared.solve(&b).unwrap().x, first);
    }
    assert_eq!(prepared.engine().stats().program_ops, baseline);
}

#[test]
fn prepared_solve_is_bit_identical_to_the_reprogramming_facade() {
    // For an identically-seeded engine, going through prepare() once
    // must consume the same variation stream as the convenience solve.
    let (a, b) = workload(16, 4);
    let config = CircuitEngineConfig::paper_variation();
    let mut via_solve = SolverConfig::builder()
        .stages(Stages::One)
        .build(CircuitEngine::new(config, 11))
        .unwrap();
    let x_solve = via_solve.solve(&a, &b).unwrap().x;
    let mut via_prepare = SolverConfig::builder()
        .stages(Stages::One)
        .build(CircuitEngine::new(config, 11))
        .unwrap();
    let x_prepare = via_prepare.prepare(&a).unwrap().solve(&b).unwrap().x;
    assert_eq!(x_solve, x_prepare);
}

/// The non-ideal signal path of `tests/io_signal_paths.rs`: asymmetric
/// converters plus S&H droop, so any dropped or doubled hop moves the
/// snapshot.
fn nonideal_io() -> IoConfig {
    IoConfig {
        dac: Some(Converter::new(8, 1.0).unwrap()),
        adc: Some(Converter::new(6, 1.0).unwrap()),
        sh_droop: 0.0625,
    }
}

#[test]
fn facade_one_and_two_stage_match_module_apis_under_nonideal_io() {
    // The builder facade routes everything through the partition tree;
    // these pins prove the tree reproduces the legacy module paths
    // bit-for-bit *including* the quantized/drooped signal paths.
    let (a, b) = dyadic_workload(8);

    let mut engine = NumericEngine::new();
    let mut prep = blockamc::one_stage::prepare_matrix(&mut engine, &a).unwrap();
    let module_one = blockamc::one_stage::solve(&mut engine, &mut prep, &b, &nonideal_io())
        .unwrap()
        .x;
    let mut facade_one = SolverConfig::builder()
        .stages(Stages::One)
        .io(nonideal_io())
        .build(NumericEngine::new())
        .unwrap();
    assert_eq!(facade_one.solve(&a, &b).unwrap().x, module_one);

    let mut engine = NumericEngine::new();
    let mut prep = blockamc::two_stage::prepare(&mut engine, &a).unwrap();
    let module_two = blockamc::two_stage::solve(&mut engine, &mut prep, &b, &nonideal_io())
        .unwrap()
        .x;
    let mut facade_two = SolverConfig::builder()
        .stages(Stages::Two)
        .io(nonideal_io())
        .build(NumericEngine::new())
        .unwrap();
    assert_eq!(facade_two.solve(&a, &b).unwrap().x, module_two);
}

#[test]
fn depth3_cascade_with_bus_entry_at_level1_snapshot() {
    // Acceptance criterion: a depth-3 cascade whose level-1 boundary
    // crosses the data bus runs through the facade. The workload is
    // dyadic and the engine exact, so the solution is pinned to the
    // bit; a dropped or doubled ADC→DAC hop at level 1 moves it.
    let (a, b) = dyadic_workload(8);
    let plan = SignalPlan::pure().with_level(1, LevelIo::Bus(nonideal_io()));
    let mut solver = SolverConfig::builder()
        .stages(Stages::Multi(3))
        .signal_plan(plan)
        .build(NumericEngine::new())
        .unwrap();
    let mut prepared = solver.prepare(&a).unwrap();
    assert_eq!(prepared.depth(), 3);
    let r = prepared.solve(&b).unwrap();
    // The pure root cascade records its five steps; the bus sits one
    // level below it.
    assert_eq!(r.trace.as_ref().map(Vec::len), Some(5));
    let expected = [
        -0.12698412698412698,
        -0.031746031746031744,
        0.12698412698412698,
        -0.06349206349206349,
        0.06349206349206349,
        -0.12698412698412698,
        0.0,
        0.12698412698412698,
    ];
    assert_eq!(r.x, expected, "level-1 bus snapshot moved");
    // Sanity: the coarse 6-bit hops perturb but do not destroy the
    // solution.
    let x_ref = lu::solve(&a, &b).unwrap();
    let err = metrics::relative_error(&x_ref, &r.x);
    assert!(err > 1e-6 && err < 0.5, "err={err}");
}

#[test]
fn deep_paper_plan_applies_converters_at_every_level() {
    // A depth-3 paper plan ([Bus, Bus, Macro]) must quantize harder
    // than a depth-3 plan with converters only at the root, which in
    // turn beats an unconverted (pure) plan — each additional
    // bus/macro level adds ADC→DAC hops.
    let (a, b) = workload(16, 9);
    let x_ref = lu::solve(&a, &b).unwrap();
    let io = IoConfig {
        dac: Some(Converter::new(10, 4.0).unwrap()),
        adc: Some(Converter::new(10, 4.0).unwrap()),
        sh_droop: 0.0,
    };
    let err_with = |plan: SignalPlan| {
        let mut solver = SolverConfig::builder()
            .stages(Stages::Multi(3))
            .signal_plan(plan)
            .build(NumericEngine::new())
            .unwrap();
        metrics::relative_error(&x_ref, &solver.solve(&a, &b).unwrap().x)
    };
    let pure = err_with(SignalPlan::pure());
    let root_only = err_with(SignalPlan::from_levels(vec![LevelIo::Macro(io)]));
    let full_paper = err_with(SignalPlan::paper(3, io));
    assert!(pure < 1e-10, "pure plan is exact: {pure}");
    assert!(root_only > 1e-6, "root converters quantize: {root_only}");
    assert!(
        full_paper > root_only,
        "per-level hops must add error: {full_paper} vs {root_only}"
    );
}

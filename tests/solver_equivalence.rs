//! Solver-equivalence properties for the unified execution core.
//!
//! After the refactor, `one_stage` and `two_stage` are thin wrappers
//! over the recursive cascade in `multi_stage`. These properties pin
//! the equivalences that refactor promised: with an ideal signal path
//! and identically-seeded engines, the wrappers produce **bit-identical**
//! results to the equivalent shallow partition trees —
//!
//! * `one_stage` ≡ `multi_stage` at depth 1 (natural-size MVM blocks),
//! * `two_stage` ≡ `multi_stage` with the paper layout at depth 2
//!   (quadrant-tiled MVM blocks),
//!
//! under both the exact `NumericEngine` and the analog `CircuitEngine`
//! (where bit-identity additionally requires that both sides program
//! the same arrays in the same order, consuming the same variation
//! draws from a fixed RNG seed).
//!
//! The builder facade (`SolverConfig::builder()` →
//! `BlockAmcSolver::prepare` → `PreparedSolver::solve`) routes every
//! architecture through the partition tree, so the same pinning applies
//! one layer up: the facade must be bit-identical to the legacy module
//! APIs it replaced.
//!
//! The open engine-backend API adds two more equivalences at the same
//! strength: the cache-blocked digital backend is bit-identical to the
//! exact numeric reference at every panel width, and the whole cascade
//! through a type-erased `Box<dyn AmcEngine>` is bit-identical to the
//! concrete engine it wraps.

use blockamc::converter::IoConfig;
use blockamc::engine::{
    AmcEngine, BlockedNumericEngine, CircuitEngine, CircuitEngineConfig, NumericEngine,
};
use blockamc::multi_stage::PartitionPlan;
use blockamc::solver::{SolverConfig, Stages};
use blockamc::{multi_stage, one_stage, two_stage};

use amc_linalg::{generate, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a well-conditioned SPD system of size 4..=20 derived from
/// a seed (so failures reproduce from the seed alone).
fn workload() -> impl Strategy<Value = (Matrix, Vec<f64>, u64)> {
    (4usize..=20, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b, seed)
    })
}

fn one_stage_x<E: AmcEngine>(mut engine: E, a: &Matrix, b: &[f64]) -> Vec<f64> {
    let mut prep = one_stage::prepare_matrix(&mut engine, a).unwrap();
    one_stage::solve(&mut engine, &mut prep, b, &IoConfig::ideal())
        .unwrap()
        .x
}

fn two_stage_x<E: AmcEngine>(mut engine: E, a: &Matrix, b: &[f64]) -> Vec<f64> {
    let mut prep = two_stage::prepare(&mut engine, a).unwrap();
    two_stage::solve(&mut engine, &mut prep, b, &IoConfig::ideal())
        .unwrap()
        .x
}

fn multi_stage_x<E: AmcEngine>(
    mut engine: E,
    a: &Matrix,
    b: &[f64],
    plan: &PartitionPlan,
) -> Vec<f64> {
    let mut prep = multi_stage::prepare_plan(&mut engine, a, plan).unwrap();
    multi_stage::solve(&mut engine, &mut prep, b).unwrap()
}

fn facade_x<E: AmcEngine>(engine: E, a: &Matrix, b: &[f64], stages: Stages) -> Vec<f64> {
    let mut solver = SolverConfig::builder()
        .stages(stages)
        .build(engine)
        .unwrap();
    let mut prepared = solver.prepare(a).unwrap();
    prepared.solve(b).unwrap().x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn one_stage_is_a_depth_one_tree_numeric((a, b, _) in workload()) {
        let one = one_stage_x(NumericEngine::new(), &a, &b);
        let multi = multi_stage_x(NumericEngine::new(), &a, &b, &PartitionPlan::depth(1));
        prop_assert_eq!(one, multi);
    }

    #[test]
    fn one_stage_is_a_depth_one_tree_circuit((a, b, seed) in workload()) {
        let cfg = CircuitEngineConfig::paper_variation();
        let one = one_stage_x(CircuitEngine::new(cfg, seed), &a, &b);
        let multi = multi_stage_x(
            CircuitEngine::new(cfg, seed),
            &a,
            &b,
            &PartitionPlan::depth(1),
        );
        prop_assert_eq!(one, multi);
    }

    #[test]
    fn two_stage_is_a_depth_two_paper_tree_numeric((a, b, _) in workload()) {
        let two = two_stage_x(NumericEngine::new(), &a, &b);
        let multi = multi_stage_x(NumericEngine::new(), &a, &b, &PartitionPlan::paper(2));
        prop_assert_eq!(two, multi);
    }

    #[test]
    fn two_stage_is_a_depth_two_paper_tree_circuit((a, b, seed) in workload()) {
        let cfg = CircuitEngineConfig::paper_variation();
        let two = two_stage_x(CircuitEngine::new(cfg, seed), &a, &b);
        let multi = multi_stage_x(
            CircuitEngine::new(cfg, seed),
            &a,
            &b,
            &PartitionPlan::paper(2),
        );
        prop_assert_eq!(two, multi);
    }

    #[test]
    fn prepared_facade_matches_one_stage_module_numeric((a, b, _) in workload()) {
        let one = one_stage_x(NumericEngine::new(), &a, &b);
        let facade = facade_x(NumericEngine::new(), &a, &b, Stages::One);
        prop_assert_eq!(one, facade);
    }

    #[test]
    fn prepared_facade_matches_one_stage_module_circuit((a, b, seed) in workload()) {
        let cfg = CircuitEngineConfig::paper_variation();
        let one = one_stage_x(CircuitEngine::new(cfg, seed), &a, &b);
        let facade = facade_x(CircuitEngine::new(cfg, seed), &a, &b, Stages::One);
        prop_assert_eq!(one, facade);
    }

    #[test]
    fn prepared_facade_matches_two_stage_module_numeric((a, b, _) in workload()) {
        let two = two_stage_x(NumericEngine::new(), &a, &b);
        let facade = facade_x(NumericEngine::new(), &a, &b, Stages::Two);
        prop_assert_eq!(two, facade);
    }

    #[test]
    fn prepared_facade_matches_two_stage_module_circuit((a, b, seed) in workload()) {
        let cfg = CircuitEngineConfig::paper_variation();
        let two = two_stage_x(CircuitEngine::new(cfg, seed), &a, &b);
        let facade = facade_x(CircuitEngine::new(cfg, seed), &a, &b, Stages::Two);
        prop_assert_eq!(two, facade);
    }

    #[test]
    fn prepared_facade_matches_multi_stage_module_circuit((a, b, seed) in workload()) {
        // Depth bounded by the facade's log2(n) validation.
        let depth = 2.min(a.rows().ilog2() as usize);
        let cfg = CircuitEngineConfig::paper_variation();
        let module = multi_stage_x(
            CircuitEngine::new(cfg, seed),
            &a,
            &b,
            &PartitionPlan::depth(depth),
        );
        let facade = facade_x(CircuitEngine::new(cfg, seed), &a, &b, Stages::Multi(depth));
        prop_assert_eq!(module, facade);
    }

    #[test]
    fn blocked_engine_is_bit_identical_to_numeric(
        (a, b, seed) in workload(),
        block in 1usize..=40,
    ) {
        // The cache-blocked backend is a pure hot-path substitution:
        // same bits out at every panel width, through every
        // architecture the facade supports.
        let _ = seed;
        for stages in [Stages::One, Stages::Two] {
            let reference = facade_x(NumericEngine::new(), &a, &b, stages);
            let blocked = facade_x(
                BlockedNumericEngine::new(block).unwrap(),
                &a,
                &b,
                stages,
            );
            prop_assert_eq!(reference, blocked, "stages={:?} block={}", stages, block);
        }
    }

    #[test]
    fn boxed_engine_is_bit_identical_to_concrete((a, b, seed) in workload()) {
        // The acceptance pin of the open backend API: the full cascade
        // through `Box<dyn AmcEngine>` equals the concrete engine
        // bitwise — including under variation, where any divergence in
        // programming order or RNG consumption would show immediately.
        let cfg = CircuitEngineConfig::paper_variation();
        let concrete = facade_x(CircuitEngine::new(cfg, seed), &a, &b, Stages::Two);
        let boxed: Box<dyn AmcEngine> = Box::new(CircuitEngine::new(cfg, seed));
        let erased = facade_x(boxed, &a, &b, Stages::Two);
        prop_assert_eq!(concrete, erased);
    }
}

//! Validation of the fast circuit models against the exact resistive-grid
//! ground truth, across the device/circuit boundary.

use amc_circuit::grid;
use amc_circuit::interconnect::InterconnectModel;
use amc_circuit::sim::{AnalogSimulator, SimConfig};
use amc_device::array::ProgrammedMatrix;
use amc_device::mapping::MappingConfig;
use amc_device::variation::VariationModel;
use amc_linalg::{generate, metrics, Matrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn program(a: &Matrix, seed: u64) -> ProgrammedMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    ProgrammedMatrix::program(
        a,
        &MappingConfig::paper_default(),
        &VariationModel::None,
        &mut rng,
    )
    .unwrap()
}

#[test]
fn series_approximation_tracks_exact_grid_for_mvm() {
    // Across several sizes and wire resistances, the O(mn) series model
    // must stay within a small factor of the exact grid solve.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for n in [4usize, 8, 16] {
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let p = program(&a, n as u64);
        let x = generate::random_vector(n, &mut rng);
        for r_seg in [0.5, 1.0, 5.0] {
            let exact = grid::mvm_exact(&p, &x, r_seg).unwrap();
            let mut cfg = SimConfig::ideal();
            cfg.interconnect = InterconnectModel::SeriesApprox { r_segment: r_seg };
            let approx = AnalogSimulator::new(cfg).mvm(&p, &x).unwrap();
            let err = metrics::relative_error_l2(&exact.volts, &approx.volts);
            assert!(
                err < 0.05,
                "n={n} r={r_seg}: series vs exact diverged by {err}"
            );
        }
    }
}

#[test]
fn series_approximation_tracks_exact_grid_for_inv() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for n in [4usize, 8] {
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let p = program(&a, 10 + n as u64);
        let b = generate::random_vector(n, &mut rng);
        for r_seg in [0.5, 2.0] {
            let exact = grid::inv_exact(&p, &b, r_seg).unwrap();
            let mut cfg = SimConfig::ideal();
            cfg.interconnect = InterconnectModel::SeriesApprox { r_segment: r_seg };
            let approx = AnalogSimulator::new(cfg).inv(&p, &b).unwrap();
            let err = metrics::relative_error_l2(&exact.volts, &approx.volts);
            assert!(
                err < 0.1,
                "n={n} r={r_seg}: series vs exact diverged by {err}"
            );
        }
    }
}

#[test]
fn exact_grid_converges_to_ideal_as_wires_vanish() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let a = generate::wishart_default(6, &mut rng).unwrap();
    let p = program(&a, 30);
    let b = generate::random_vector(6, &mut rng);
    let ideal = AnalogSimulator::new(SimConfig::ideal())
        .inv(&p, &b)
        .unwrap();
    let mut prev_err = f64::INFINITY;
    for r_seg in [10.0, 1.0, 0.1, 0.01] {
        let exact = grid::inv_exact(&p, &b, r_seg).unwrap();
        let err = metrics::relative_error_l2(&ideal.volts, &exact.volts);
        assert!(
            err < prev_err || err < 1e-9,
            "error must shrink with wire resistance: r={r_seg} err={err} prev={prev_err}"
        );
        prev_err = err;
    }
    assert!(
        prev_err < 1e-4,
        "r=0.01 should be near-ideal, err={prev_err}"
    );
}

#[test]
fn grid_power_decreases_with_wire_resistance() {
    // More series resistance, less current, less array power for the same
    // drive voltages.
    let g = Matrix::filled(4, 4, 1e-4);
    let low = grid::ResistiveGrid::new(&g, 0.1)
        .unwrap()
        .solve(&[0.5; 4])
        .unwrap();
    let high = grid::ResistiveGrid::new(&g, 100.0)
        .unwrap()
        .solve(&[0.5; 4])
        .unwrap();
    assert!(high.power_w < low.power_w);
    assert!(high.sense_currents[0] < low.sense_currents[0]);
}

#[test]
fn wire_resistance_hurts_large_arrays_more() {
    // The physical mechanism behind BlockAMC's Fig. 9 advantage: relative
    // MVM error grows with array size at fixed segment resistance.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut prev_err = 0.0;
    for n in [4usize, 8, 16] {
        let a = Matrix::filled(n, n, 1.0);
        let p = program(&a, 40 + n as u64);
        let x = generate::random_vector(n, &mut rng);
        let ideal = AnalogSimulator::new(SimConfig::ideal())
            .mvm(&p, &x)
            .unwrap();
        let exact = grid::mvm_exact(&p, &x, 1.0).unwrap();
        let err = metrics::relative_error_l2(&ideal.volts, &exact.volts);
        assert!(
            err > prev_err,
            "n={n}: wire error must grow with size ({err} vs {prev_err})"
        );
        prev_err = err;
    }
}

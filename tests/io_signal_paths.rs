//! Non-ideal signal-path regression tests.
//!
//! The solver-equivalence properties (`tests/solver_equivalence.rs`)
//! run with an ideal `IoConfig`, under which the `Macro`, `Bus`, and
//! `Pure` signal-path policies of the unified cascade are
//! indistinguishable (DAC/ADC/S&H are identities). These tests pin the
//! *non-ideal* branches — quantized converters and S&H droop — against
//! exact reference outputs captured from the current implementation,
//! so a dropped or doubled hop in any policy branch changes a bit here
//! and fails.
//!
//! The workload is built from dyadic rationals (no transcendentals in
//! generation or solving), so the expected values are exact on every
//! IEEE-754 platform.

use amc_linalg::Matrix;
use blockamc::converter::{Converter, IoConfig};
use blockamc::engine::NumericEngine;
use blockamc::one_stage::{self, StepId};
use blockamc::two_stage;

/// Diagonally dominant matrix and RHS with exactly-representable
/// entries, generated without any RNG or libm call.
fn dyadic_workload(n: usize) -> (Matrix, Vec<f64>) {
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            4.0
        } else {
            ((i * 3 + j * 5) % 7) as f64 * 0.125 - 0.375
        }
    });
    let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 * 0.25 - 0.5).collect();
    (a, b)
}

/// Asymmetric converters (8-bit DAC, 6-bit ADC) plus S&H droop, so a
/// swapped DAC/ADC or a missing hop is visible in the output grid.
fn nonideal_io() -> IoConfig {
    IoConfig {
        dac: Some(Converter::new(8, 1.0).unwrap()),
        adc: Some(Converter::new(6, 1.0).unwrap()),
        sh_droop: 0.0625,
    }
}

#[test]
fn one_stage_macro_path_is_pinned() {
    let (a, b) = dyadic_workload(8);
    let mut engine = NumericEngine::new();
    let mut prep = one_stage::prepare_matrix(&mut engine, &a).unwrap();
    let sol = one_stage::solve(&mut engine, &mut prep, &b, &nonideal_io()).unwrap();

    // Solution values land on the 6-bit ADC grid (multiples of 2/63).
    let expected = [
        -0.12698412698412698,
        -0.031746031746031744,
        0.12698412698412698,
        -0.06349206349206349,
        0.06349206349206349,
        -0.12698412698412698,
        0.0,
        0.12698412698412698,
    ];
    assert_eq!(sol.x, expected);

    // The recorded step-1 input is the DAC'd external f: on the 8-bit
    // grid (multiples of 2/255), proving the entry DAC ran exactly once.
    assert_eq!(
        sol.trace[0].input,
        [
            -0.5019607843137255,
            0.0,
            0.5019607843137255,
            -0.25098039215686274
        ]
    );
    assert_eq!(
        sol.trace.iter().map(|r| r.step).collect::<Vec<_>>(),
        [
            StepId::Inv1,
            StepId::Mvm2,
            StepId::Inv3,
            StepId::Mvm4,
            StepId::Inv5
        ]
    );
}

#[test]
fn two_stage_bus_path_is_pinned() {
    let (a, b) = dyadic_workload(8);
    let mut engine = NumericEngine::new();
    let mut prep = two_stage::prepare(&mut engine, &a).unwrap();
    let sol = two_stage::solve(&mut engine, &mut prep, &b, &nonideal_io()).unwrap();

    // Differs from the one-stage result in exactly the entries where the
    // extra ADC→DAC bus hops re-quantize intermediates.
    let expected = [
        -0.12698412698412698,
        0.0,
        0.12698412698412698,
        -0.06349206349206349,
        0.06349206349206349,
        -0.12698412698412698,
        0.0,
        0.09523809523809523,
    ];
    assert_eq!(sol.x, expected);
    assert_eq!(
        sol.inner_traces
            .iter()
            .map(|t| t.0.as_str())
            .collect::<Vec<_>>(),
        ["A4s", "A1"]
    );
}

#[test]
fn droop_alone_attenuates_cascaded_steps_only() {
    // With droop but no converters, the entry/exit are transparent and
    // only the S&H hops between steps attenuate: the solve is close to,
    // but measurably off, the ideal solution.
    let (a, b) = dyadic_workload(8);
    let io = IoConfig {
        dac: None,
        adc: None,
        sh_droop: 0.0625,
    };
    let mut engine = NumericEngine::new();
    let mut prep = one_stage::prepare_matrix(&mut engine, &a).unwrap();
    let drooped = one_stage::solve(&mut engine, &mut prep, &b, &io).unwrap();
    let ideal = one_stage::solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
    let err = amc_linalg::metrics::relative_error(&ideal.x, &drooped.x);
    assert!(err > 1e-3, "droop must perturb (err={err})");
    assert!(err < 0.5, "droop stays bounded (err={err})");
    // Step 1 sees no droop (first hop is after it): its input is raw f.
    assert_eq!(drooped.trace[0].input, b[..4].to_vec());
}

//! Statistical trend tests: the qualitative claims of the paper's
//! accuracy figures, checked at test-friendly sizes with enough trials to
//! be stable.

use amc_linalg::{generate, lu, metrics};
use blockamc::engine::{CircuitEngine, CircuitEngineConfig};
use blockamc::solver::{BlockAmcSolver, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Median relative error of a solver over `trials` Wishart draws.
fn median_error(
    n: usize,
    stages: Stages,
    config: CircuitEngineConfig,
    trials: usize,
    base_seed: u64,
) -> f64 {
    let mut errs = Vec::new();
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(base_seed + t as u64);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        let x_ref = lu::solve(&a, &b).unwrap();
        let engine = CircuitEngine::new(config, 1000 + t as u64);
        let mut solver = BlockAmcSolver::new(engine, stages);
        if let Ok(r) = solver.solve(&a, &b) {
            errs.push(metrics::relative_error(&x_ref, &r.x));
        }
    }
    metrics::ErrorStats::from_samples(&errs).median
}

#[test]
fn blockamc_beats_original_under_variation() {
    // Fig. 7(a) claim at a test-friendly size.
    let cfg = CircuitEngineConfig::paper_variation();
    let orig = median_error(32, Stages::Original, cfg, 15, 10);
    let blk = median_error(32, Stages::One, cfg, 15, 10);
    assert!(
        blk <= orig * 1.05,
        "BlockAMC should not lose under variation: blk={blk} orig={orig}"
    );
}

#[test]
fn blockamc_advantage_grows_with_interconnect() {
    // Fig. 9 claim: adding wire resistance widens the gap.
    let var_only = CircuitEngineConfig::paper_variation();
    let full = CircuitEngineConfig::paper_full();
    let gap_var = median_error(32, Stages::Original, var_only, 12, 20)
        - median_error(32, Stages::One, var_only, 12, 20);
    let gap_full = median_error(32, Stages::Original, full, 12, 20)
        - median_error(32, Stages::One, full, 12, 20);
    assert!(
        gap_full >= gap_var * 0.8,
        "interconnect should not erase the advantage: gap_full={gap_full} gap_var={gap_var}"
    );
    assert!(gap_full > 0.0, "BlockAMC must win under the full stack");
}

#[test]
fn error_grows_with_size_under_full_nonidealities() {
    // Both Figs. 7 and 9 show error increasing with matrix size.
    let cfg = CircuitEngineConfig::paper_full();
    let small = median_error(8, Stages::Original, cfg, 32, 30);
    let large = median_error(64, Stages::Original, cfg, 32, 30);
    assert!(
        large > small,
        "original-AMC error must grow with size: {small} -> {large}"
    );
}

#[test]
fn two_stage_matches_one_stage_accuracy_class() {
    // Fig. 8(d): the two-stage solver's accuracy is similar to one-stage
    // (the recursion does not blow the error up).
    let cfg = CircuitEngineConfig::paper_variation();
    let one = median_error(32, Stages::One, cfg, 12, 40);
    let two = median_error(32, Stages::Two, cfg, 12, 40);
    assert!(
        two < one * 2.0,
        "two-stage should stay in the same error class: two={two} one={one}"
    );
}

#[test]
fn lower_variation_means_lower_error() {
    use amc_circuit::sim::SimConfig;
    use amc_device::mapping::MappingConfig;
    use amc_device::variation::VariationModel;
    let mut errs = Vec::new();
    for sigma in [0.01, 0.05, 0.10] {
        let cfg = CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::Proportional { sigma_rel: sigma },
            sim: SimConfig::ideal(),
        };
        errs.push(median_error(24, Stages::One, cfg, 12, 50));
    }
    assert!(
        errs[0] < errs[1] && errs[1] < errs[2],
        "error must be monotone in sigma: {errs:?}"
    );
}

//! Lifetime-reliability integration tests.
//!
//! Two acceptance criteria from the reliability work ride here: digital
//! CG refinement started from a *drifted* analog answer must still beat
//! a cold start (the degraded solver remains a useful preconditioner),
//! and a streaming [`LifetimeCampaign`] must replay bit-identically at
//! any worker count (proptest-pinned over seeds).

use amc_device::drift::DriftModel;
use amc_device::faults::FaultModel;
use amc_linalg::generate;
use amc_scenario::lifetime::{LifetimeCampaign, RepairPolicy};
use amc_scenario::workload::{WorkloadFamily, WorkloadSpec};
use blockamc::aging::{AgedSolver, AgingModel};
use blockamc::engine::NumericEngine;
use blockamc::refine;
use blockamc::solver::{BlockAmcSolver, SolverConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Aggressive power-law drift so a handful of ticks produces visible
/// degradation (same shape as the unit suites' accelerated model).
fn accelerated_model() -> AgingModel {
    AgingModel {
        drift: DriftModel {
            nu: 0.05,
            nu_sigma: 0.01,
            t0_s: 1.0,
        },
        tick_s: 100.0,
        ..AgingModel::typical_rram()
    }
}

#[test]
fn refining_a_drifted_solve_beats_a_cold_start() {
    // Large enough that CG's iteration count is governed by the
    // spectrum, not by dimension-n exact termination — otherwise warm
    // and cold both finish in exactly n steps and nothing is saved.
    let n = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let a = generate::wishart_default(n, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);

    let model = AgingModel {
        drift: DriftModel {
            nu: 0.01,
            nu_sigma: 0.002,
            t0_s: 1.0,
        },
        tick_s: 100.0,
        ..AgingModel::typical_rram()
    };
    let config = SolverConfig::builder().finish().unwrap();
    let mut solver = BlockAmcSolver::from_config(NumericEngine::new(), config);
    let replica = solver.prepare(&a).unwrap().replicate(1).remove(0);
    let mut aged = AgedSolver::new(replica, a.clone(), model, 13).unwrap();

    // Age the arrays until the analog answer is visibly degraded…
    aged.advance(2).unwrap();
    let degraded = aged.solve(&b).unwrap().x;
    let degraded_residual = refine::seed_quality(&a, &b, &degraded).unwrap();
    assert!(
        degraded_residual > 1e-3,
        "drift should visibly degrade the analog answer, residual {degraded_residual}"
    );

    // …then hand it to digital CG as a warm start. The drifted answer
    // must still carry enough signal to save iterations over a cold
    // (zero-guess) start, and refinement must restore accuracy.
    let outcome = refine::refine_with_cg(&a, &b, &degraded, 1e-8, 20 * n + 100).unwrap();
    assert!(
        outcome.iterations_saved() > 0,
        "warm start saved no iterations: warm {} vs cold {}",
        outcome.iterations_with_seed,
        outcome.iterations_cold
    );
    assert!(
        outcome.residual <= 1e-8,
        "refinement left residual {}",
        outcome.residual
    );
}

/// A small two-workload, three-policy campaign with drift *and*
/// stuck-at faults, seeded from the proptest input.
fn campaign(seed: u64) -> LifetimeCampaign {
    let model = AgingModel {
        faults: FaultModel {
            p_stuck_on: 5e-4,
            p_stuck_off: 5e-4,
            g_on: 1.0,
            g_off: 0.0,
        },
        ..accelerated_model()
    };
    LifetimeCampaign::builder("replay")
        .workload(WorkloadSpec::new("wishart", WorkloadFamily::Wishart, 10, 1))
        .workload(WorkloadSpec::new(
            "poisson2d",
            WorkloadFamily::Poisson2d,
            12,
            2,
        ))
        .policy("never", RepairPolicy::Never)
        .policy(
            "threshold",
            RepairPolicy::ResidualThreshold {
                refine_above: 1e-6,
                reprogram_above: 0.4,
            },
        )
        .policy(
            "budgeted",
            RepairPolicy::Budgeted {
                energy_budget_j: 1e-9,
                reprogram_above: 1e-2,
                arrays_per_repair: 1,
            },
        )
        .model(model)
        .ticks(4)
        .rhs_per_tick(2)
        .seed(seed)
        .finish()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The replay determinism acceptance criterion: the same seed must
    /// produce a bit-identical lifetime report at 1, 2, and 4 workers.
    /// `LifetimeReport` derives `PartialEq` over raw `f64`s, so `==`
    /// here is bitwise on every health probe, residual, and energy sum.
    #[test]
    fn lifetime_replay_is_bit_identical_at_any_worker_count(seed in any::<u64>()) {
        let campaign = campaign(seed);
        let serial = campaign.run_with_workers(1).unwrap();
        for workers in [2, 4] {
            let sharded = campaign.run_with_workers(workers).unwrap();
            prop_assert_eq!(
                &serial, &sharded,
                "report diverged at {} workers (seed {})", workers, seed
            );
        }
    }
}

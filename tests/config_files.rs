//! Campaigns-as-files integration tests: the committed `campaigns/*.json`
//! specs, the `amc-config` (de)serialization layer, and the wire codec
//! all have to agree.
//!
//! * Property tests: `EngineSpec`, `SolverConfig`, and `CampaignSpec`
//!   survive a JSON round trip exactly.
//! * The four committed campaign files lower to campaigns *equal* to
//!   their in-code twins (both `--quick` variants), re-render to the
//!   exact committed bytes (format stability), and — run end to end —
//!   produce bit-identical reports at any worker count.
//! * A `SolverConfig` decoded from JSON encodes to the same canonical
//!   `amc-serve` wire bytes as its in-code twin, so file-born configs
//!   hit the same server cache keys.

use amc_scenario::campaigns;
use amc_scenario::spec::{CampaignFile, CampaignSpec, EngineSelSpec, RungSpec, SolverSpec};
use amc_scenario::workload::{WorkloadFamily, WorkloadSpec};
use amc_scenario::Campaign;
use blockamc::converter::IoConfig;
use blockamc::engine::EngineSpec;
use blockamc::solver::{SolverConfig, SplitRule, SplitSearchOptions, Stages};
use proptest::prelude::*;
use serde::{FromConfig, Json, ToConfig};

fn roundtrip<T>(value: &T)
where
    T: ToConfig + FromConfig + PartialEq + std::fmt::Debug,
{
    let text = value.to_json().render();
    let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("reparse of {text}: {e}"));
    let back = T::from_json(&parsed).unwrap_or_else(|e| panic!("decode of {text}: {e}"));
    assert_eq!(&back, value, "round trip changed the value:\n{text}");
}

fn engine_spec_strategy() -> impl Strategy<Value = EngineSpec> {
    use blockamc::engine::CircuitEngineConfig;
    (0usize..6, 1usize..=64, 2u32..=24).prop_map(|(variant, block, bits)| match variant {
        0 => EngineSpec::Numeric,
        1 => EngineSpec::Blocked { block },
        2 => EngineSpec::FixedPoint { bits },
        3 => EngineSpec::Circuit(CircuitEngineConfig::ideal_mapping()),
        4 => EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
        _ => EngineSpec::Circuit(CircuitEngineConfig::paper_full()),
    })
}

fn io_strategy() -> impl Strategy<Value = IoConfig> {
    (0usize..3, 0.0..0.05f64).prop_map(|(variant, sh_droop)| match variant {
        0 => IoConfig::ideal(),
        1 => IoConfig::default_8bit(),
        _ => IoConfig {
            sh_droop,
            ..IoConfig::ideal()
        },
    })
}

fn solver_config_strategy() -> impl Strategy<Value = SolverConfig> {
    (
        0usize..4,
        1usize..=4,
        io_strategy(),
        0.0..4.0f64,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(variant, depth, io, imbalance_weight, searched, trace)| {
            let stages = match variant {
                0 => Stages::Original,
                1 => Stages::One,
                2 => Stages::Two,
                _ => Stages::Multi(depth),
            };
            let split = if searched {
                SplitRule::Searched(SplitSearchOptions { imbalance_weight })
            } else {
                SplitRule::Halves
            };
            SolverConfig::builder()
                .stages(stages)
                .io(io)
                .split_rule(split)
                .capture_trace(trace)
                .finish()
                .expect("builder-constructed configs are valid")
        })
}

fn campaign_spec_strategy() -> impl Strategy<Value = CampaignSpec> {
    let workload = (any::<bool>(), 8usize..=32, any::<u64>()).prop_map(|(wishart, n, seed)| {
        if wishart {
            WorkloadSpec::new("wishart", WorkloadFamily::Wishart, n, seed)
        } else {
            WorkloadSpec::new("poisson", WorkloadFamily::Poisson2d, n, seed)
        }
    });
    let rung =
        (any::<bool>(), engine_spec_strategy(), 0usize..3).prop_map(|(inline, spec, name)| {
            if inline {
                EngineSelSpec::Spec(spec)
            } else {
                EngineSelSpec::Registered(["numeric", "blocked", "fixed-point"][name].to_string())
            }
        });
    (
        (0usize..1000, proptest::collection::vec(workload, 1..=2)),
        proptest::collection::vec(solver_config_strategy(), 1..=2),
        proptest::collection::vec(rung, 1..=2),
        (1usize..=4, 1usize..=2, 1usize..=4),
        any::<u64>(),
    )
        .prop_map(
            |((name, workloads), configs, rungs, (trials, rhs_per_trial, workers), seed)| {
                CampaignSpec {
                    name: format!("campaign-{name}"),
                    workloads,
                    solvers: configs
                        .into_iter()
                        .enumerate()
                        .map(|(k, config)| SolverSpec {
                            label: format!("solver-{k}"),
                            config,
                        })
                        .collect(),
                    ladder: rungs
                        .into_iter()
                        .enumerate()
                        .map(|(k, engine)| RungSpec {
                            label: format!("rung-{k}"),
                            engine,
                        })
                        .collect(),
                    trials,
                    rhs_per_trial,
                    workers,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_specs_round_trip(spec in engine_spec_strategy()) {
        roundtrip(&spec);
    }

    #[test]
    fn solver_configs_round_trip(config in solver_config_strategy()) {
        roundtrip(&config);
    }

    #[test]
    fn campaign_specs_round_trip(spec in campaign_spec_strategy()) {
        roundtrip(&spec);
    }

    #[test]
    fn json_decoded_solver_configs_hit_the_same_wire_bytes(
        config in solver_config_strategy()
    ) {
        // The serve cache keys on the canonical wire encoding; a config
        // that went to disk and back must key identically.
        let text = config.to_json().render();
        let decoded = SolverConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(
            amc_serve::wire::config_bytes(&decoded),
            amc_serve::wire::config_bytes(&config)
        );
    }

    #[test]
    fn campaign_specs_lower_losslessly(spec in campaign_spec_strategy()) {
        // lower() then from_campaign() must capture the identical spec
        // (the builder adds nothing and drops nothing).
        let campaign = spec.lower(blockamc::engine::EngineRegistry::builtin()).unwrap();
        prop_assert_eq!(CampaignSpec::from_campaign(&campaign), spec);
    }
}

/// An in-code campaign constructor taking the `quick` flag.
type CampaignCtor = fn(bool) -> amc_scenario::Result<Campaign>;

/// The four shipped campaign files paired with their in-code
/// constructors.
fn shipped() -> [(&'static str, CampaignCtor); 4] {
    [
        ("depth_sweep", campaigns::depth_sweep),
        ("split_rule", campaigns::split_rule_study),
        ("engine_ladder", campaigns::engine_ladder),
        ("simd_scaling", campaigns::simd_scaling),
    ]
}

fn campaign_path(name: &str) -> String {
    format!("{}/campaigns/{name}.json", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn shipped_campaign_files_match_their_in_code_twins() {
    for (name, ctor) in shipped() {
        let file = CampaignFile::load(campaign_path(name)).expect(name);
        for quick in [true, false] {
            // Campaign equality compares registries by name set, so lower
            // against the registry the in-code twin was built with.
            let registry = if matches!(name, "engine_ladder" | "simd_scaling") {
                campaigns::extended_registry()
            } else {
                blockamc::engine::EngineRegistry::builtin()
            };
            let from_file = file.select(quick).lower(registry).expect(name);
            let in_code = ctor(quick).expect(name);
            assert_eq!(from_file, in_code, "{name} (quick: {quick})");
        }
    }
}

#[test]
fn shipped_campaign_files_rerender_byte_identically() {
    // Format stability: parse -> decode -> re-render reproduces the
    // committed bytes exactly, so `repro export-campaigns` is
    // idempotent and diffs stay meaningful.
    for (name, _) in shipped() {
        let committed = std::fs::read_to_string(campaign_path(name)).expect(name);
        let file = CampaignFile::from_json_str(&committed).expect(name);
        assert_eq!(file.render(), committed, "{name} drifted");
    }
}

#[test]
fn file_loaded_campaign_reports_are_bit_identical() {
    // End to end: the committed engine-ladder file, run at several
    // worker counts, reproduces the in-code campaign's report exactly.
    let in_code = campaigns::engine_ladder(true)
        .expect("in-code campaign")
        .run()
        .expect("in-code run");
    let file = CampaignFile::load(campaign_path("engine_ladder")).expect("load");
    let campaign = file
        .select(true)
        .lower(campaigns::extended_registry())
        .expect("lower");
    for workers in [1usize, 3] {
        let report = campaign.run_with_workers(workers).expect("file-loaded run");
        assert_eq!(report, in_code, "diverged at {workers} worker(s)");
    }
}

#[test]
fn campaign_spec_format_is_pinned() {
    // The golden pin of the on-disk format: field names, enum tagging,
    // Option omission, and number forms. Changing any of these breaks
    // committed campaign files — this test is the tripwire.
    let spec = CampaignSpec {
        name: "pin".to_string(),
        workloads: vec![WorkloadSpec::new("wishart", WorkloadFamily::Wishart, 16, 3)],
        solvers: vec![SolverSpec {
            label: "searched".to_string(),
            config: SolverConfig::builder()
                .stages(Stages::Multi(2))
                .split_rule(SplitRule::Searched(SplitSearchOptions {
                    imbalance_weight: 0.25,
                }))
                .capture_trace(false)
                .finish()
                .unwrap(),
        }],
        ladder: vec![RungSpec {
            label: "fixed-8".to_string(),
            engine: EngineSelSpec::Spec(EngineSpec::FixedPoint { bits: 8 }),
        }],
        trials: 2,
        rhs_per_trial: 1,
        workers: 1,
        seed: 9,
    };
    let expected = r#"{
  "name": "pin",
  "workloads": [
    {
      "name": "wishart",
      "family": "Wishart",
      "n": 16,
      "seed": 3
    }
  ],
  "solvers": [
    {
      "label": "searched",
      "config": {
        "stages": {
          "Multi": 2
        },
        "signal_plan": {
          "levels": [
            {
              "Bus": {
                "sh_droop": 0.0
              }
            },
            {
              "Macro": {
                "sh_droop": 0.0
              }
            }
          ]
        },
        "split_rule": {
          "Searched": {
            "imbalance_weight": 0.25
          }
        },
        "capture_trace": false
      }
    }
  ],
  "ladder": [
    {
      "label": "fixed-8",
      "engine": {
        "Spec": {
          "FixedPoint": {
            "bits": 8
          }
        }
      }
    }
  ],
  "trials": 2,
  "rhs_per_trial": 1,
  "workers": 1,
  "seed": 9
}
"#;
    assert_eq!(spec.to_json().render(), expected);
    assert_eq!(
        CampaignSpec::from_json(&Json::parse(expected).unwrap()).unwrap(),
        spec
    );
}

#[test]
fn misspelled_fields_in_a_committed_file_are_reported_by_name() {
    let committed = std::fs::read_to_string(campaign_path("engine_ladder")).expect("read");
    let misspelled = committed.replacen("\"rhs_per_trial\"", "\"rhs_per_trail\"", 1);
    let err = CampaignFile::from_json_str(&misspelled).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("rhs_per_trail") && msg.contains("rhs_per_trial"),
        "error should name the bad field and list the known ones: {msg}"
    );
}

#[test]
fn decode_rejects_what_the_builder_rejects() {
    // File-loaded SolverConfigs pass through SolverConfig::builder, so
    // a config no builder call could produce cannot enter through a
    // file either.
    let text = r#"{
  "stages": {
    "Multi": 0
  },
  "signal_plan": {
    "levels": []
  },
  "split_rule": "Halves",
  "capture_trace": false
}"#;
    let err = SolverConfig::from_json(&Json::parse(text).unwrap()).unwrap_err();
    assert!(err.to_string().contains("Multi(0)"), "{err}");
}

//! Parallel ≡ serial bit-identity properties for the execution layer.
//!
//! The parallel batch and Monte-Carlo paths promise that the worker
//! count is *invisible* in the output: sharding only decides where work
//! runs, never what it computes. These properties pin that contract —
//!
//! * `batch::solve_batch_parallel` at 1, 2, and 4 workers produces
//!   solutions bit-identical to the serial `batch::solve_batch`, under
//!   both the exact `NumericEngine` and the analog `CircuitEngine`
//!   (where identity additionally proves every replica carries the
//!   same programmed variation draw as the serial solver's arrays);
//! * `montecarlo::yield_analysis_parallel` at 1, 2, and 4 workers
//!   reproduces the serial `yield_analysis` report exactly (each trial
//!   owns the ChaCha8 stream `engine_seed + t` wherever it executes).

use amc_circuit::opamp::OpAmpSpec;
use amc_linalg::{generate, Matrix};
use blockamc::batch;
use blockamc::engine::{CircuitEngine, CircuitEngineConfig, EngineSpec, NumericEngine};
use blockamc::montecarlo;
use blockamc::solver::{BlockAmcSolver, SolverConfig, Stages};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a well-conditioned SPD system (size 8..=16), a batch of
/// 1..=6 right-hand sides, and the seed it all derives from.
fn batch_workload() -> impl Strategy<Value = (Matrix, Vec<Vec<f64>>, u64)> {
    (8usize..=16, 1usize..=6, any::<u64>()).prop_map(|(n, k, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let batch = (0..k)
            .map(|_| generate::random_vector(n, &mut rng))
            .collect();
        (a, batch, seed)
    })
}

fn serial_solutions<E>(engine: E, stages: Stages, a: &Matrix, batch: &[Vec<f64>]) -> Vec<Vec<f64>>
where
    E: blockamc::engine::AmcEngine,
{
    let mut solver = BlockAmcSolver::new(engine, stages);
    batch::solve_batch(&mut solver, a, batch, &OpAmpSpec::ideal(), 0.0)
        .unwrap()
        .solutions
}

fn parallel_solutions<E>(
    engine: E,
    stages: Stages,
    a: &Matrix,
    batch: &[Vec<f64>],
    workers: usize,
) -> Vec<Vec<f64>>
where
    E: blockamc::engine::AmcEngine + Clone + Send,
{
    let mut solver = BlockAmcSolver::new(engine, stages);
    batch::solve_batch_parallel(&mut solver, a, batch, &OpAmpSpec::ideal(), 0.0, workers)
        .unwrap()
        .solutions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_batch_matches_serial_numeric_engine((a, batch, _seed) in batch_workload()) {
        for stages in [Stages::One, Stages::Two] {
            let serial = serial_solutions(NumericEngine::new(), stages, &a, &batch);
            for workers in [1usize, 2, 4] {
                let par = parallel_solutions(NumericEngine::new(), stages, &a, &batch, workers);
                prop_assert_eq!(&par, &serial, "{:?} workers={}", stages, workers);
            }
        }
    }

    #[test]
    fn parallel_batch_matches_serial_circuit_engine((a, batch, seed) in batch_workload()) {
        // Variation draws make each programmed part unique, so equality
        // here proves the replicas inherit the serial solver's draw.
        let config = CircuitEngineConfig::paper_variation();
        let serial = serial_solutions(CircuitEngine::new(config, seed), Stages::One, &a, &batch);
        for workers in [1usize, 2, 4] {
            let par = parallel_solutions(
                CircuitEngine::new(config, seed),
                Stages::One,
                &a,
                &batch,
                workers,
            );
            prop_assert_eq!(&par, &serial, "workers={}", workers);
        }
    }

    #[test]
    fn parallel_yield_matches_serial(
        (a, batch, seed) in batch_workload(),
        trials in 1usize..=5,
    ) {
        let b = &batch[0];
        let solver = SolverConfig::builder().stages(Stages::One).finish().unwrap();
        let spec = EngineSpec::Circuit(CircuitEngineConfig::paper_variation());
        let serial = montecarlo::yield_analysis(
            &a, b, &solver, &spec, 0.1, trials, seed,
        ).unwrap();
        for workers in [2usize, 4] {
            let par = montecarlo::yield_analysis_parallel(
                &a, b, &solver, &spec, 0.1, trials, seed, workers,
            ).unwrap();
            prop_assert_eq!(&par, &serial, "workers={}", workers);
        }
    }
}

//! Cross-crate consistency between the algorithm, the macro hardware
//! model, the batch/pipeline layer, and the architecture cost model.

use amc_arch::inventory::{component_counts, SolverKind};
use amc_arch::latency::op_counts;
use amc_circuit::opamp::OpAmpSpec;
use amc_linalg::generate;
use blockamc::engine::NumericEngine;
use blockamc::macro_model::{one_stage_schedule, ArrayId, MacroOp};
use blockamc::solver::{BlockAmcSolver, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn macro_schedule_matches_executed_operations() {
    // The static hardware schedule and the dynamic algorithm must agree
    // on the op sequence: INV, MVM, INV, MVM, INV over A1,A3,A4s,A2,A1.
    let schedule = one_stage_schedule();
    let expected_ops = [
        (MacroOp::Inv, ArrayId::A1),
        (MacroOp::Mvm, ArrayId::A3),
        (MacroOp::Inv, ArrayId::A4s),
        (MacroOp::Mvm, ArrayId::A2),
        (MacroOp::Inv, ArrayId::A1),
    ];
    for (s, (op, array)) in schedule.iter().zip(expected_ops) {
        assert_eq!(s.op, op);
        assert_eq!(s.array, array);
    }

    // Execute the algorithm and compare the dynamic counts.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = generate::wishart_default(8, &mut rng).unwrap();
    let b = generate::random_vector(8, &mut rng);
    let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
    let r = solver.solve(&a, &b).unwrap();
    let inv_scheduled = schedule.iter().filter(|s| s.op == MacroOp::Inv).count();
    let mvm_scheduled = schedule.iter().filter(|s| s.op == MacroOp::Mvm).count();
    assert_eq!(r.stats_delta.inv_ops, inv_scheduled);
    assert_eq!(r.stats_delta.mvm_ops, mvm_scheduled);
}

#[test]
fn arch_op_counts_match_the_solver_facade() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a = generate::wishart_default(16, &mut rng).unwrap();
    let b = generate::random_vector(16, &mut rng);
    for (kind, stages) in [
        (SolverKind::OriginalAmc, Stages::Original),
        (SolverKind::OneStage, Stages::One),
    ] {
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), stages);
        let r = solver.solve(&a, &b).unwrap();
        let c = op_counts(kind);
        assert_eq!(r.stats_delta.inv_ops, c.inv, "{kind:?} INV count");
        assert_eq!(r.stats_delta.mvm_ops, c.mvm, "{kind:?} MVM count");
    }
}

#[test]
fn arch_array_count_matches_programmed_operands() {
    // One-stage: the inventory says 4 arrays; a dense matrix programs
    // exactly 4 operands (A1, A2, A3, A4s).
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let a = generate::wishart_default(16, &mut rng).unwrap();
    let b = generate::random_vector(16, &mut rng);
    let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
    let r = solver.solve(&a, &b).unwrap();
    let inv = component_counts(SolverKind::OneStage, 16).unwrap();
    assert_eq!(r.stats_delta.program_ops, inv.arrays);

    // Two-stage: 16 arrays for a dense matrix.
    let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::Two);
    let r = solver.solve(&a, &b).unwrap();
    let inv = component_counts(SolverKind::TwoStage, 16).unwrap();
    assert_eq!(r.stats_delta.program_ops, inv.arrays);
}

#[test]
fn batch_pipeline_timing_consistent_with_macro_model() {
    use blockamc::batch::{phase_settle_times, solve_batch};
    use blockamc::macro_model::MacroTiming;

    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let a = generate::wishart_default(12, &mut rng).unwrap();
    let batch: Vec<Vec<f64>> = (0..8)
        .map(|_| generate::random_vector(12, &mut rng))
        .collect();
    let spec = OpAmpSpec::ideal();
    let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
    let out = solve_batch(&mut solver, &a, &batch, &spec, 1e-7).unwrap();
    // Independent reconstruction of the timing from the macro model.
    let phases = phase_settle_times(&a, &spec).unwrap();
    let t = MacroTiming::from_phase_times(phases, 1e-7).unwrap();
    assert_eq!(out.timing, t);
    assert!(out.batch_time_pipelined_s < out.batch_time_unpipelined_s);
    assert!(out.pipeline_speedup() > 1.0);
}

#[test]
fn program_cost_of_blockamc_preprocessing_is_bounded() {
    // The Schur pre-processing overhead: programming all four one-stage
    // arrays costs no more than 2x programming the single original array
    // (same total cells) in the row-parallel model.
    use amc_device::mapping::{MappingConfig, MatrixMapping};
    use amc_device::program_cost::{program_cost, ProgramCostModel};
    use blockamc::partition::BlockPartition;

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let a = generate::wishart_default(32, &mut rng).unwrap();
    let cfg = MappingConfig::paper_default();
    let model = ProgramCostModel::typical_rram();

    let whole = MatrixMapping::new(&a, &cfg).unwrap();
    let t_whole = program_cost(whole.g_pos(), 0.05, &model)
        .unwrap()
        .time_row_parallel_s
        + program_cost(whole.g_neg(), 0.05, &model)
            .unwrap()
            .time_row_parallel_s;

    let p = BlockPartition::halves(&a).unwrap();
    let a4s = p.schur_complement().unwrap();
    let mut t_blocks = 0.0;
    for block in [&p.a1, &p.a2, &p.a3, &a4s] {
        let m = MatrixMapping::new(block, &cfg).unwrap();
        t_blocks += program_cost(m.g_pos(), 0.05, &model)
            .unwrap()
            .time_row_parallel_s;
        t_blocks += program_cost(m.g_neg(), 0.05, &model)
            .unwrap()
            .time_row_parallel_s;
    }
    assert!(
        t_blocks <= 2.0 * t_whole + 1e-12,
        "blocks {t_blocks} vs whole {t_whole}"
    );
}

//! End-to-end test of the solver service: N concurrent clients submit
//! overlapping workloads over loopback transports, and every response
//! must be **bit-identical** to a direct `PreparedSolver::solve` in
//! this process — through cache hits, request coalescing, and batch
//! sharding. Also pins the cache accounting (hits observed, capacity
//! bound respected) and the backpressure contract (saturated queue →
//! `Busy`, never a hang).

use amc_serve::client::Client;
use amc_serve::loadgen::{workload_matrix, workload_rhs};
use amc_serve::server::{ServeAging, Server, ServerConfig};
use amc_serve::wire::{EngineRef, MatrixRef};
use amc_serve::ServeError;
use blockamc::aging::{AgingModel, DriftModel};
use blockamc::engine::EngineRegistry;
use blockamc::solver::{BlockAmcSolver, SolverConfig, Stages};

fn solver_config() -> SolverConfig {
    SolverConfig::builder()
        .stages(Stages::One)
        .capture_trace(false)
        .finish()
        .unwrap()
}

/// Direct in-process reference: registry-built engine, one prepare,
/// serial solves — the baseline the served path must reproduce bitwise.
fn direct_solutions(a: &amc_linalg::Matrix, engine: &EngineRef, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let built = EngineRegistry::builtin()
        .build(&engine.name, engine.seed)
        .unwrap();
    let mut solver = BlockAmcSolver::from_config(built, solver_config());
    let mut prepared = solver.prepare(a).unwrap();
    rhs.iter().map(|b| prepared.solve(b).unwrap().x).collect()
}

#[test]
fn concurrent_clients_get_bit_identical_results_with_cache_hits() {
    // The circuit engine draws programming variation at prepare time,
    // so bit-identity here proves the server reuses one cached draw —
    // approximate equality would pass even if it re-prepared per
    // request; `==` on f64 bits does not.
    let engine = EngineRef::new("circuit", 42);
    let n = 24;
    let matrices: Vec<_> = (0..3).map(|s| workload_matrix(n, s)).collect();
    let clients = 6;
    let per_client = 8;

    let server = Server::with_builtin_engines(ServerConfig {
        cache_capacity: 4,
        solver_workers: 2,
        batch_workers: 2,
        queue_capacity: 256,
        ..ServerConfig::default()
    });
    let config = solver_config();

    // Reference solutions, computed directly (no server involved).
    let all_rhs: Vec<Vec<Vec<f64>>> = (0..matrices.len())
        .map(|m| {
            (0..clients * per_client)
                .map(|k| workload_rhs(n, m as u64, k as u64))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<Vec<f64>>> = matrices
        .iter()
        .zip(&all_rhs)
        .map(|(a, rhs)| direct_solutions(a, &engine, rhs))
        .collect();

    // Warm the cache, then hammer it from N concurrent clients with
    // overlapping (matrix, rhs) picks.
    let mut setup = Client::new(server.loopback());
    let fingerprints: Vec<u64> = matrices
        .iter()
        .map(|a| setup.prepare(a, &config, &engine).unwrap().0)
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let transport = server.loopback();
                let config = &config;
                let engine = &engine;
                let fingerprints = &fingerprints;
                let expected = &expected;
                let all_rhs = &all_rhs;
                scope.spawn(move || {
                    let mut client = Client::new(transport);
                    for k in 0..per_client {
                        // Overlap by construction: every client visits
                        // every matrix; rhs index interleaves clients.
                        let m = (c + k) % fingerprints.len();
                        let r = c * per_client + k;
                        let x = client
                            .solve(
                                MatrixRef::Cached(fingerprints[m]),
                                config,
                                engine,
                                &all_rhs[m][r],
                            )
                            .unwrap();
                        assert_eq!(
                            x, expected[m][r],
                            "client {c} request {k}: served != direct"
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    });

    let stats = server.stats();
    // Every solve after the three prepares fetched from the cache.
    assert_eq!(stats.solved_rhs, (clients * per_client) as u64);
    assert!(
        stats.hits >= stats.solved_rhs,
        "every served solve was a cache hit: {stats:?}"
    );
    assert_eq!(stats.entries, 3);
    assert!(stats.entries <= stats.capacity);
    server.shutdown();
}

#[test]
fn cache_respects_capacity_under_overlapping_load() {
    let server = Server::with_builtin_engines(ServerConfig {
        cache_capacity: 2,
        ..ServerConfig::default()
    });
    let config = solver_config();
    let engine = EngineRef::new("numeric", 0);
    let n = 8;

    // More distinct matrices than capacity, solved inline from several
    // clients: entries may never exceed the bound.
    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let transport = server.loopback();
            let config = &config;
            let engine = &engine;
            scope.spawn(move || {
                let mut client = Client::new(transport);
                for seed in 0..5u64 {
                    let a = workload_matrix(n, seed);
                    let rhs = workload_rhs(n, seed, c);
                    // With churn this aggressive an entry can be evicted
                    // between resolve and dispatch; the protocol answers
                    // NotPrepared and the client re-submits — same
                    // contract the load generator implements.
                    let x = loop {
                        match client.solve(MatrixRef::Inline(a.clone()), config, engine, &rhs) {
                            Ok(x) => break x,
                            Err(ServeError::NotPrepared { .. }) => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    };
                    let direct = direct_solutions(&a, engine, std::slice::from_ref(&rhs));
                    assert_eq!(x, direct[0]);
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.entries, 2, "capacity bound violated: {stats:?}");
    assert!(stats.evictions > 0, "churn must have evicted: {stats:?}");
    server.shutdown();
}

#[test]
fn aging_server_serves_fresh_entries_bit_identical_then_heals_by_reprepare() {
    // Health degrades past max_residual after one dispatch round, so
    // every request alternates fresh → stale under this model. The
    // threshold sits above the circuit engine's programming-variation
    // floor (an age-0 probe is imperfect but healthy) and far below the
    // drifted residual one accelerated tick produces.
    let server = Server::with_builtin_engines(ServerConfig {
        aging: Some(ServeAging {
            model: AgingModel {
                drift: DriftModel {
                    nu: 0.05,
                    nu_sigma: 0.01,
                    t0_s: 1.0,
                },
                tick_s: 100.0,
                ..AgingModel::typical_rram()
            },
            max_residual: 5e-2,
            seed: 29,
        }),
        ..ServerConfig::default()
    });
    let mut client = Client::new(server.loopback());
    let config = solver_config();
    // The circuit engine draws variation at prepare time — bit-identity
    // on a fresh aged entry proves serve-then-age really serves the
    // pre-advance state of the one cached draw.
    let engine = EngineRef::new("circuit", 5);
    let n = 12;
    let a = workload_matrix(n, 31);
    let rhs = workload_rhs(n, 31, 0);
    let expected = direct_solutions(&a, &engine, std::slice::from_ref(&rhs));

    let (fp, _) = client.prepare(&a, &config, &engine).unwrap();
    let (x, degraded) = client
        .solve_accepting(MatrixRef::Cached(fp), &config, &engine, &rhs, false)
        .unwrap();
    assert!(!degraded);
    assert_eq!(
        x, expected[0],
        "age-0 served solve must match direct bitwise"
    );

    // The next request finds the entry past the health threshold: the
    // dispatcher staleness-evicts, re-prepares from the retained
    // pristine matrix, and serves the fresh (age-0) state — which is
    // again bit-identical to the direct solve.
    let (x2, degraded) = client
        .solve_accepting(MatrixRef::Cached(fp), &config, &engine, &rhs, false)
        .unwrap();
    assert!(!degraded);
    assert_eq!(
        x2, expected[0],
        "re-prepared solve must match direct bitwise"
    );

    // The dispatcher writes the re-prepared entry back *after* replying
    // (serve-then-age), so poll briefly for the settled cache state.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let stats = loop {
        let stats = server.stats();
        if stats.entries == 1 || std::time::Instant::now() >= deadline {
            break stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    assert_eq!(stats.entries, 1, "{stats:?}");
    assert_eq!(stats.staleness_evictions, 1, "{stats:?}");
    assert_eq!(stats.degraded_served, 0, "{stats:?}");
    server.shutdown();
}

#[test]
fn saturated_queue_is_busy_not_a_hang() {
    // Accept-only mode (0 workers) makes saturation deterministic; the
    // whole test is bounded by its own deadline rather than any solver
    // progress.
    let server = Server::with_builtin_engines(ServerConfig {
        solver_workers: 0,
        queue_capacity: 2,
        ..ServerConfig::default()
    });
    let config = solver_config();
    let engine = EngineRef::new("numeric", 0);
    let a = workload_matrix(8, 11);
    let mut setup = Client::new(server.loopback());
    let (fp, _) = setup.prepare(&a, &config, &engine).unwrap();

    let blocked: Vec<_> = (0..2)
        .map(|k| {
            let transport = server.loopback();
            let config = config.clone();
            let engine = engine.clone();
            std::thread::spawn(move || {
                Client::new(transport).solve(
                    MatrixRef::Cached(fp),
                    &config,
                    &engine,
                    &workload_rhs(8, 11, k),
                )
            })
        })
        .collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.queued_rhs() < 2 {
        assert!(std::time::Instant::now() < deadline, "queue never filled");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let t0 = std::time::Instant::now();
    let err = setup
        .solve(
            MatrixRef::Cached(fp),
            &config,
            &engine,
            &workload_rhs(8, 11, 9),
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::Busy), "{err}");
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "Busy must be immediate, not a timeout"
    );

    // A batch that alone exceeds the bound is also Busy, even with an
    // empty queue slot accounting (cost = its RHS count).
    let err = setup
        .solve_batch(
            MatrixRef::Cached(fp),
            &config,
            &engine,
            (0..3).map(|k| workload_rhs(8, 11, 20 + k)).collect(),
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::Busy), "{err}");

    server.shutdown();
    for handle in blocked {
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(ServeError::Closed)), "{result:?}");
    }
}

//! End-to-end integration tests: the full pipeline from matrix generation
//! through device programming, circuit simulation, and the BlockAMC
//! algorithm, checked against the exact digital solver.

use amc_linalg::{generate, lu, metrics, vector};
use blockamc::converter::IoConfig;
use blockamc::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
use blockamc::solver::{BlockAmcSolver, Stages};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn wishart_workload(n: usize, seed: u64) -> (amc_linalg::Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = generate::wishart_default(n, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);
    (a, b)
}

fn toeplitz_workload(n: usize, seed: u64) -> (amc_linalg::Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = generate::random_spd_toeplitz(n, 8, 0.02, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);
    (a, b)
}

#[test]
fn every_architecture_solves_every_family_exactly_with_numeric_engine() {
    type Make = fn(usize, u64) -> (amc_linalg::Matrix, Vec<f64>);
    for (family, make) in [
        ("wishart", wishart_workload as Make),
        ("toeplitz", toeplitz_workload as Make),
    ] {
        for n in [8usize, 12, 17, 32] {
            let (a, b) = make(n, n as u64);
            let x_ref = lu::solve(&a, &b).unwrap();
            for stages in [Stages::Original, Stages::One, Stages::Two, Stages::Multi(3)] {
                let mut solver = BlockAmcSolver::new(NumericEngine::new(), stages);
                let r = solver.solve(&a, &b).unwrap();
                let err = metrics::relative_error(&x_ref, &r.x);
                assert!(err < 1e-7, "{family} n={n} {stages:?}: err={err}");
            }
        }
    }
}

#[test]
fn ideal_analog_stack_reproduces_digital_solution() {
    let (a, b) = wishart_workload(24, 1);
    let x_ref = lu::solve(&a, &b).unwrap();
    for stages in [Stages::Original, Stages::One, Stages::Two] {
        let engine = CircuitEngine::new(CircuitEngineConfig::ideal(), 7);
        let mut solver = BlockAmcSolver::new(engine, stages);
        let r = solver.solve(&a, &b).unwrap();
        let err = metrics::relative_error(&x_ref, &r.x);
        assert!(err < 1e-8, "{stages:?}: err={err}");
    }
}

#[test]
fn noisy_analog_solutions_are_usable_seeds() {
    // The headline behavioural claim: at the paper's 5% write accuracy the
    // analog solution lands within ~20% of the exact one on the benchmark
    // families — a usable seed, not garbage.
    let (a, b) = wishart_workload(32, 2);
    let x_ref = lu::solve(&a, &b).unwrap();
    for stages in [Stages::One, Stages::Two] {
        let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 3);
        let mut solver = BlockAmcSolver::new(engine, stages);
        let r = solver.solve(&a, &b).unwrap();
        let err = metrics::relative_error(&x_ref, &r.x);
        assert!(err < 0.3, "{stages:?}: err={err}");
        assert!(err > 1e-6, "{stages:?}: variation must actually perturb");
    }
}

#[test]
fn residual_is_consistent_with_reported_error() {
    let (a, b) = toeplitz_workload(16, 3);
    let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 5);
    let mut solver = BlockAmcSolver::new(engine, Stages::One);
    let r = solver.solve(&a, &b).unwrap();
    // ‖A·x̂ − b‖ must be small iff the error is small (sanity link between
    // the metric and the algebra).
    let residual = vector::norm2(&vector::sub(&a.matvec(&r.x).unwrap(), &b));
    assert!(residual.is_finite());
    assert!(residual / vector::norm2(&b) < 1.0);
}

#[test]
fn full_nonideal_stack_runs_end_to_end_with_converters() {
    let (a, b) = wishart_workload(16, 4);
    let x_ref = lu::solve(&a, &b).unwrap();
    let engine = CircuitEngine::new(CircuitEngineConfig::paper_full(), 11);
    let mut solver = BlockAmcSolver::new(engine, Stages::One).with_io(IoConfig::default_8bit());
    let r = solver.solve(&a, &b).unwrap();
    let err = metrics::relative_error(&x_ref, &r.x);
    assert!(err.is_finite());
    assert!(err < 0.5, "err={err}");
    // The analog cost accounting must be populated by the circuit engine.
    assert!(r.stats_delta.analog_time_s > 0.0);
    assert!(r.stats_delta.analog_energy_j > 0.0);
}

#[test]
fn same_seed_gives_identical_results_across_runs() {
    let (a, b) = wishart_workload(16, 5);
    let run = || {
        let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 42);
        let mut solver = BlockAmcSolver::new(engine, Stages::One);
        solver.solve(&a, &b).unwrap().x
    };
    assert_eq!(run(), run());
}

#[test]
fn multi_stage_depth_increases_program_count_but_not_error_with_numeric_engine() {
    let (a, b) = wishart_workload(32, 6);
    let x_ref = lu::solve(&a, &b).unwrap();
    let mut prev_programs = 0;
    for depth in 1..=3 {
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::Multi(depth));
        let r = solver.solve(&a, &b).unwrap();
        assert!(
            metrics::relative_error(&x_ref, &r.x) < 1e-8,
            "depth {depth}"
        );
        assert!(
            r.stats_delta.program_ops > prev_programs,
            "deeper partitioning must use more arrays"
        );
        prev_programs = r.stats_delta.program_ops;
    }
}

//! Properties pinning the PR's two performance contracts:
//!
//! * **Parallel prepare is invisible.** `prepare_with_workers` shards
//!   the per-subtree partition/Schur array programming over `amc-par`,
//!   but the programmed tree — and therefore every solve — must be
//!   bit-identical to the serial `prepare` at any worker count, under
//!   the exact `NumericEngine` and the micro-tiled `SimdEngine` alike
//!   (phase 2 replays the canonical program order, so even
//!   order-sensitive engines cannot tell the difference).
//! * **The simd backend is registry data.** `amc_engine_simd::register`
//!   plugs the crate into an `EngineRegistry` by name with no
//!   `blockamc` source change; the registered backend builds, solves
//!   through the facade under its own name, and stays within a bounded
//!   distance of the exact engine (reordered accumulation in the
//!   blocked LU trades bit-identity for speed, never accuracy).

use amc_engine_simd::SimdEngine;
use amc_linalg::{generate, lu, metrics, Matrix};
use blockamc::engine::{AmcEngine, EngineRegistry, NumericEngine};
use blockamc::solver::{BlockAmcSolver, SolverConfig, Stages};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded SPD workload (Wishart) with one right-hand side.
fn spd_workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = generate::wishart_default(n, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);
    (a, b)
}

/// Solve `A·x = b` at the given depth, preparing with `workers`
/// (`None` = the serial `prepare` path).
fn prepared_solution<E: AmcEngine>(
    engine: E,
    depth: usize,
    a: &Matrix,
    b: &[f64],
    workers: Option<usize>,
) -> Vec<f64> {
    let mut solver = BlockAmcSolver::new(engine, Stages::Multi(depth));
    let mut prepared = match workers {
        Some(w) => solver.prepare_with_workers(a, w).unwrap(),
        None => solver.prepare(a).unwrap(),
    };
    prepared.solve(b).unwrap().x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_prepare_matches_serial_numeric_engine(
        n in 12usize..=32,
        depth in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let (a, b) = spd_workload(n, seed);
        let serial = prepared_solution(NumericEngine::new(), depth, &a, &b, None);
        for workers in [1usize, 2, 4] {
            let par = prepared_solution(NumericEngine::new(), depth, &a, &b, Some(workers));
            prop_assert_eq!(&par, &serial, "depth={} workers={}", depth, workers);
        }
    }

    #[test]
    fn parallel_prepare_matches_serial_simd_engine(
        n in 12usize..=32,
        depth in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let (a, b) = spd_workload(n, seed);
        let serial = prepared_solution(SimdEngine::new(), depth, &a, &b, None);
        for workers in [1usize, 2, 4] {
            let par = prepared_solution(SimdEngine::new(), depth, &a, &b, Some(workers));
            prop_assert_eq!(&par, &serial, "depth={} workers={}", depth, workers);
        }
    }

    #[test]
    fn registered_simd_backend_is_bounded_against_numeric(
        n in 4usize..=24,
        seed in any::<u64>(),
    ) {
        let (a, b) = spd_workload(n, seed);
        let x_ref = lu::solve(&a, &b).unwrap();
        let mut registry = EngineRegistry::builtin();
        amc_engine_simd::register(&mut registry);
        let engine = registry.build(amc_engine_simd::ENGINE_NAME, seed).unwrap();
        let mut solver = SolverConfig::builder()
            .stages(Stages::Two)
            .build(engine)
            .unwrap();
        let report = solver.solve(&a, &b).unwrap();
        prop_assert_eq!(report.engine, "simd");
        let err = metrics::relative_error(&x_ref, &report.x);
        prop_assert!(err < 1e-7, "bounded against the exact backend: err={}", err);
    }
}

#[test]
fn simd_registers_by_name_without_core_changes() {
    // The builtin table ships without the backend; one `register` call
    // from the external crate adds it, and it then behaves like any
    // other named backend (including replacement on re-registration).
    let mut registry = EngineRegistry::builtin();
    assert!(!registry.contains(amc_engine_simd::ENGINE_NAME));
    amc_engine_simd::register(&mut registry);
    assert!(registry.contains(amc_engine_simd::ENGINE_NAME));
    let before = registry.names().count();
    amc_engine_simd::register(&mut registry);
    assert_eq!(registry.names().count(), before, "re-register must replace");
    let engine = registry.build("simd", 0).unwrap();
    assert_eq!(engine.name(), "simd");
}

//! The observability contract, end to end: tracing **on** is
//! bit-identical to tracing **off** — for single solves, parallel
//! batches at 1/2/4 workers, and whole campaigns — on both the numeric
//! and circuit engines. Spans and metrics are strictly read-only
//! observers; these tests are the proof the `amc-obs` docs point at.

use amc_linalg::generate;
use amc_obs::{Recorder, TraceSession};
use blockamc::engine::{AmcEngine, CircuitEngine, CircuitEngineConfig, NumericEngine};
use blockamc::solver::{BlockAmcSolver, Stages};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Exact bit pattern of a solution set — the comparison currency of
/// every test here (no tolerances: identical means identical).
fn bits(xs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    xs.iter()
        .map(|x| x.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// One prepare + solve + parallel batch under `recorder`, returning
/// the solution bits. The workload derives from `seed` only.
fn run_stack<E: AmcEngine + Clone + Send>(
    engine: E,
    seed: u64,
    n: usize,
    workers: usize,
    recorder: Recorder,
) -> Vec<Vec<u64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = generate::diagonally_dominant(n, 1.0, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);
    let batch: Vec<Vec<f64>> = (0..6)
        .map(|i| b.iter().map(|v| v * (1.0 + i as f64 * 0.1)).collect())
        .collect();
    let mut solver = BlockAmcSolver::new(engine, Stages::Two);
    solver.set_recorder(recorder);
    let mut prepared = solver.prepare(&a).expect("prepare");
    let x = prepared.solve(&b).expect("solve").x;
    let mut replica = prepared.replicate(1).remove(0);
    let xs = replica
        .solve_batch_parallel(&batch, workers)
        .expect("batch");
    let mut all = vec![x];
    all.extend(xs);
    bits(&all)
}

#[test]
fn tracing_is_bit_identical_on_numeric_engine_at_any_worker_count() {
    let reference = run_stack(NumericEngine::new(), 11, 24, 1, Recorder::disabled());
    for workers in [1usize, 2, 4] {
        let session = TraceSession::new();
        let traced = run_stack(NumericEngine::new(), 11, 24, workers, session.recorder());
        assert_eq!(traced, reference, "numeric, {workers} worker(s)");
        assert!(
            !session.drain().events().is_empty(),
            "the traced run must actually have recorded spans"
        );
    }
}

#[test]
fn tracing_is_bit_identical_on_circuit_engine_at_any_worker_count() {
    let engine = || CircuitEngine::new(CircuitEngineConfig::paper_variation(), 0xC0FFEE);
    let reference = run_stack(engine(), 13, 24, 1, Recorder::disabled());
    for workers in [1usize, 2, 4] {
        let session = TraceSession::new();
        let traced = run_stack(engine(), 13, 24, workers, session.recorder());
        assert_eq!(traced, reference, "circuit, {workers} worker(s)");
        let trace = session.drain();
        assert!(trace.events().iter().any(|e| e.name == "engine.inv"));
        assert_eq!(trace.dropped(), 0);
    }
}

#[test]
fn tracing_is_invisible_to_campaign_reports() {
    use amc_scenario::campaign::run_worker_sweep;
    use amc_scenario::campaigns;

    // The campaign path never sees a recorder handle (its workers build
    // their own solvers), so this pins the weaker-but-load-bearing
    // claim: campaign reports are bit-identical across worker counts
    // with the instrumented solver stack underneath, and the derived
    // metrics snapshot is too.
    let campaign = campaigns::worker_scaling(true).expect("campaign");
    let sweep = run_worker_sweep(&campaign, &[1, 2, 4]).expect("sweep");
    assert!(sweep.bit_identical, "campaign must not depend on workers");
    assert_eq!(
        sweep.report.metrics(),
        sweep.report.metrics(),
        "derived metrics are a pure function of the report"
    );
    assert!(sweep.report.metrics().counter("campaign.cells") > 0);
}

#[test]
fn traced_serve_responses_match_untraced_serve() {
    use amc_serve::client::Client;
    use amc_serve::server::{Server, ServerConfig};
    use amc_serve::wire::{EngineRef, MatrixRef};

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let a = generate::diagonally_dominant(16, 1.0, &mut rng).unwrap();
    let b = generate::random_vector(16, &mut rng);
    let config = blockamc::solver::SolverConfig::builder()
        .stages(Stages::One)
        .finish()
        .unwrap();
    let engine = EngineRef::new("numeric", 0);

    let solve_once = |trace: Option<TraceSession>| -> Vec<u64> {
        let server = Server::with_builtin_engines(ServerConfig {
            trace,
            ..ServerConfig::default()
        });
        let mut client = Client::new(server.loopback());
        let x = client
            .solve(MatrixRef::Inline(a.clone()), &config, &engine, &b)
            .expect("served solve");
        server.shutdown();
        drop(client); // closes the loopback, letting the connection loop exit
        server.join_connections();
        x.iter().map(|v| v.to_bits()).collect()
    };

    let untraced = solve_once(None);
    let session = TraceSession::new();
    let traced = solve_once(Some(session.clone()));
    assert_eq!(traced, untraced, "serve path must be trace-invariant");
    let trace = session.drain();
    for required in [
        "serve.decode",
        "serve.lookup",
        "serve.wait",
        "serve.dispatch",
        "serve.encode",
    ] {
        assert!(
            trace.events().iter().any(|e| e.name == required),
            "missing span {required}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The property form: any seed, any size, any worker count — the
    /// recorded run returns the exact bits of the unrecorded run.
    #[test]
    fn tracing_never_changes_solutions(
        seed in any::<u64>(),
        n in 8usize..=28,
        workers in 1usize..=4,
    ) {
        let reference = run_stack(NumericEngine::new(), seed, n, 1, Recorder::disabled());
        let session = TraceSession::new();
        let traced = run_stack(NumericEngine::new(), seed, n, workers, session.recorder());
        prop_assert_eq!(traced, reference);
    }
}

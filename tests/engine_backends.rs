//! Correctness properties of the open engine-backend API.
//!
//! * `FixedPointEngine` converges to `NumericEngine` as the word length
//!   grows — the max relative error over a spread of bit depths is
//!   monotone nonincreasing on SPD workloads (a failed solve counts as
//!   infinite error, so a grid coarse enough to break the matrix sits
//!   at the top of the ladder instead of flaking the property).
//! * The registry builds every shipped backend by name, each solves
//!   through the facade, and unknown names fail loudly.
//! * `Box<dyn AmcEngine>` supports the *whole* production surface —
//!   replication and parallel batching included — bit-identically to
//!   the concrete engine.

use amc_circuit::opamp::OpAmpSpec;
use amc_linalg::{generate, lu, metrics, Matrix};
use blockamc::batch;
use blockamc::engine::{
    AmcEngine, CircuitEngine, CircuitEngineConfig, EngineRegistry, EngineSpec, FixedPointEngine,
    NumericEngine,
};
use blockamc::solver::{BlockAmcSolver, SolverConfig, Stages};
use blockamc::BlockAmcError;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded SPD workload (Wishart) with one right-hand side.
fn spd_workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = generate::wishart_default(n, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);
    (a, b)
}

/// Max relative error of the fixed-point engine against the exact
/// solution over a small RHS set; `inf` when any solve fails.
fn fixed_point_max_error(a: &Matrix, seeds: &[u64], bits: u32) -> f64 {
    let mut engine = FixedPointEngine::new(bits).unwrap();
    let mut op = engine.program(a).unwrap();
    let mut worst = 0.0_f64;
    for &seed in seeds {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let b = generate::random_vector(a.rows(), &mut rng);
        let x_ref = match lu::solve(a, &b) {
            Ok(x) => x,
            Err(_) => return f64::INFINITY,
        };
        match engine.inv(&mut op, &b) {
            Ok(mut x) => {
                amc_linalg::vector::neg_in_place(&mut x);
                let err = metrics::relative_error(&x_ref, &x);
                if !err.is_finite() {
                    return f64::INFINITY;
                }
                worst = worst.max(err);
            }
            Err(_) => return f64::INFINITY,
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fixed_point_converges_monotonically_to_numeric(
        n in 4usize..=16,
        seed in any::<u64>(),
    ) {
        let (a, _) = spd_workload(n, seed);
        let rhs_seeds = [seed ^ 1, seed ^ 2, seed ^ 3];
        // Widely spaced depths: each step shrinks the grid by 16x, so
        // the max error over the RHS set cannot grow between rungs.
        let ladder = [6u32, 10, 14, 18, 30];
        let errors: Vec<f64> = ladder
            .iter()
            .map(|&bits| fixed_point_max_error(&a, &rhs_seeds, bits))
            .collect();
        for pair in errors.windows(2) {
            prop_assert!(
                pair[1] <= pair[0] + 1e-12,
                "error must not grow with bits: {errors:?}"
            );
        }
        prop_assert!(
            errors[ladder.len() - 1] < 1e-6,
            "30-bit grid must approach the numeric floor: {errors:?}"
        );
    }

    #[test]
    fn boxed_engine_replicates_and_batches_bit_identically(
        n in 8usize..=16,
        seed in any::<u64>(),
    ) {
        // The parallel layer end to end over Box<dyn AmcEngine>:
        // prepare, replicate, shard — merged output equals both the
        // serial path and the concrete-engine run.
        let (a, _) = spd_workload(n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBA7C4);
        let batch_rhs: Vec<Vec<f64>> = (0..9)
            .map(|_| generate::random_vector(n, &mut rng))
            .collect();
        let cfg = CircuitEngineConfig::paper_variation();
        let concrete = {
            let mut solver =
                BlockAmcSolver::new(CircuitEngine::new(cfg, seed), Stages::One);
            batch::solve_batch(&mut solver, &a, &batch_rhs, &OpAmpSpec::ideal(), 0.0).unwrap()
        };
        for workers in [1usize, 3] {
            let boxed: Box<dyn AmcEngine> = Box::new(CircuitEngine::new(cfg, seed));
            let mut solver = BlockAmcSolver::new(boxed, Stages::One);
            let erased = batch::solve_batch_parallel(
                &mut solver,
                &a,
                &batch_rhs,
                &OpAmpSpec::ideal(),
                0.0,
                workers,
            )
            .unwrap();
            prop_assert_eq!(&erased.solutions, &concrete.solutions, "workers={}", workers);
            // Integer counters aggregate exactly; the analog sums are
            // reassociated across workers, so compare those to float
            // tolerance.
            prop_assert_eq!(erased.stats.program_ops, concrete.stats.program_ops);
            prop_assert_eq!(erased.stats.inv_ops, concrete.stats.inv_ops);
            prop_assert_eq!(erased.stats.mvm_ops, concrete.stats.mvm_ops);
            let dt = (erased.stats.analog_time_s - concrete.stats.analog_time_s).abs();
            prop_assert!(dt <= 1e-9 * concrete.stats.analog_time_s.max(1e-30));
        }
    }
}

#[test]
fn registry_backends_solve_through_the_facade() {
    let (a, b) = spd_workload(12, 7);
    let x_ref = lu::solve(&a, &b).unwrap();
    let registry = EngineRegistry::builtin();
    for name in ["numeric", "blocked", "fixed-point", "circuit"] {
        let engine = registry.build(name, 3).unwrap();
        let mut solver = SolverConfig::builder()
            .stages(Stages::One)
            .build(engine)
            .unwrap();
        let report = solver.solve(&a, &b).unwrap();
        assert_eq!(report.engine, name);
        let err = metrics::relative_error(&x_ref, &report.x);
        assert!(err.is_finite() && err < 1.0, "{name}: err={err}");
        // Exact backends hit the floor; quantized/analog ones deviate.
        match name {
            "numeric" | "blocked" => assert!(err < 1e-9, "{name}: err={err}"),
            _ => assert!(err > 1e-9, "{name}: err={err}"),
        }
    }
    assert!(matches!(
        registry.build("does-not-exist", 0),
        Err(BlockAmcError::UnknownEngine { .. })
    ));
}

#[test]
fn engine_spec_is_campaign_grade_data() {
    // An EngineSpec round-trips through build() to an engine reporting
    // the spec's name — the contract scenario ladders depend on.
    let specs = [
        EngineSpec::Numeric,
        EngineSpec::Blocked { block: 16 },
        EngineSpec::FixedPoint { bits: 12 },
        EngineSpec::Circuit(CircuitEngineConfig::ideal()),
    ];
    for spec in specs {
        let engine = spec.build(11).unwrap();
        assert_eq!(engine.name(), spec.name());
    }
    // Invalid parameters fail at construction, not mid-campaign.
    assert!(EngineSpec::Blocked { block: 0 }.build(0).is_err());
    assert!(EngineSpec::FixedPoint { bits: 60 }.build(0).is_err());
}

#[test]
fn mixed_operands_are_rejected_across_all_backends() {
    let (a, _) = spd_workload(6, 9);
    let registry = EngineRegistry::builtin();
    let names: Vec<String> = registry.names().map(str::to_string).collect();
    for programmer in &names {
        for executor in &names {
            if programmer == executor {
                continue;
            }
            let mut p = registry.build(programmer, 0).unwrap();
            let mut e = registry.build(executor, 0).unwrap();
            let mut op = p.program(&a).unwrap();
            assert!(
                matches!(
                    e.inv(&mut op, &[0.1; 6]),
                    Err(BlockAmcError::OperandMismatch { .. })
                ),
                "{programmer} operand must be rejected by {executor}"
            );
        }
    }
}

#[test]
fn numeric_engine_unchanged_by_the_redesign() {
    // Spot-pin: the type-erased operand path returns exactly what the
    // closed-enum implementation returned (LU solve + negation).
    let (a, b) = spd_workload(10, 21);
    let mut engine = NumericEngine::new();
    let mut op = engine.program(&a).unwrap();
    let mut expected = lu::solve(&a, &b).unwrap();
    amc_linalg::vector::neg_in_place(&mut expected);
    assert_eq!(engine.inv(&mut op, &b).unwrap(), expected);
}

//! Property-based tests of the core invariants, spanning all crates.

use amc_linalg::{generate, lu, vector, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a well-conditioned (diagonally dominant) square matrix of
/// size 2..=10 plus a compatible RHS, both derived from a seed so that
/// shrinking works on the seed.
fn dd_system() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2usize..=10, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::diagonally_dominant(n, 1.0, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_satisfies_the_system((a, b) in dd_system()) {
        let x = lu::solve(&a, &b).unwrap();
        let back = a.matvec(&x).unwrap();
        prop_assert!(vector::approx_eq(&back, &b, 1e-7));
    }

    #[test]
    fn matrix_transpose_is_involutive((a, _b) in dd_system()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn sign_split_reconstructs_any_matrix((a, _b) in dd_system()) {
        let (p, n) = a.split_signs();
        prop_assert!(p.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert!(n.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert!(p.sub_matrix(&n).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn block_partition_recomposes((a, _b) in dd_system()) {
        if a.rows() >= 2 {
            let p = blockamc::partition::BlockPartition::halves(&a).unwrap();
            prop_assert_eq!(p.recompose(), a);
        }
    }

    #[test]
    fn one_stage_blockamc_equals_direct_solve((a, b) in dd_system()) {
        use blockamc::engine::NumericEngine;
        use blockamc::solver::{BlockAmcSolver, Stages};
        if a.rows() >= 2 {
            let x_ref = lu::solve(&a, &b).unwrap();
            let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
            let r = solver.solve(&a, &b).unwrap();
            prop_assert!(
                amc_linalg::metrics::relative_error(&x_ref, &r.x) < 1e-6,
                "one-stage diverged from LU"
            );
        }
    }

    #[test]
    fn multi_stage_equals_direct_solve_at_any_depth(
        (a, b) in dd_system(),
        depth in 0usize..4,
    ) {
        use blockamc::engine::NumericEngine;
        let x_ref = lu::solve(&a, &b).unwrap();
        let mut engine = NumericEngine::new();
        let mut prep = blockamc::multi_stage::prepare(&mut engine, &a, depth).unwrap();
        let x = blockamc::multi_stage::solve(&mut engine, &mut prep, &b).unwrap();
        prop_assert!(
            amc_linalg::metrics::relative_error(&x_ref, &x) < 1e-6,
            "depth {} diverged", depth
        );
    }

    #[test]
    fn ideal_programming_roundtrips_conductances((a, _b) in dd_system()) {
        use amc_device::array::ProgrammedMatrix;
        use amc_device::mapping::MappingConfig;
        use amc_device::variation::VariationModel;
        // Widen the window so no element is clamped: the roundtrip must be
        // exact for any matrix then.
        let mut cfg = MappingConfig::paper_default();
        cfg.g_min = 1e-15;
        cfg.g_max = 1.0;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = ProgrammedMatrix::program(&a, &cfg, &VariationModel::None, &mut rng).unwrap();
        prop_assert!(p.effective_matrix().approx_eq(&a, 1e-12 * a.max_abs()));
    }

    #[test]
    fn inv_circuit_inverts_mvm_circuit((a, b) in dd_system()) {
        use amc_circuit::sim::{AnalogSimulator, SimConfig};
        use amc_device::array::ProgrammedMatrix;
        use amc_device::mapping::MappingConfig;
        use amc_device::variation::VariationModel;
        let mut cfg = MappingConfig::paper_default();
        cfg.g_min = 1e-15;
        cfg.g_max = 1.0;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = ProgrammedMatrix::program(&a, &cfg, &VariationModel::None, &mut rng).unwrap();
        let sim = AnalogSimulator::new(SimConfig::ideal());
        // INV then MVM: mvm(inv(b)) = -A·(-A⁻¹·b) = b.
        let x = sim.inv(&p, &b).unwrap();
        let back = sim.mvm(&p, &x.values).unwrap();
        prop_assert!(
            vector::approx_eq(&back.values, &b, 1e-6 * vector::norm_inf(&b).max(1.0))
        );
    }

    #[test]
    fn relative_error_is_zero_iff_equal(v in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
        prop_assert_eq!(amc_linalg::metrics::relative_error(&v, &v), 0.0);
    }

    #[test]
    fn converter_quantization_error_is_bounded(
        v in proptest::collection::vec(-2.0f64..2.0, 1..16),
        bits in 4u32..12,
    ) {
        let c = blockamc::converter::Converter::new(bits, 1.0).unwrap();
        for (orig, q) in v.iter().zip(c.quantize_vec(&v)) {
            let clipped = orig.clamp(-1.0, 1.0);
            prop_assert!((q - clipped).abs() <= c.lsb() / 2.0 + 1e-12);
            prop_assert!(q.abs() <= 1.0 + 1e-12);
        }
    }
}

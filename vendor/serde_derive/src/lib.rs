//! Derive macros for the offline `serde` facade: they emit marker-trait
//! impls (`impl serde::Serialize for T {}`), which is all the facade's
//! traits require.
//!
//! Implemented without `syn`: the macro scans the item's tokens for the
//! type name following the `struct` / `enum` keyword. Generic types are
//! not supported (none of the workspace's serde-derived types are
//! generic).

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde facade derives support only non-generic structs and enums");
}

/// Derives the facade's marker `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the facade's marker `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

//! Derive macros for the offline `serde` facade: they emit real
//! `ToConfig` / `FromConfig` impls (re-exported by the facade from
//! `amc-config`), so every `#[derive(Serialize, Deserialize)]` in the
//! workspace becomes functional JSON (de)serialization.
//!
//! Encoding shape (matching upstream serde's defaults):
//!
//! - structs → objects keyed by field name, in declaration order;
//! - enums → externally tagged: `"Variant"` for unit variants,
//!   `{"Variant": payload}` for newtype and struct variants;
//! - `Option<T>` fields → omitted when `None`, absent-or-`null`
//!   decodes as `None`.
//!
//! Implemented without `syn`: a small token scanner extracts the item
//! shape. Supported: non-generic structs with named fields, and
//! non-generic enums with unit, single-field tuple (newtype), and
//! struct variants — the full shape inventory of the workspace's
//! serde-derived types. Anything else panics at expansion time with a
//! clear message.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// Whether the field's type is `Option<…>` (omitted-or-value).
    optional: bool,
}

enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, Vec<Field>),
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes a leading attribute (`#[…]`) if present.
fn skip_attribute(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            tokens.next();
            // Outer attribute: a bracketed group follows.
            match tokens.next() {
                Some(TokenTree::Group(_)) => true,
                other => panic!("serde derive: malformed attribute near {other:?}"),
            }
        }
        _ => false,
    }
}

/// Consumes a leading visibility qualifier (`pub`, `pub(crate)`, …) if
/// present.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Parses the named fields inside a brace group: `a: T, pub b: Option<U>`.
fn parse_fields(stream: TokenStream, context: &str) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        while skip_attribute(&mut tokens) {}
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => panic!("serde derive: expected field name in {context}, found {other}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde derive: expected ':' after field `{name}` in {context}, found {other:?}"
            ),
        }
        // Consume the type up to a comma at angle-bracket depth 0,
        // noting whether it is an `Option<…>`.
        let mut optional = false;
        let mut first_type_token = true;
        let mut angle_depth = 0usize;
        for token in tokens.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Ident(ident) if first_type_token => {
                    optional = ident.to_string() == "Option";
                }
                _ => {}
            }
            first_type_token = false;
        }
        fields.push(Field { name, optional });
    }
    fields
}

/// Parses the variants inside an enum's brace group.
fn parse_variants(stream: TokenStream, context: &str) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while skip_attribute(&mut tokens) {}
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => {
                panic!("serde derive: expected variant name in {context}, found {other}")
            }
        };
        match tokens.next() {
            None => {
                variants.push(Variant::Unit(name));
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant::Unit(name));
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                // Count top-level commas to distinguish newtype from
                // multi-field tuple variants.
                let mut angle_depth = 0usize;
                let mut element_count = 1usize;
                let mut empty = true;
                for token in group.stream() {
                    empty = false;
                    match &token {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => {
                            angle_depth = angle_depth.saturating_sub(1);
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            element_count += 1;
                        }
                        _ => {}
                    }
                }
                assert!(
                    !empty && element_count == 1,
                    "serde derive: variant `{name}` in {context}: only single-field tuple \
                     (newtype) variants are supported"
                );
                variants.push(Variant::Newtype(name));
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    tokens.next();
                }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(group.stream(), context);
                variants.push(Variant::Struct(name, fields));
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    tokens.next();
                }
            }
            Some(other) => panic!(
                "serde derive: unsupported token {other} after variant `{name}` in {context} \
                 (discriminants are not supported)"
            ),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        while skip_attribute(&mut tokens) {}
        skip_visibility(&mut tokens);
        match tokens.next() {
            None => panic!("serde derive: no struct or enum found in derive input"),
            Some(TokenTree::Ident(ident)) => {
                let keyword = ident.to_string();
                if keyword != "struct" && keyword != "enum" {
                    continue;
                }
                let Some(TokenTree::Ident(name)) = tokens.next() else {
                    panic!("serde derive: expected a type name after `{keyword}`");
                };
                let name = name.to_string();
                match tokens.next() {
                    Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                        return if keyword == "struct" {
                            Item::Struct {
                                fields: parse_fields(group.stream(), &name),
                                name,
                            }
                        } else {
                            Item::Enum {
                                variants: parse_variants(group.stream(), &name),
                                name,
                            }
                        };
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde derive: generic type `{name}` is not supported")
                    }
                    _ => panic!(
                        "serde derive: `{name}` must be a struct with named fields or an enum \
                         (tuple and unit structs are not supported)"
                    ),
                }
            }
            Some(_) => {}
        }
    }
}

/// Emits the statements building a `(String, Json)` field list from the
/// given accessor prefix (`&self.` for structs, `` for bound variant
/// fields), honoring `Option` omission.
fn encode_fields(out: &mut String, fields: &[Field], accessor: &dyn Fn(&str) -> String) {
    out.push_str(
        "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Json)> = \
         ::std::vec::Vec::new();\n",
    );
    for field in fields {
        let access = accessor(&field.name);
        if field.optional {
            out.push_str(&format!(
                "if let ::std::option::Option::Some(inner) = {access} {{\n\
                 fields.push((::std::string::String::from(\"{0}\"), \
                 ::serde::ToConfig::to_json(inner)));\n}}\n",
                field.name
            ));
        } else {
            out.push_str(&format!(
                "fields.push((::std::string::String::from(\"{0}\"), \
                 ::serde::ToConfig::to_json({access})));\n",
                field.name
            ));
        }
    }
}

fn known_list(names: impl IntoIterator<Item = String>) -> String {
    let quoted: Vec<String> = names.into_iter().map(|n| format!("\"{n}\"")).collect();
    format!("&[{}]", quoted.join(", "))
}

fn decode_field_inits(fields: &[Field], map_err: &str) -> String {
    let mut out = String::new();
    for field in fields {
        let method = if field.optional {
            "optional"
        } else {
            "required"
        };
        out.push_str(&format!(
            "{0}: record.{method}(\"{0}\"){map_err}?,\n",
            field.name
        ));
    }
    out
}

fn generate_to_config(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = if fields.is_empty() {
                "::serde::Json::Obj(::std::vec::Vec::new())".to_string()
            } else {
                let mut body = String::new();
                encode_fields(&mut body, fields, &|f| format!("&self.{f}"));
                body.push_str("::serde::Json::Obj(fields)");
                body
            };
            format!(
                "impl ::serde::ToConfig for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                match variant {
                    Variant::Unit(tag) => arms.push_str(&format!(
                        "{name}::{tag} => \
                         ::serde::Json::Str(::std::string::String::from(\"{tag}\")),\n"
                    )),
                    Variant::Newtype(tag) => arms.push_str(&format!(
                        "{name}::{tag}(value) => \
                         ::serde::Json::tagged(\"{tag}\", ::serde::ToConfig::to_json(value)),\n"
                    )),
                    Variant::Struct(tag, fields) => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut body = String::new();
                        encode_fields(&mut body, fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{tag} {{ {bindings} }} => {{\n{body}\
                             ::serde::Json::tagged(\"{tag}\", ::serde::Json::Obj(fields))\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::ToConfig for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn generate_from_config(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let known = known_list(fields.iter().map(|f| f.name.clone()));
            let inits = decode_field_inits(fields, "");
            format!(
                "impl ::serde::FromConfig for {name} {{\n\
                 fn from_json(value: &::serde::Json) \
                 -> ::std::result::Result<Self, ::serde::ConfigError> {{\n\
                 let record = ::serde::decode::fields(value, \"{name}\", {known})?;\n\
                 let _ = &record;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                match variant {
                    Variant::Unit(tag) => arms.push_str(&format!(
                        "\"{tag}\" => {{\n\
                         ::serde::decode::expect_unit(payload, \"{name}\", \"{tag}\")?;\n\
                         ::std::result::Result::Ok({name}::{tag})\n}}\n"
                    )),
                    Variant::Newtype(tag) => arms.push_str(&format!(
                        "\"{tag}\" => {{\n\
                         let payload = \
                         ::serde::decode::expect_payload(payload, \"{name}\", \"{tag}\")?;\n\
                         ::std::result::Result::Ok({name}::{tag}(\
                         ::serde::FromConfig::from_json(payload)\
                         .map_err(|e| e.at(\"{tag}\"))?))\n}}\n"
                    )),
                    Variant::Struct(tag, fields) => {
                        let known = known_list(fields.iter().map(|f| f.name.clone()));
                        let map_err = format!(".map_err(|e| e.at(\"{tag}\"))");
                        let inits = decode_field_inits(fields, &map_err);
                        arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let payload = \
                             ::serde::decode::expect_payload(payload, \"{name}\", \"{tag}\")?;\n\
                             let record = ::serde::decode::fields(\
                             payload, \"{name}::{tag}\", {known}){map_err}?;\n\
                             let _ = &record;\n\
                             ::std::result::Result::Ok({name}::{tag} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            let known = known_list(variants.iter().map(|v| match v {
                Variant::Unit(tag) | Variant::Newtype(tag) | Variant::Struct(tag, _) => tag.clone(),
            }));
            format!(
                "impl ::serde::FromConfig for {name} {{\n\
                 fn from_json(value: &::serde::Json) \
                 -> ::std::result::Result<Self, ::serde::ConfigError> {{\n\
                 let (tag, payload) = ::serde::decode::variant(value, \"{name}\")?;\n\
                 match tag {{\n{arms}\
                 _ => ::std::result::Result::Err(\
                 ::serde::decode::unknown_variant(\"{name}\", tag, {known})),\n}}\n}}\n}}\n"
            )
        }
    }
}

/// Derives `serde::Serialize` (an alias of `amc_config::ToConfig`):
/// structs encode as field-name objects, enums externally tagged,
/// `Option` fields omitted when `None`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_to_config(&item)
        .parse()
        .expect("generated ToConfig impl parses")
}

/// Derives `serde::Deserialize` (an alias of `amc_config::FromConfig`):
/// strict decoding that rejects unknown fields and unknown variant
/// tags, listing the known alternatives.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_from_config(&item)
        .parse()
        .expect("generated FromConfig impl parses")
}

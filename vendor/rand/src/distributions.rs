//! Distributions: the [`Distribution`] trait and the [`Standard`]
//! distribution, mirroring `rand::distributions`.

/// A type that can produce values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over the natural domain of the
/// type (`[0, 1)` for floats, all values for integers, fair coin for
/// `bool`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, as upstream: uniform on [0, 1).
        let bits = rng.next_u64() >> 11;
        bits as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let bits = rng.next_u32() >> 8;
        bits as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64
);

#[cfg(test)]
mod tests {

    use crate::{Rng, RngCore};

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(20);
            self.0
        }
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = Counter(5);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((3500..6500).contains(&trues), "trues={trues}");
    }
}

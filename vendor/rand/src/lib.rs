//! Minimal offline stand-in for the parts of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a small, deterministic implementation of the exact
//! API surface it consumes: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `sample`), [`SeedableRng`], and [`distributions::Distribution`] with
//! the [`distributions::Standard`] distribution. Semantics follow the
//! upstream documentation (e.g. `Standard` samples `f64` uniformly from
//! `[0, 1)` with 53 random bits, and the default `seed_from_u64` is the
//! upstream SplitMix64 expansion), so swapping the real crate back in
//! changes only the stream details, not any contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;

use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that supports uniform single-value sampling.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires a non-empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range requires a non-empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64
    /// exactly as the upstream default implementation does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood), as in upstream rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct StepRng(u64);

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StepRng(42);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let k = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StepRng(1);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

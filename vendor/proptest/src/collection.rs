//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.next_below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty size range");
        start + rng.next_below((end - start) as u64 + 1) as usize
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// Generates `Vec`s whose length is drawn from `len` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

//! The [`Strategy`] trait and the combinators used by this workspace:
//! ranges, tuples, [`Just`], and `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for generating values of a type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying up to a fixed
    /// budget (upstream semantics, simplified).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted its retry budget: {}", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.next_below(span) as i64) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i64 - start as i64) as u64 + 1;
                (start as i64 + rng.next_below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

//! The deterministic RNG driving strategy generation.

/// A small, fast, deterministic generator (SplitMix64) keyed by the test
/// name and case index, so every case is reproducible without a
/// persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

//! Minimal offline stand-in for the `proptest` 1.x API surface this
//! workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, [`arbitrary::any`], range and tuple strategies,
//! [`collection::vec`], and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (all workspace strategies derive from a seed, so the seed
//!   identifies the counterexample).
//! * **Deterministic.** Case `i` of test `t` always sees the same
//!   inputs, so CI failures reproduce locally without a persistence
//!   file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::TestRng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests.
///
/// Supported grammar (the subset of upstream used in this workspace):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(pattern in strategy, ...) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn square(x: u32) -> u64 {
        (x as u64) * (x as u64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn squares_are_monotone(x in 0u32..1000) {
            prop_assert!(square(x + 1) > square(x));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (1usize..=5, 1usize..=5).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b > a);
            prop_assert!((1..=5).contains(&a));
        }

        #[test]
        fn vec_strategy_respects_bounds(v in crate::collection::vec(-1.0f64..1.0, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn any_u64_is_deterministic_per_case(seed in any::<u64>()) {
            // Regenerating from the same case index yields the same seed.
            let _ = seed;
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(crate::TestRng::for_case("x", 3).next_u64(), c.next_u64());
    }
}

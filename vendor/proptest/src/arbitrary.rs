//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (upstream also generates
    /// non-finite values; the workspace's properties all require finite
    /// inputs, so this stand-in stays finite).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let magnitude = rng.next_f64() * 600.0 - 300.0; // 10^±300
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * 10f64.powf(magnitude / 10.0)
    }
}

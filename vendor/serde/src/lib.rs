//! Minimal offline facade for `serde`.
//!
//! The workspace's `serde` features only *derive* `Serialize` /
//! `Deserialize` on plain data types; nothing in-tree serializes
//! through a format crate yet. This facade therefore ships the two
//! traits as markers plus derive macros emitting marker impls, which
//! keeps every `#[cfg_attr(feature = "serde", …)]` compiling offline.
//! When a real serializer is needed, replace this vendored crate with
//! upstream serde — the attribute surface is identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

//! Offline facade for `serde`, backed by the workspace's `amc-config`
//! subsystem.
//!
//! The facade used to ship marker traits only; it now re-exports the
//! real serialization machinery so every
//! `#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]` in
//! the tree emits functional [`ToConfig`] / [`FromConfig`] impls:
//! structs encode as field-name objects, enums encode externally
//! tagged, and `Option` fields are omitted when `None`. See
//! `amc-config`'s crate docs for the on-disk format.
//!
//! Like upstream serde, the `Serialize` / `Deserialize` names resolve
//! to the derive macros in the macro namespace and to the traits
//! (aliases of [`ToConfig`] / [`FromConfig`]) in the type namespace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use amc_config::decode;
pub use amc_config::{ConfigError, FromConfig, Json, ParseError, ToConfig};
pub use amc_config::{FromConfig as Deserialize, ToConfig as Serialize};
pub use serde_derive::{Deserialize, Serialize};

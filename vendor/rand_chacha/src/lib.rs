//! Minimal offline stand-in for `rand_chacha`: a real ChaCha8 keystream
//! generator exposing the [`ChaCha8Rng`] type the workspace seeds with
//! `SeedableRng::seed_from_u64`.
//!
//! The block function is the standard ChaCha construction (Bernstein,
//! 2008) with 8 rounds; only the `rand_core` plumbing around it is
//! simplified. Streams are deterministic functions of the 32-byte seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A cryptographically-strong deterministic generator: ChaCha with 8
/// rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key-stream generation state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill needed".
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_nondegenerate() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        // No stuck or trivially repeating output.
        assert!(words.windows(2).any(|w| w[0] != w[1]));
        let zeros = words.iter().filter(|&&w| w == 0).count();
        assert!(zeros < 4, "too many zero words: {zeros}");
    }

    #[test]
    fn deterministic_and_cloneable() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let first: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);

        let mut c = a.clone();
        assert_eq!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn block_boundary_is_seamless() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        // Consume 40 words: crosses two block refills.
        let out: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        assert_eq!(out.len(), 40);
        // Words within and across blocks should not repeat trivially.
        assert_ne!(out[0], out[16]);
        assert_ne!(out[16], out[32]);
    }
}

//! Minimal offline stand-in for the `criterion` 0.5 API surface this
//! workspace's benches use: [`Criterion::benchmark_group`],
//! `bench_with_input` / `bench_function`, [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//!
//! Instead of criterion's statistical analysis it runs a short
//! warm-up, then times a fixed-duration measurement loop and prints
//! mean iteration time — enough to compare orders of magnitude and to
//! keep `cargo bench` runnable offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, like upstream's `black_box`.
pub use std::hint::black_box;

/// The benchmark harness entry point.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name.to_string(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measurement, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; this harness has no
    /// sampling statistics, so the call is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, labeling the result with `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.criterion.measurement, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a function with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.criterion.measurement, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        measurement,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    println!(
        "  {label}: {:.3} µs/iter ({} iters)",
        per_iter * 1e6,
        bencher.iters
    );
}

/// Times a closure in a measurement loop.
pub struct Bencher {
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also primes lazy state).
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

/// A benchmark label with an attached parameter, like upstream.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Declares a group of benchmark functions, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &step| {
            b.iter(|| {
                count += step;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("solve", 64).to_string(), "solve/64");
    }
}

//! The campaign determinism contract: sharding trials across workers
//! must be invisible in the report — bit-identical output at 1, 2, and
//! 4 workers, for the hand-built campaigns and the shipped ones alike.

use amc_scenario::campaign::{run_worker_sweep, Campaign, Nonideality};
use amc_scenario::workload::{WorkloadFamily, WorkloadSpec};
use blockamc::engine::CircuitEngineConfig;
use blockamc::solver::{SolverConfig, Stages};

fn small_campaign() -> Campaign {
    Campaign::builder("equivalence")
        .workload(WorkloadSpec::new("wishart", WorkloadFamily::Wishart, 12, 3))
        .workload(WorkloadSpec::new("pdn", WorkloadFamily::Pdn, 12, 4))
        .solver(
            "one",
            SolverConfig::builder()
                .stages(Stages::One)
                .capture_trace(false)
                .finish()
                .unwrap(),
        )
        .solver(
            "two",
            SolverConfig::builder()
                .stages(Stages::Two)
                .capture_trace(false)
                .finish()
                .unwrap(),
        )
        .nonideality(Nonideality::circuit(
            "variation",
            CircuitEngineConfig::paper_variation(),
        ))
        .trials(5)
        .rhs_per_trial(2)
        .seed(0xE9)
        .finish()
        .unwrap()
}

#[test]
fn campaign_reports_are_bit_identical_at_1_2_4_workers() {
    let campaign = small_campaign();
    let serial = campaign.run_with_workers(1).unwrap();
    assert_eq!(serial.cells.len(), 4);
    for cell in &serial.cells {
        assert_eq!(cell.completed, 5, "{}-{}", cell.workload, cell.solver);
        assert_eq!(cell.errors.count, 10, "5 trials x 2 RHS");
    }
    for workers in [2usize, 4] {
        let sharded = campaign.run_with_workers(workers).unwrap();
        assert_eq!(sharded, serial, "workers={workers}");
    }
}

#[test]
fn worker_sweep_confirms_identity_and_times_every_count() {
    let sweep = run_worker_sweep(&small_campaign(), &[1, 2, 4]).unwrap();
    assert!(sweep.bit_identical);
    assert_eq!(
        sweep.timings.iter().map(|&(w, _)| w).collect::<Vec<_>>(),
        vec![1, 2, 4]
    );
    assert!(sweep.timings.iter().all(|&(_, s)| s >= 0.0));
}

#[test]
fn shipped_campaigns_are_worker_invariant_in_quick_mode() {
    // The four in-repo campaigns uphold the same contract end to end —
    // including the engine ladder, whose cells mix digital and analog
    // backends built from EngineSpec data per trial.
    for campaign in [
        amc_scenario::campaigns::depth_sweep(true).unwrap(),
        amc_scenario::campaigns::split_rule_study(true).unwrap(),
        amc_scenario::campaigns::worker_scaling(true).unwrap(),
        amc_scenario::campaigns::engine_ladder(true).unwrap(),
    ] {
        let serial = campaign.run_with_workers(1).unwrap();
        let sharded = campaign.run_with_workers(3).unwrap();
        assert_eq!(serial, sharded, "{}", campaign.name());
    }
}

//! Property tests for the workload registry: every family must uphold
//! its advertised structure (symmetry, definiteness, dominance), be
//! deterministic per seed, and respect its conditioning contract across
//! sizes and seeds — the invariants campaigns silently rely on.

use amc_linalg::{cholesky, lu::LuFactor};
use amc_scenario::workload::{near_square_factors, WorkloadFamily, WorkloadSpec};
use proptest::prelude::*;

fn cond_estimate(a: &amc_linalg::Matrix) -> f64 {
    LuFactor::new(a)
        .map(|lu| lu.cond_estimate(a.norm_one()))
        .unwrap_or(f64::INFINITY)
}

/// The SPD families of the registry, parameterized exactly as
/// `default_registry` ships them.
fn spd_families() -> Vec<(&'static str, WorkloadFamily)> {
    vec![
        ("wishart", WorkloadFamily::Wishart),
        (
            "toeplitz-spd",
            WorkloadFamily::ToeplitzSpd {
                kernel_len: 8,
                ridge: 0.02,
            },
        ),
        ("poisson2d", WorkloadFamily::Poisson2d),
        ("path", WorkloadFamily::PathLaplacian { ground: 0.05 }),
        ("ring", WorkloadFamily::RingLaplacian { ground: 0.05 }),
        (
            "random-regular",
            WorkloadFamily::RandomRegular {
                degree: 4,
                ground: 0.2,
            },
        ),
        ("pdn", WorkloadFamily::Pdn),
        ("spd-cond", WorkloadFamily::SpdWithCondition { cond: 1e4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every SPD family delivers symmetric positive-definite matrices of
    /// the requested size, at any size and seed.
    #[test]
    fn spd_families_deliver_spd_instances(n in 4usize..40, seed in 0u64..1000) {
        for (name, family) in spd_families() {
            let inst = WorkloadSpec::new(name, family, n, seed)
                .instantiate(1)
                .unwrap();
            prop_assert_eq!(inst.matrix.shape(), (n, n), "{}", name);
            prop_assert!(inst.matrix.is_symmetric(1e-12), "{} not symmetric", name);
            prop_assert!(
                cholesky::is_spd(&inst.matrix, 1e-12),
                "{} not SPD at n={} seed={}", name, n, seed
            );
            prop_assert_eq!(inst.rhs[0].len(), n);
            prop_assert!(inst.meta.spd, "{} metadata disagrees", name);
        }
    }

    /// Instantiation is a pure function of (family, n, seed).
    #[test]
    fn instances_are_seed_deterministic(n in 4usize..32, seed in 0u64..1000) {
        for (name, family) in spd_families() {
            let a = WorkloadSpec::new(name, family, n, seed).instantiate(2).unwrap();
            let b = WorkloadSpec::new(name, family, n, seed).instantiate(2).unwrap();
            prop_assert_eq!(&a.matrix, &b.matrix, "{}", name);
            prop_assert_eq!(&a.rhs, &b.rhs, "{}", name);
            // A different seed moves the random families.
            if matches!(
                family,
                WorkloadFamily::Wishart | WorkloadFamily::SpdWithCondition { .. }
            ) {
                let c = WorkloadSpec::new(name, family, n, seed.wrapping_add(1))
                    .instantiate(2)
                    .unwrap();
                prop_assert_ne!(&a.matrix, &c.matrix, "{}", name);
            }
        }
    }

    /// The guarded raw-Toeplitz family honours its condition ceiling.
    #[test]
    fn guarded_toeplitz_respects_max_cond(n in 4usize..48, seed in 0u64..1000) {
        let inst = WorkloadSpec::new(
            "raw",
            WorkloadFamily::ToeplitzRaw { max_cond: 1e8 },
            n,
            seed,
        )
        .instantiate(1)
        .unwrap();
        prop_assert!(inst.meta.cond_estimate <= 1e8);
        prop_assert!(cond_estimate(&inst.matrix) <= 1e8);
    }

    /// The condition-targeted family is monotone in its target: a
    /// 100x larger target produces a (strictly) larger estimate.
    #[test]
    fn cond_targeted_family_is_monotone(n in 8usize..32, seed in 0u64..1000) {
        let est = |cond: f64| {
            let inst = WorkloadSpec::new("c", WorkloadFamily::SpdWithCondition { cond }, n, seed)
                .instantiate(1)
                .unwrap();
            inst.meta.cond_estimate
        };
        let lo = est(1e2);
        let mid = est(1e4);
        let hi = est(1e6);
        prop_assert!(lo < mid, "{lo} < {mid}");
        prop_assert!(mid < hi, "{mid} < {hi}");
    }
}

#[test]
fn near_square_factors_multiply_back() {
    for n in 1..200 {
        let (r, c) = near_square_factors(n);
        assert_eq!(r * c, n);
        assert!(r <= c);
    }
}

#[test]
fn graph_laplacian_conditioning_tracks_the_ground() {
    // Weaker grounding -> worse conditioning, for path and ring alike.
    for family in [
        |g| WorkloadFamily::PathLaplacian { ground: g },
        |g| WorkloadFamily::RingLaplacian { ground: g },
    ] {
        let est = |ground: f64| {
            WorkloadSpec::new("g", family(ground), 24, 5)
                .instantiate(1)
                .unwrap()
                .meta
                .cond_estimate
        };
        assert!(est(0.01) > est(0.1));
        assert!(est(0.1) > est(1.0));
    }
}

#[test]
fn pdn_and_poisson_sizes_follow_the_grid_factorization() {
    for n in [12usize, 16, 30, 36] {
        for family in [WorkloadFamily::Pdn, WorkloadFamily::Poisson2d] {
            let inst = WorkloadSpec::new("w", family, n, 1).instantiate(1).unwrap();
            assert_eq!(inst.matrix.rows(), n);
        }
    }
}

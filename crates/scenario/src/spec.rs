//! Campaigns as files: the declarative spec layer over [`Campaign`].
//!
//! A [`CampaignSpec`] is the pure-data mirror of a built [`Campaign`]:
//! every axis (workloads, solver grid, nonideality ladder) plus the
//! trial/sharding/seed knobs, with nothing resolved — engine backends
//! stay as an inline [`EngineSpec`] or a registry *name*. It derives
//! `serde::Serialize` / `serde::Deserialize`, so a campaign can live in
//! a committed JSON file and load back through the same
//! [`Campaign::builder`] path the in-code studies use
//! ([`CampaignSpec::lower`] re-validates everything the builder does).
//!
//! A [`CampaignFile`] pairs a `quick` and a `full` variant of the same
//! study — the on-disk shape of the shipped `campaigns/*.json` files —
//! mirroring the `quick: bool` parameter the in-code constructors in
//! [`crate::campaigns`] take.
//!
//! Lowering is exact: for any campaign,
//! `CampaignSpec::from_campaign(&c).lower(registry)?` compares equal to
//! `c` (same axes, same seeds, same worker default), so file-loaded
//! campaigns produce bit-identical reports to their in-code twins at
//! any worker count.

use std::path::Path;

use blockamc::engine::{EngineRegistry, EngineSpec};
use blockamc::solver::SolverConfig;

use crate::campaign::{Campaign, EngineSel, Nonideality};
use crate::workload::WorkloadSpec;
use crate::{Result, ScenarioError};

/// One named solver configuration of the campaign grid (the spec twin
/// of [`crate::campaign::SolverCell`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SolverSpec {
    /// Display label used in reports (unique within a campaign).
    pub label: String,
    /// The solver configuration (decoded through
    /// [`SolverConfig::builder`], so invalid files are rejected with the
    /// builder's own diagnostics).
    pub config: SolverConfig,
}

/// Backend selection as pure data (the spec twin of [`EngineSel`]):
/// an inline engine spec or a name resolved against the campaign's
/// [`EngineRegistry`] at lowering time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EngineSelSpec {
    /// An inline backend specification.
    Spec(EngineSpec),
    /// A backend resolved by registry name (e.g. `"simd"`).
    Registered(String),
}

/// One rung of the nonideality ladder (the spec twin of
/// [`Nonideality`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RungSpec {
    /// Display label used in reports.
    pub label: String,
    /// The backend this rung runs on.
    pub engine: EngineSelSpec,
}

/// A complete campaign as pure data — see the module docs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignSpec {
    /// Campaign name used in reports and file names.
    pub name: String,
    /// The workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// The solver-grid axis.
    pub solvers: Vec<SolverSpec>,
    /// The nonideality axis.
    pub ladder: Vec<RungSpec>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Right-hand sides drawn per trial.
    pub rhs_per_trial: usize,
    /// Default worker count of [`Campaign::run`] (reports are
    /// bit-identical at any worker count; this only sets the default).
    pub workers: usize,
    /// Base seed all trial streams derive from.
    pub seed: u64,
}

impl CampaignSpec {
    /// Captures a built campaign as pure data. Inverse of
    /// [`CampaignSpec::lower`] up to the engine registry (which is
    /// runtime state, not data: the spec keeps only the *names* of
    /// registered rungs).
    pub fn from_campaign(campaign: &Campaign) -> CampaignSpec {
        CampaignSpec {
            name: campaign.name().to_string(),
            workloads: campaign.workloads().to_vec(),
            solvers: campaign
                .solvers()
                .iter()
                .map(|cell| SolverSpec {
                    label: cell.label.clone(),
                    config: cell.config.clone(),
                })
                .collect(),
            ladder: campaign
                .ladder()
                .iter()
                .map(|rung| RungSpec {
                    label: rung.label.to_string(),
                    engine: match &rung.engine {
                        EngineSel::Spec(spec) => EngineSelSpec::Spec(*spec),
                        EngineSel::Registered(name) => {
                            EngineSelSpec::Registered((*name).to_string())
                        }
                    },
                })
                .collect(),
            trials: campaign.trials(),
            rhs_per_trial: campaign.rhs_per_trial(),
            workers: campaign.workers(),
            seed: campaign.seed(),
        }
    }

    /// Builds the runnable campaign through [`Campaign::builder`],
    /// re-validating every axis and knob exactly like the in-code
    /// constructors (empty axes, zero trials, and unresolvable
    /// registered backends are rejected at [`Campaign::run`] /
    /// builder time, not mid-campaign).
    ///
    /// Labels become `&'static str` by leaking — campaign specs are
    /// loaded a handful of times per process, so the bytes are
    /// negligible and the leak keeps [`Nonideality`]'s zero-cost label
    /// type unchanged.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] from the builder's validation.
    pub fn lower(&self, registry: EngineRegistry) -> Result<Campaign> {
        let mut builder = Campaign::builder(self.name.clone())
            .workloads(self.workloads.iter().cloned())
            .trials(self.trials)
            .rhs_per_trial(self.rhs_per_trial)
            .workers(self.workers)
            .seed(self.seed)
            .registry(registry);
        for solver in &self.solvers {
            builder = builder.solver(solver.label.clone(), solver.config.clone());
        }
        for rung in &self.ladder {
            let label: &'static str = Box::leak(rung.label.clone().into_boxed_str());
            builder = builder.nonideality(match &rung.engine {
                EngineSelSpec::Spec(spec) => Nonideality::spec(label, *spec),
                EngineSelSpec::Registered(name) => {
                    Nonideality::registered(label, Box::leak(name.clone().into_boxed_str()))
                }
            });
        }
        builder.finish()
    }
}

/// The on-disk shape of a shipped campaign file: the same study at two
/// scales, selected by the `repro` binary's `--quick` flag.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignFile {
    /// The CI-sized variant (`repro --quick`).
    pub quick: CampaignSpec,
    /// The full study.
    pub full: CampaignSpec,
}

impl CampaignFile {
    /// Selects the variant matching the `--quick` flag.
    pub fn select(&self, quick: bool) -> &CampaignSpec {
        if quick {
            &self.quick
        } else {
            &self.full
        }
    }

    /// Decodes a campaign file from JSON text.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] carrying the parser's positioned
    /// message (line/column for syntax errors, a `path` into the
    /// document for schema errors).
    pub fn from_json_str(text: &str) -> Result<CampaignFile> {
        let value = serde::Json::parse(text)
            .map_err(|e| ScenarioError::spec(format!("campaign file: {e}")))?;
        serde::FromConfig::from_json(&value)
            .map_err(|e| ScenarioError::spec(format!("campaign file: {e}")))
    }

    /// Reads and decodes a campaign file from disk.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] for I/O failures and everything
    /// [`CampaignFile::from_json_str`] rejects.
    pub fn load(path: impl AsRef<Path>) -> Result<CampaignFile> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::spec(format!("cannot read '{}': {e}", path.display())))?;
        CampaignFile::from_json_str(&text).map_err(|e| match e {
            ScenarioError::InvalidSpec { message } => {
                ScenarioError::spec(format!("{}: {message}", path.display()))
            }
            other => other,
        })
    }

    /// Renders the file as the repo's canonical pretty-printed JSON
    /// (the exact bytes `repro export-campaigns` commits).
    pub fn render(&self) -> String {
        serde::ToConfig::to_json(self).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaigns;
    use crate::workload::WorkloadFamily;
    use blockamc::solver::{SolverConfig, Stages};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".to_string(),
            workloads: vec![WorkloadSpec::new(
                "poisson",
                WorkloadFamily::Poisson2d,
                16,
                1,
            )],
            solvers: vec![SolverSpec {
                label: "one-stage".to_string(),
                config: SolverConfig::builder()
                    .stages(Stages::One)
                    .finish()
                    .unwrap(),
            }],
            ladder: vec![
                RungSpec {
                    label: "numeric".to_string(),
                    engine: EngineSelSpec::Spec(EngineSpec::Numeric),
                },
                RungSpec {
                    label: "by-name".to_string(),
                    engine: EngineSelSpec::Registered("blocked".to_string()),
                },
            ],
            trials: 2,
            rhs_per_trial: 1,
            workers: 1,
            seed: 7,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec();
        let text = serde::ToConfig::to_json(&spec).render();
        let back: CampaignSpec =
            serde::FromConfig::from_json(&serde::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn lowering_is_the_inverse_of_capture() {
        for quick in [false, true] {
            let campaign = campaigns::engine_ladder(quick).unwrap();
            let spec = CampaignSpec::from_campaign(&campaign);
            let lowered = spec.lower(campaigns::extended_registry()).unwrap();
            assert_eq!(lowered, campaign);
        }
    }

    #[test]
    fn campaign_file_round_trips_and_selects() {
        let quick = tiny_spec();
        let mut full = tiny_spec();
        full.trials = 10;
        let file = CampaignFile {
            quick: quick.clone(),
            full: full.clone(),
        };
        let back = CampaignFile::from_json_str(&file.render()).unwrap();
        assert_eq!(back, file);
        assert_eq!(back.select(true), &quick);
        assert_eq!(back.select(false), &full);
    }

    #[test]
    fn lowering_validates_like_the_builder() {
        let mut spec = tiny_spec();
        spec.trials = 0;
        let err = spec.lower(EngineRegistry::builtin()).unwrap_err();
        assert!(err.to_string().contains("trial"), "{err}");
    }

    #[test]
    fn malformed_files_are_rejected_with_positions() {
        let err = CampaignFile::from_json_str("{\n  \"quick\": ?\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");

        let spec = tiny_spec();
        let file = CampaignFile {
            quick: spec.clone(),
            full: spec,
        };
        let misspelled = file.render().replace("\"trials\"", "\"trails\"");
        let err = CampaignFile::from_json_str(&misspelled).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("trails") && msg.contains("trials"), "{msg}");
    }
}

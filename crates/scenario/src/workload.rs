//! The workload registry: linear-system families as declarative specs.
//!
//! A [`WorkloadSpec`] is pure data — a family, a size, and a seed — and
//! [`WorkloadSpec::instantiate`] turns it into a concrete matrix, a
//! right-hand-side stream, and measured per-instance metadata (condition
//! estimate, symmetry, diagonal dominance, definiteness). Campaigns
//! cross lists of specs with solver grids; nothing downstream needs to
//! know how a family is generated.
//!
//! The registry wraps the paper's two benchmark families
//! (`amc_linalg::generate`'s Wishart and Toeplitz) and adds families
//! biased toward scenario *diversity*: a 2-D Poisson operator (physics),
//! grounded graph Laplacians from path/ring/random-regular topologies
//! (networks), power-delivery-network conductance matrices exported
//! from an `amc_circuit::mna` netlist (EDA), and a condition-targeted
//! SPD family that isolates conditioning from structure.

use amc_circuit::pdn::{pdn_matrix, PdnSpec};
use amc_linalg::{cholesky, generate, lu::LuFactor, Matrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Result, ScenarioError};

/// A matrix family the registry can draw instances from.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WorkloadFamily {
    /// Wishart `A = XᵀX/m`, `m = 4n` — the paper's benchmark family,
    /// well-conditioned (κ ≈ 9) at every size.
    Wishart,
    /// SPD autocorrelation Toeplitz (the paper's convolution context);
    /// conditioning grows with `n` toward the symbol's max/min ratio.
    ToeplitzSpd {
        /// Autocorrelation kernel length.
        kernel_len: usize,
        /// Relative diagonal ridge (bounds κ by ≈ `1 + 1/ridge`).
        ridge: f64,
    },
    /// Raw random Toeplitz behind the seeded condition guard
    /// (`generate::random_toeplitz_conditioned`) — ill-conditioned but
    /// never catastrophically so.
    ToeplitzRaw {
        /// Condition-estimate ceiling for the resample guard.
        max_cond: f64,
    },
    /// 5-point 2-D Poisson (finite-difference Laplacian) on the most
    /// nearly square `rows x cols` factorization of `n`.
    Poisson2d,
    /// Grounded path-graph Laplacian `L + ground·I`.
    PathLaplacian {
        /// Grounding conductance (κ grows like `1/ground`).
        ground: f64,
    },
    /// Grounded ring-graph Laplacian.
    RingLaplacian {
        /// Grounding conductance.
        ground: f64,
    },
    /// Grounded random-regular (permutation-model) graph Laplacian —
    /// expander-like, flat conditioning in `n`.
    RandomRegular {
        /// Vertex degree (positive, even).
        degree: usize,
        /// Grounding conductance.
        ground: f64,
    },
    /// Power-delivery-network conductance matrix exported from an
    /// `amc_circuit::mna` grid netlist on the most nearly square
    /// factorization of `n` (seeded manufacturing jitter).
    Pdn,
    /// Random SPD with a prescribed 2-norm condition number
    /// (log-spaced spectrum under a random orthogonal basis).
    SpdWithCondition {
        /// The target condition number.
        cond: f64,
    },
}

impl WorkloadFamily {
    /// Short registry key for reports (`wishart`, `poisson2d`, …).
    pub fn key(&self) -> &'static str {
        match self {
            WorkloadFamily::Wishart => "wishart",
            WorkloadFamily::ToeplitzSpd { .. } => "toeplitz-spd",
            WorkloadFamily::ToeplitzRaw { .. } => "toeplitz-raw",
            WorkloadFamily::Poisson2d => "poisson2d",
            WorkloadFamily::PathLaplacian { .. } => "path-laplacian",
            WorkloadFamily::RingLaplacian { .. } => "ring-laplacian",
            WorkloadFamily::RandomRegular { .. } => "random-regular",
            WorkloadFamily::Pdn => "pdn",
            WorkloadFamily::SpdWithCondition { .. } => "spd-cond",
        }
    }
}

/// A declarative workload: family × size × seed, plus a display name.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// Display name used in reports (unique within a campaign).
    pub name: String,
    /// The generating family.
    pub family: WorkloadFamily,
    /// Problem size (matrix dimension).
    pub n: usize,
    /// Seed of the instance's private RNG stream.
    pub seed: u64,
}

/// Measured metadata of one instantiated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMeta {
    /// 1-norm condition estimate from the LU factorization.
    pub cond_estimate: f64,
    /// Symmetric to 1e-12 relative tolerance.
    pub symmetric: bool,
    /// Strictly diagonally dominant (weakly dominant families like the
    /// 2-D Poisson operator report `false`).
    pub diagonally_dominant: bool,
    /// Symmetric positive definite (Cholesky succeeds).
    pub spd: bool,
}

/// A concrete instance: the matrix, a deterministic right-hand-side
/// stream, and measured metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadInstance {
    /// The spec this instance was drawn from.
    pub spec: WorkloadSpec,
    /// The system matrix.
    pub matrix: Matrix,
    /// Right-hand sides drawn from the instance stream (as many as
    /// requested at instantiation).
    pub rhs: Vec<Vec<f64>>,
    /// Measured properties of `matrix`.
    pub meta: WorkloadMeta,
}

impl WorkloadSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, family: WorkloadFamily, n: usize, seed: u64) -> Self {
        WorkloadSpec {
            name: name.into(),
            family,
            n,
            seed,
        }
    }

    /// Draws the instance: the matrix and `rhs_count` right-hand sides,
    /// all from one ChaCha8 stream keyed on `(seed, n)` — two specs
    /// differing only in name produce identical instances.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] for `n == 0` or `rhs_count == 0`;
    /// generator parameter errors from the family constructors.
    pub fn instantiate(&self, rhs_count: usize) -> Result<WorkloadInstance> {
        if self.n == 0 {
            return Err(ScenarioError::spec(format!(
                "workload '{}' has size 0",
                self.name
            )));
        }
        if rhs_count == 0 {
            return Err(ScenarioError::spec(format!(
                "workload '{}' needs at least one right-hand side",
                self.name
            )));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(self.n as u64),
        );
        let matrix = match self.family {
            WorkloadFamily::Wishart => generate::wishart_default(self.n, &mut rng)?,
            WorkloadFamily::ToeplitzSpd { kernel_len, ridge } => {
                generate::random_spd_toeplitz(self.n, kernel_len, ridge, &mut rng)?
            }
            WorkloadFamily::ToeplitzRaw { max_cond } => {
                generate::random_toeplitz_conditioned(self.n, max_cond, &mut rng)?
            }
            WorkloadFamily::Poisson2d => {
                let (rows, cols) = near_square_factors(self.n);
                generate::poisson_2d(rows, cols)?
            }
            WorkloadFamily::PathLaplacian { ground } => generate::path_laplacian(self.n, ground)?,
            WorkloadFamily::RingLaplacian { ground } => generate::ring_laplacian(self.n, ground)?,
            WorkloadFamily::RandomRegular { degree, ground } => {
                generate::random_regular_laplacian(self.n, degree, ground, &mut rng)?
            }
            WorkloadFamily::Pdn => {
                let (rows, cols) = near_square_factors(self.n);
                let spec = PdnSpec::default_grid(rows, cols);
                pdn_matrix(&spec, &mut rng)?
            }
            WorkloadFamily::SpdWithCondition { cond } => {
                generate::spd_with_condition(self.n, cond, &mut rng)?
            }
        };
        let rhs: Vec<Vec<f64>> = (0..rhs_count)
            .map(|_| generate::random_vector(self.n, &mut rng))
            .collect();
        let meta = measure(&matrix);
        Ok(WorkloadInstance {
            spec: self.clone(),
            matrix,
            rhs,
            meta,
        })
    }
}

/// Measures the metadata of a matrix.
fn measure(a: &Matrix) -> WorkloadMeta {
    let symmetric = a.is_symmetric(1e-12);
    let cond_estimate = match LuFactor::new(a) {
        Ok(lu) => lu.cond_estimate(a.norm_one()),
        Err(_) => f64::INFINITY,
    };
    WorkloadMeta {
        cond_estimate,
        symmetric,
        diagonally_dominant: a.is_diagonally_dominant(),
        spd: symmetric && cholesky::is_spd(a, 1e-14),
    }
}

/// The most nearly square `rows x cols` factorization of `n`
/// (`rows <= cols`, `rows·cols == n`); a prime `n` degenerates to a
/// `1 x n` chain.
pub fn near_square_factors(n: usize) -> (usize, usize) {
    let mut rows = (n as f64).sqrt() as usize;
    while rows > 1 && n % rows != 0 {
        rows -= 1;
    }
    (rows.max(1), n / rows.max(1))
}

/// The default registry: one representative spec per family at size
/// `n`, seeds derived from `base_seed` — the diversity sweep `repro
/// scenarios` reports on.
pub fn default_registry(n: usize, base_seed: u64) -> Vec<WorkloadSpec> {
    let families: [(&str, WorkloadFamily); 9] = [
        ("wishart", WorkloadFamily::Wishart),
        (
            "toeplitz-spd",
            WorkloadFamily::ToeplitzSpd {
                kernel_len: 8,
                ridge: 0.02,
            },
        ),
        (
            "toeplitz-raw",
            WorkloadFamily::ToeplitzRaw {
                max_cond: generate::DEFAULT_TOEPLITZ_MAX_COND,
            },
        ),
        ("poisson2d", WorkloadFamily::Poisson2d),
        (
            "path-laplacian",
            WorkloadFamily::PathLaplacian { ground: 0.05 },
        ),
        (
            "ring-laplacian",
            WorkloadFamily::RingLaplacian { ground: 0.05 },
        ),
        (
            "random-regular",
            WorkloadFamily::RandomRegular {
                degree: 4,
                ground: 0.2,
            },
        ),
        ("pdn", WorkloadFamily::Pdn),
        (
            "spd-cond-1e4",
            WorkloadFamily::SpdWithCondition { cond: 1e4 },
        ),
    ];
    families
        .into_iter()
        .enumerate()
        .map(|(k, (name, family))| {
            WorkloadSpec::new(name, family, n, base_seed.wrapping_add(101 * k as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_factorization() {
        assert_eq!(near_square_factors(16), (4, 4));
        assert_eq!(near_square_factors(12), (3, 4));
        assert_eq!(near_square_factors(32), (4, 8));
        assert_eq!(near_square_factors(7), (1, 7));
        assert_eq!(near_square_factors(1), (1, 1));
    }

    #[test]
    fn instances_are_deterministic_per_seed() {
        for spec in default_registry(16, 42) {
            let a = spec.instantiate(2).unwrap();
            let b = spec.instantiate(2).unwrap();
            assert_eq!(a, b, "{}", spec.name);
            assert_eq!(a.matrix.shape(), (16, 16));
            assert_eq!(a.rhs.len(), 2);
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let specs = default_registry(8, 0);
        for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                assert_ne!(specs[i].name, specs[j].name);
            }
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let spec = WorkloadSpec::new("w", WorkloadFamily::Wishart, 0, 1);
        assert!(spec.instantiate(1).is_err());
        let spec = WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1);
        assert!(spec.instantiate(0).is_err());
        let spec = WorkloadSpec::new(
            "bad-degree",
            WorkloadFamily::RandomRegular {
                degree: 3,
                ground: 0.1,
            },
            8,
            1,
        );
        assert!(spec.instantiate(1).is_err());
    }

    #[test]
    fn metadata_reflects_the_family() {
        let spd = WorkloadSpec::new("p", WorkloadFamily::Poisson2d, 16, 3)
            .instantiate(1)
            .unwrap();
        assert!(spd.meta.spd && spd.meta.symmetric);
        // 2-D Poisson interior rows are only weakly dominant.
        assert!(!spd.meta.diagonally_dominant);
        assert!(spd.meta.cond_estimate.is_finite());

        let pdn = WorkloadSpec::new("g", WorkloadFamily::Pdn, 12, 3)
            .instantiate(1)
            .unwrap();
        assert!(pdn.meta.spd && pdn.meta.symmetric && pdn.meta.diagonally_dominant);

        let raw = WorkloadSpec::new("t", WorkloadFamily::ToeplitzRaw { max_cond: 1e8 }, 16, 3)
            .instantiate(1)
            .unwrap();
        assert!(!raw.meta.spd, "raw Toeplitz draws are not symmetric");
        assert!(raw.meta.cond_estimate <= 1e8);
    }
}

//! # amc-scenario — declarative workloads and the campaign engine
//!
//! The reproduction's studies used to be imperative: every new question
//! (depth tolerance, split rules, worker scaling, …) meant another
//! hand-coded sweep in the repro binary. This crate turns a study into
//! **data**:
//!
//! * [`workload`] — a registry of linear-system families behind one
//!   spec type: [`WorkloadSpec`] `{ name, family, n, seed }` →
//!   matrix + RHS stream + measured metadata. Families span the paper's
//!   benchmarks (Wishart, Toeplitz) and new scenario-diverse ones:
//!   2-D Poisson, grounded graph Laplacians, power-delivery-network
//!   matrices exported from `amc_circuit::mna` netlists, and a
//!   condition-targeted SPD family.
//! * [`campaign`] — the engine: a [`Campaign`] crosses workloads × a
//!   named [`SolverConfig`](blockamc::solver::SolverConfig) grid × a
//!   nonideality ladder × Monte-Carlo trials, shards trials over
//!   `amc-par` workers (bit-identical to serial at any worker count),
//!   and emits per-cell [`CellRecord`]s: error statistics,
//!   engine-measured analog cost, and `amc-arch` cascade-model scoring.
//!   Each [`Nonideality`] rung selects its backend as data — an inline
//!   [`EngineSpec`](blockamc::engine::EngineSpec) or a name resolved in
//!   the campaign's
//!   [`EngineRegistry`](blockamc::engine::EngineRegistry)
//!   ([`EngineSel`]); every trial's executor is built behind
//!   `Box<dyn AmcEngine>` from selection + seed.
//! * [`campaigns`] — the shipped studies `repro scenarios` runs:
//!   depth sweep with per-level bus placement, `Searched` vs `Halves`
//!   splits on ill-conditioned families, the worker-scaling campaign,
//!   the engine ladder comparing every shipped backend (plus the
//!   registered `amc-engine-simd` backend, run purely by name), and
//!   the large-`n` simd scaling campaign.
//! * [`spec`] — campaigns as *files*: [`CampaignSpec`] is the pure-data
//!   mirror of a built [`Campaign`] (serialized with `amc-config`'s
//!   strict JSON), [`CampaignFile`] pairs a `quick` and a `full`
//!   variant, and [`CampaignSpec::lower`] rebuilds the runnable
//!   campaign through [`Campaign::builder`] — file-loaded studies are
//!   bit-identical to their in-code twins at any worker count.
//!
//! # Example
//!
//! ```
//! use amc_scenario::campaign::{Campaign, Nonideality};
//! use amc_scenario::workload::{WorkloadFamily, WorkloadSpec};
//! use blockamc::engine::CircuitEngineConfig;
//! use blockamc::solver::{SolverConfig, Stages};
//!
//! # fn main() -> Result<(), amc_scenario::ScenarioError> {
//! let campaign = Campaign::builder("example")
//!     .workload(WorkloadSpec::new("poisson", WorkloadFamily::Poisson2d, 16, 1))
//!     .solver(
//!         "one-stage",
//!         SolverConfig::builder().stages(Stages::One).finish()?,
//!     )
//!     .nonideality(Nonideality::circuit(
//!         "variation",
//!         CircuitEngineConfig::paper_variation(),
//!     ))
//!     .trials(3)
//!     .finish()?;
//! let report = campaign.run()?;
//! assert_eq!(report.cells.len(), 1);
//! assert!(report.cells[0].errors.mean > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod campaigns;
mod error;
pub mod lifetime;
pub mod spec;
pub mod workload;

pub use campaign::{Campaign, CampaignReport, CellRecord, EngineSel, Nonideality, SolverCell};
pub use error::ScenarioError;
pub use lifetime::{
    run_lifetime_worker_sweep, LifetimeCampaign, LifetimeCellRecord, LifetimeReport,
    LifetimeSummary, PolicyCell, RepairPolicy,
};
pub use spec::{CampaignFile, CampaignSpec, EngineSelSpec, RungSpec, SolverSpec};
pub use workload::{WorkloadFamily, WorkloadInstance, WorkloadMeta, WorkloadSpec};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, ScenarioError>;

//! The in-repo campaign definitions `repro scenarios` ships.
//!
//! Three studies that previously would each have been another bespoke
//! ~80-line repro function, now expressed as data against the campaign
//! engine:
//!
//! 1. [`depth_sweep`] — how deep can the cascade go, and how many
//!    ADC/DAC bus hops does it tolerate? (the ROADMAP's "bus/converter
//!    studies at depth > 2")
//! 2. [`split_rule_study`] — does conditioning-driven split search beat
//!    midpoint splits on ill-conditioned workloads? (the ROADMAP's
//!    "adaptive splits in production paths")
//! 3. [`worker_scaling`] — the trial-sharding campaign used with
//!    [`run_worker_sweep`](crate::campaign::run_worker_sweep) to
//!    demonstrate wall-clock scaling with bit-identical output.
//! 4. [`engine_ladder`] — the backend axis: the same workloads and
//!    architecture solved by every shipped engine backend plus the
//!    registered `amc-engine-simd` backend, selected purely as
//!    [`EngineSpec`]/registry-name data (the ROADMAP's "multi-backend
//!    engines").
//! 5. [`simd_scaling`] — the large-`n` scaling campaign: simd vs exact
//!    numeric on dense and structured-sparse workloads at
//!    `n = 2^8..2^12` (quick mode runs scaled-down sizes).

use blockamc::converter::IoConfig;
use blockamc::engine::{CircuitEngineConfig, EngineRegistry, EngineSpec};
use blockamc::solver::{SignalPlan, SolverConfig, SplitRule, SplitSearchOptions, Stages};

use crate::campaign::{Campaign, Nonideality};
use crate::workload::{WorkloadFamily, WorkloadSpec};
use crate::Result;

/// The shipped registry plus every out-of-core backend this crate
/// links: currently `amc-engine-simd` under its registered name
/// (`"simd"`). Campaigns carrying [`Nonideality::registered`] rungs
/// resolve against this.
pub fn extended_registry() -> EngineRegistry {
    let mut registry = EngineRegistry::builtin();
    amc_engine_simd::register(&mut registry);
    registry
}

/// Campaign 1: depth `d = 1..4` with the paper's per-level signal plan
/// (bus hops above one macro level) against an all-bus plan, on a
/// well-conditioned (Wishart) and a structured (2-D Poisson) workload,
/// under an ideal-mapping and a 5 %-variation analog stack.
///
/// # Errors
///
/// Propagates configuration-building failures (none for the shipped
/// parameters).
pub fn depth_sweep(quick: bool) -> Result<Campaign> {
    let n = if quick { 32 } else { 64 };
    let trials = if quick { 3 } else { 10 };
    let io = IoConfig::default_8bit();
    let mut builder = Campaign::builder("depth-sweep")
        .workload(WorkloadSpec::new(
            "wishart",
            WorkloadFamily::Wishart,
            n,
            0xD1,
        ))
        .workload(WorkloadSpec::new(
            "poisson2d",
            WorkloadFamily::Poisson2d,
            n,
            0xD2,
        ))
        .trials(trials)
        .seed(0xDE_E9);
    for depth in 1..=4usize {
        builder = builder
            .solver(
                format!("d{depth}-paper-io"),
                SolverConfig::builder()
                    .stages(Stages::Multi(depth))
                    .signal_plan(SignalPlan::paper(depth, io))
                    .capture_trace(false)
                    .finish()?,
            )
            .solver(
                format!("d{depth}-all-bus"),
                SolverConfig::builder()
                    .stages(Stages::Multi(depth))
                    .signal_plan(SignalPlan::uniform_bus(depth, io))
                    .capture_trace(false)
                    .finish()?,
            );
    }
    builder
        .nonideality(Nonideality::circuit(
            "ideal-mapping",
            CircuitEngineConfig::ideal_mapping(),
        ))
        .nonideality(Nonideality::circuit(
            "variation",
            CircuitEngineConfig::paper_variation(),
        ))
        .finish()
}

/// Campaign 2: `SplitRule::Searched` vs `SplitRule::Halves` at depths 1
/// and 2 on the ill-conditioned families (guarded raw Toeplitz,
/// condition-targeted SPD, weakly grounded path Laplacian) under 5 %
/// variation — where split placement actually moves the error floor.
///
/// # Errors
///
/// Propagates configuration-building failures (none for the shipped
/// parameters).
pub fn split_rule_study(quick: bool) -> Result<Campaign> {
    let n = if quick { 16 } else { 48 };
    let trials = if quick { 3 } else { 10 };
    let mut builder = Campaign::builder("split-rule")
        .workload(WorkloadSpec::new(
            "toeplitz-raw",
            WorkloadFamily::ToeplitzRaw {
                max_cond: amc_linalg::generate::DEFAULT_TOEPLITZ_MAX_COND,
            },
            n,
            0x51,
        ))
        .workload(WorkloadSpec::new(
            "spd-cond-1e6",
            WorkloadFamily::SpdWithCondition { cond: 1e6 },
            n,
            0x52,
        ))
        .workload(WorkloadSpec::new(
            "path-weak-ground",
            WorkloadFamily::PathLaplacian { ground: 0.002 },
            n,
            0x53,
        ))
        .trials(trials)
        .seed(0x5917);
    for (stages, tag) in [(Stages::One, "one"), (Stages::Two, "two")] {
        builder = builder
            .solver(
                format!("{tag}-halves"),
                SolverConfig::builder()
                    .stages(stages)
                    .split_rule(SplitRule::Halves)
                    .capture_trace(false)
                    .finish()?,
            )
            .solver(
                format!("{tag}-searched"),
                SolverConfig::builder()
                    .stages(stages)
                    .split_rule(SplitRule::Searched(SplitSearchOptions::default()))
                    .capture_trace(false)
                    .finish()?,
            );
    }
    builder
        .nonideality(Nonideality::circuit(
            "variation",
            CircuitEngineConfig::paper_variation(),
        ))
        .finish()
}

/// Campaign 3: the sharding workload for the worker sweep — many trials
/// and multiple right-hand sides per part across a well-conditioned and
/// a circuit-shaped (PDN) workload on both paper architectures. Run it
/// through [`run_worker_sweep`](crate::campaign::run_worker_sweep) to
/// measure wall clock per worker count and verify bit-identity.
///
/// # Errors
///
/// Propagates configuration-building failures (none for the shipped
/// parameters).
pub fn worker_scaling(quick: bool) -> Result<Campaign> {
    let n = if quick { 24 } else { 48 };
    let trials = if quick { 6 } else { 16 };
    Campaign::builder("worker-scaling")
        .workload(WorkloadSpec::new(
            "wishart",
            WorkloadFamily::Wishart,
            n,
            0xA1,
        ))
        .workload(WorkloadSpec::new("pdn", WorkloadFamily::Pdn, n, 0xA2))
        .solver(
            "one",
            SolverConfig::builder()
                .stages(Stages::One)
                .capture_trace(false)
                .finish()?,
        )
        .solver(
            "two",
            SolverConfig::builder()
                .stages(Stages::Two)
                .capture_trace(false)
                .finish()?,
        )
        .nonideality(Nonideality::circuit(
            "variation",
            CircuitEngineConfig::paper_variation(),
        ))
        .trials(trials)
        .rhs_per_trial(4)
        .seed(0xAC_11)
        .finish()
}

/// Campaign 4: the engine ladder — every shipped backend (exact
/// numeric, cache-blocked numeric, 6- and 10-bit fixed point, full
/// analog with 5 % variation) plus the micro-tiled `amc-engine-simd`
/// backend, on a well-conditioned, a structured, and an
/// ill-conditioned registry family, one- and two-stage. The rungs are
/// pure data — [`EngineSpec`]s or registry names: adding a backend to
/// the comparison is one more ladder entry, never a code path. The
/// simd rung in particular is run purely by its registered name; core
/// never learns the type.
///
/// # Errors
///
/// Propagates configuration-building failures (none for the shipped
/// parameters).
pub fn engine_ladder(quick: bool) -> Result<Campaign> {
    let n = if quick { 24 } else { 48 };
    let trials = if quick { 3 } else { 8 };
    let mut builder = Campaign::builder("engine-ladder")
        .workload(WorkloadSpec::new(
            "wishart",
            WorkloadFamily::Wishart,
            n,
            0xE1,
        ))
        .workload(WorkloadSpec::new(
            "poisson2d",
            WorkloadFamily::Poisson2d,
            n,
            0xE2,
        ))
        .workload(WorkloadSpec::new(
            "spd-cond-1e4",
            WorkloadFamily::SpdWithCondition { cond: 1e4 },
            n,
            0xE3,
        ))
        .trials(trials)
        .rhs_per_trial(2)
        .seed(0xE9_61);
    for (stages, tag) in [(Stages::One, "one"), (Stages::Two, "two")] {
        builder = builder.solver(
            tag,
            SolverConfig::builder()
                .stages(stages)
                .capture_trace(false)
                .finish()?,
        );
    }
    builder
        .nonideality(Nonideality::spec("numeric", EngineSpec::Numeric))
        .nonideality(Nonideality::spec(
            "blocked",
            EngineSpec::Blocked {
                block: blockamc::engine::DEFAULT_BLOCK,
            },
        ))
        .nonideality(Nonideality::registered(
            "simd",
            amc_engine_simd::ENGINE_NAME,
        ))
        .nonideality(Nonideality::spec(
            "fixed-point-6b",
            EngineSpec::FixedPoint { bits: 6 },
        ))
        .nonideality(Nonideality::spec(
            "fixed-point-10b",
            EngineSpec::FixedPoint { bits: 10 },
        ))
        .nonideality(Nonideality::circuit(
            "circuit-variation",
            CircuitEngineConfig::paper_variation(),
        ))
        .registry(extended_registry())
        .finish()
}

/// Campaign 5: large-`n` scaling — simd vs exact numeric at
/// `n = 2^8..2^12` on a dense SPD family (Wishart) and the sparse
/// structured families the sparse-aware Schur path targets (2-D
/// Poisson, PDN), solved at depth 3. Quick mode runs the same ladder
/// at `n = 64/128` so smoke runs stay cheap; full mode is the
/// `BENCH_simd.json` scaling row source.
///
/// # Errors
///
/// Propagates configuration-building failures (none for the shipped
/// parameters).
pub fn simd_scaling(quick: bool) -> Result<Campaign> {
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[256, 512, 1024, 2048]
    };
    let trials = if quick { 1 } else { 2 };
    let mut builder = Campaign::builder("simd-scaling")
        .trials(trials)
        .rhs_per_trial(2)
        .seed(0x51D_5CA1);
    for (i, &n) in sizes.iter().enumerate() {
        builder = builder
            .workload(WorkloadSpec::new(
                format!("wishart-{n}"),
                WorkloadFamily::Wishart,
                n,
                0xF0 + i as u64,
            ))
            .workload(WorkloadSpec::new(
                format!("poisson2d-{n}"),
                WorkloadFamily::Poisson2d,
                n,
                0xF8 + i as u64,
            ));
    }
    builder
        .solver(
            "d3",
            SolverConfig::builder()
                .stages(Stages::Multi(3))
                .capture_trace(false)
                .finish()?,
        )
        .nonideality(Nonideality::spec("numeric", EngineSpec::Numeric))
        .nonideality(Nonideality::registered(
            "simd",
            amc_engine_simd::ENGINE_NAME,
        ))
        .registry(extended_registry())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_campaigns_build_in_both_modes() {
        for quick in [true, false] {
            let d = depth_sweep(quick).unwrap();
            assert_eq!(d.solvers().len(), 8, "4 depths x 2 io placements");
            assert_eq!(d.cell_count(), 2 * 8 * 2);
            let s = split_rule_study(quick).unwrap();
            assert_eq!(s.solvers().len(), 4);
            assert_eq!(s.cell_count(), 3 * 4);
            let w = worker_scaling(quick).unwrap();
            assert_eq!(w.cell_count(), 4);
            let e = engine_ladder(quick).unwrap();
            assert_eq!(e.ladder().len(), 6, "five backends + 2nd fp depth");
            assert_eq!(e.cell_count(), 3 * 2 * 6);
            assert!(e.registry().contains("simd"));
            let sc = simd_scaling(quick).unwrap();
            assert_eq!(sc.ladder().len(), 2, "numeric vs simd");
            assert_eq!(sc.cell_count(), sc.workloads().len() * 2);
        }
        // Full-mode scaling covers the 2^8..2^12 ladder.
        let sizes: Vec<usize> = simd_scaling(false)
            .unwrap()
            .workloads()
            .iter()
            .map(|w| w.n)
            .collect();
        for n in [256, 512, 1024, 2048] {
            assert!(sizes.contains(&n), "missing n={n}");
        }
    }

    #[test]
    fn quick_engine_ladder_orders_backends() {
        let report = engine_ladder(true).unwrap().run().unwrap();
        let cell = |engine: &str, nonideality: &str| {
            report
                .cells
                .iter()
                .find(|c| {
                    c.workload == "wishart" && c.solver == "one" && c.nonideality == nonideality
                })
                .filter(|c| c.engine == engine)
                .unwrap_or_else(|| panic!("missing cell {engine}/{nonideality}"))
        };
        let numeric = cell("numeric", "numeric");
        let blocked = cell("blocked", "blocked");
        let simd = cell("simd", "simd");
        let fp6 = cell("fixed-point", "fixed-point-6b");
        let fp10 = cell("fixed-point", "fixed-point-10b");
        let circuit = cell("circuit", "circuit-variation");
        // The blocked backend is a bit-identical substitution; the simd
        // backend is bounded, not bitwise.
        assert_eq!(numeric.errors, blocked.errors);
        assert!(numeric.errors.max < 1e-9);
        assert!(simd.errors.max < 1e-9);
        assert_eq!(simd.completed, simd.trials);
        // Quantization coarsens monotonically between the digital rungs.
        assert!(fp10.errors.mean < fp6.errors.mean);
        assert!(fp6.errors.mean > numeric.errors.max);
        // Only the analog rung accrues analog cost and a settle-model
        // latency.
        assert!(circuit.analog_time_per_solve_s > 0.0);
        assert!(circuit.model_latency_s.is_some());
        for digital in [numeric, blocked, simd, fp6, fp10] {
            assert_eq!(digital.analog_time_per_solve_s, 0.0);
            assert!(digital.model_latency_s.is_none());
        }
    }

    #[test]
    fn quick_simd_scaling_runs_and_simd_stays_exact() {
        let report = simd_scaling(true).unwrap().run().unwrap();
        assert!(!report.cells.is_empty());
        for cell in &report.cells {
            assert_eq!(cell.completed, cell.trials, "{}", cell.workload);
            assert!(
                cell.errors.max < 1e-7,
                "{}/{}: {}",
                cell.workload,
                cell.engine,
                cell.errors.max
            );
        }
    }

    #[test]
    fn quick_depth_sweep_runs_and_orders_costs() {
        let report = depth_sweep(true).unwrap().run().unwrap();
        assert_eq!(report.cells.len(), 32);
        // Hardware cost (arrays programmed) grows with depth for the
        // same workload and rung.
        let programs = |solver: &str| {
            report
                .cells
                .iter()
                .find(|c| {
                    c.workload == "wishart" && c.solver == solver && c.nonideality == "variation"
                })
                .map(|c| c.program_ops)
                .unwrap()
        };
        assert!(programs("d1-paper-io") < programs("d2-paper-io"));
        assert!(programs("d2-paper-io") < programs("d3-paper-io"));
    }
}

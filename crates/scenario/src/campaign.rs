//! The campaign engine: `workloads × solver grid × nonideality ladder ×
//! trials`, executed by one engine, reported as data.
//!
//! A [`Campaign`] is the declarative cross product the repro binary used
//! to hand-code per study: a list of [`WorkloadSpec`]s, a grid of named
//! facade [`SolverConfig`]s, a ladder of named analog nonideality
//! levels, and a trial count. [`Campaign::run`] executes every cell —
//! each trial programs a fresh "manufactured part" through
//! [`BlockAmcSolver::prepare`] and streams the cell's right-hand sides
//! through the returned [`PreparedSolver`](blockamc::solver::PreparedSolver)
//! (arrays programmed once per trial, the paper's §III.B amortization) —
//! and aggregates per-cell records: error statistics, engine-measured
//! analog cost, and `amc-arch` cascade-model scoring.
//!
//! ## Determinism contract
//!
//! Trials shard across `amc-par` workers. A trial's engine seed depends
//! only on the campaign seed and the cell/trial indices — never on the
//! worker that runs it — and outcomes are merged back in job order
//! before any statistic is computed, so a [`CampaignReport`] is
//! **bit-identical at every worker count** (pinned by
//! `tests/campaign_equivalence.rs`).

use std::sync::Arc;

use amc_circuit::timing;
use amc_linalg::{lu, metrics, Matrix};
use blockamc::engine::{AmcEngine, CircuitEngineConfig, EngineRegistry, EngineSpec, EngineStats};
use blockamc::solver::{BlockAmcSolver, SolverConfig};

use crate::workload::{WorkloadInstance, WorkloadMeta, WorkloadSpec};
use crate::{Result, ScenarioError};

/// One named solver configuration of the campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverCell {
    /// Display label (unique within a campaign).
    pub label: String,
    /// The facade configuration.
    pub config: SolverConfig,
}

/// How a nonideality rung selects its engine backend: an inline
/// [`EngineSpec`], or a name resolved against the campaign's
/// [`EngineRegistry`] at trial time.
///
/// The registered form is the open half of the backend API: a crate
/// core never heard of registers a constructor under a name
/// ([`EngineRegistry::register`]) and a campaign rung runs it purely by
/// that name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineSel {
    /// An inline spec, built directly ([`EngineSpec::build`]).
    Spec(EngineSpec),
    /// A name looked up in the campaign's registry
    /// ([`EngineRegistry::build`]).
    Registered(&'static str),
}

impl EngineSel {
    /// The backend name this selection runs (registry key / spec name).
    pub fn name(&self) -> &'static str {
        match self {
            EngineSel::Spec(spec) => spec.name(),
            EngineSel::Registered(name) => name,
        }
    }

    /// The analog stack configuration, for inline circuit specs.
    /// Registered backends expose no circuit model (the analog
    /// cost/latency models simply don't apply to them).
    pub fn circuit(&self) -> Option<&CircuitEngineConfig> {
        match self {
            EngineSel::Spec(spec) => spec.circuit(),
            EngineSel::Registered(_) => None,
        }
    }

    /// Builds the backend against `registry` with the given seed.
    ///
    /// # Errors
    ///
    /// Spec build failures; unknown registered names.
    pub fn build(
        &self,
        registry: &EngineRegistry,
        seed: u64,
    ) -> blockamc::Result<Box<dyn AmcEngine>> {
        match self {
            EngineSel::Spec(spec) => spec.build(seed),
            EngineSel::Registered(name) => registry.build(name, seed),
        }
    }
}

/// One named rung of the nonideality ladder: any engine backend,
/// selected purely as data.
///
/// The rung carries an [`EngineSel`], not a concrete engine type — a
/// cell can run the exact digital reference, the cache-blocked or
/// fixed-point digital backends, the full analog stack, or any backend
/// a downstream crate registered by name, and the campaign engine
/// builds each trial's `Box<dyn AmcEngine>` from the selection plus
/// the trial seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nonideality {
    /// Display label (`ideal`, `variation`, `fixed-point-8b`, …).
    pub label: &'static str,
    /// The backend this rung solves with.
    pub engine: EngineSel,
}

impl Nonideality {
    /// A rung building the given inline spec.
    pub fn spec(label: &'static str, spec: EngineSpec) -> Nonideality {
        Nonideality {
            label,
            engine: EngineSel::Spec(spec),
        }
    }

    /// A rung resolving `name` in the campaign's engine registry.
    pub fn registered(label: &'static str, name: &'static str) -> Nonideality {
        Nonideality {
            label,
            engine: EngineSel::Registered(name),
        }
    }

    /// A rung running the analog stack with the given configuration.
    pub fn circuit(label: &'static str, config: CircuitEngineConfig) -> Nonideality {
        Nonideality::spec(label, EngineSpec::Circuit(config))
    }

    /// The standard three-rung ladder of the paper's figures: ideal
    /// mapping (Fig. 6), 5 % variation (Fig. 7), variation + wire
    /// resistance (Fig. 9).
    pub fn paper_ladder() -> Vec<Nonideality> {
        vec![
            Nonideality::circuit("ideal-mapping", CircuitEngineConfig::ideal_mapping()),
            Nonideality::circuit("variation", CircuitEngineConfig::paper_variation()),
            Nonideality::circuit("variation+wire", CircuitEngineConfig::paper_full()),
        ]
    }
}

/// A declarative study: the full cross product plus execution knobs.
#[derive(Debug, Clone)]
pub struct Campaign {
    name: String,
    workloads: Vec<WorkloadSpec>,
    solvers: Vec<SolverCell>,
    ladder: Vec<Nonideality>,
    trials: usize,
    rhs_per_trial: usize,
    workers: usize,
    seed: u64,
    /// Backend registry [`EngineSel::Registered`] rungs resolve
    /// against; shared, since constructors are opaque closures.
    registry: Arc<EngineRegistry>,
}

impl PartialEq for Campaign {
    fn eq(&self, other: &Self) -> bool {
        // Registries hold opaque constructors; equality compares their
        // name sets (plus everything else structurally).
        self.name == other.name
            && self.workloads == other.workloads
            && self.solvers == other.solvers
            && self.ladder == other.ladder
            && self.trials == other.trials
            && self.rhs_per_trial == other.rhs_per_trial
            && self.workers == other.workers
            && self.seed == other.seed
            && self.registry.names().eq(other.registry.names())
    }
}

/// Builder for [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    campaign: Campaign,
}

impl Campaign {
    /// Starts building a campaign (defaults: 5 trials, 1 RHS per trial,
    /// 1 worker, seed 0).
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder {
            campaign: Campaign {
                name: name.into(),
                workloads: Vec::new(),
                solvers: Vec::new(),
                ladder: Vec::new(),
                trials: 5,
                rhs_per_trial: 1,
                workers: 1,
                seed: 0,
                registry: Arc::new(EngineRegistry::builtin()),
            },
        }
    }

    /// The backend registry registered-name rungs resolve against.
    pub fn registry(&self) -> &EngineRegistry {
        &self.registry
    }

    /// Campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload axis.
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// The solver-grid axis.
    pub fn solvers(&self) -> &[SolverCell] {
        &self.solvers
    }

    /// The nonideality axis.
    pub fn ladder(&self) -> &[Nonideality] {
        &self.ladder
    }

    /// Variation draws per cell.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Right-hand sides drawn per trial.
    pub fn rhs_per_trial(&self) -> usize {
        self.rhs_per_trial
    }

    /// Worker count trials are sharded over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The campaign's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of cells (`workloads × solvers × ladder`).
    pub fn cell_count(&self) -> usize {
        self.workloads.len() * self.solvers.len() * self.ladder.len()
    }

    /// Runs the campaign with its configured worker count.
    ///
    /// # Errors
    ///
    /// See [`Campaign::run_with_workers`].
    pub fn run(&self) -> Result<CampaignReport> {
        self.run_with_workers(self.workers)
    }

    /// Runs the campaign with the trials of all cells sharded across
    /// `workers` work-stealing threads. The report is bit-identical at
    /// every worker count (see the module docs).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] for `workers == 0` or a solver
    /// configuration invalid for a workload's size (checked up front so
    /// a misconfigured cell fails loudly instead of silently producing
    /// zero completed trials); workload instantiation and
    /// reference-solve failures. Per-trial analog failures are
    /// *counted*, not propagated. (Empty axes and zero trials cannot
    /// reach here — [`CampaignBuilder::finish`] rejects them.)
    pub fn run_with_workers(&self, workers: usize) -> Result<CampaignReport> {
        if workers == 0 {
            return Err(ScenarioError::spec("campaign needs at least 1 worker"));
        }

        // An unbuildable rung (zero panel width, out-of-range bits, a
        // name missing from the registry) is a configuration error, not
        // trials-worth of silent `completed: 0` cells: fail loudly
        // before any work starts.
        for rung in &self.ladder {
            rung.engine.build(&self.registry, self.seed).map_err(|e| {
                ScenarioError::spec(format!(
                    "nonideality rung '{}' cannot build its engine: {e}",
                    rung.label
                ))
            })?;
        }

        // Hoisted per-workload state: instance, reference solutions.
        let mut prepped: Vec<(WorkloadInstance, Vec<Vec<f64>>)> =
            Vec::with_capacity(self.workloads.len());
        for spec in &self.workloads {
            let inst = spec.instantiate(self.rhs_per_trial)?;
            for cell in &self.solvers {
                cell.config.validate_for_size(spec.n).map_err(|e| {
                    ScenarioError::spec(format!(
                        "solver '{}' cannot run workload '{}' (n = {}): {e}",
                        cell.label, spec.name, spec.n
                    ))
                })?;
            }
            // One factorization per workload, shared by every RHS.
            let lu = lu::LuFactor::new(&inst.matrix)?;
            let x_refs: std::result::Result<Vec<Vec<f64>>, _> =
                inst.rhs.iter().map(|b| lu.solve(b)).collect();
            prepped.push((inst, x_refs?));
        }

        // One job per (workload, solver, ladder, trial), w-major order.
        let (s_len, l_len, t_len) = (self.solvers.len(), self.ladder.len(), self.trials);
        let jobs: Vec<(usize, usize, usize, usize)> = (0..self.workloads.len())
            .flat_map(|w| {
                (0..s_len).flat_map(move |s| {
                    (0..l_len).flat_map(move |l| (0..t_len).map(move |t| (w, s, l, t)))
                })
            })
            .collect();
        let outcomes: Vec<Option<TrialOutcome>> =
            amc_par::map_indexed(workers, jobs, |_, (w, s, l, t)| {
                self.run_trial(&prepped[w], &self.solvers[s], &self.ladder[l], (w, s, l), t)
            });

        // Aggregate per cell, in job order.
        let mut cells = Vec::with_capacity(self.cell_count());
        for (w, (inst, _)) in prepped.iter().enumerate() {
            for (s, solver) in self.solvers.iter().enumerate() {
                for (l, rung) in self.ladder.iter().enumerate() {
                    let base = ((w * s_len + s) * l_len + l) * t_len;
                    let trials = &outcomes[base..base + t_len];
                    cells.push(self.aggregate_cell(inst, solver, rung, trials));
                }
            }
        }
        Ok(CampaignReport {
            name: self.name.clone(),
            trials: self.trials,
            rhs_per_trial: self.rhs_per_trial,
            cells,
        })
    }

    /// Runs one trial: build the rung's engine from spec + seed,
    /// program a fresh part, stream the cell's RHS set through the
    /// prepared solver. `None` marks a per-trial failure (singular
    /// operating point, non-finite error); unbuildable specs were
    /// rejected before any trial ran.
    fn run_trial(
        &self,
        (inst, x_refs): &(WorkloadInstance, Vec<Vec<f64>>),
        solver: &SolverCell,
        rung: &Nonideality,
        cell: (usize, usize, usize),
        trial: usize,
    ) -> Option<TrialOutcome> {
        let seed = trial_seed(self.seed, cell, trial);
        let engine = rung.engine.build(&self.registry, seed).ok()?;
        let mut facade = BlockAmcSolver::from_config(engine, solver.config.clone());
        let mut prepared = facade.prepare(&inst.matrix).ok()?;
        let mut errors = Vec::with_capacity(inst.rhs.len());
        for (b, x_ref) in inst.rhs.iter().zip(x_refs) {
            let report = prepared.solve(b).ok()?;
            let err = metrics::relative_error(x_ref, &report.x);
            if !err.is_finite() {
                return None;
            }
            errors.push(err);
        }
        let stats = prepared.engine().stats();
        Some(TrialOutcome { errors, stats })
    }

    /// Folds a cell's trial outcomes into its record.
    fn aggregate_cell(
        &self,
        inst: &WorkloadInstance,
        solver: &SolverCell,
        rung: &Nonideality,
        trials: &[Option<TrialOutcome>],
    ) -> CellRecord {
        let completed: Vec<&TrialOutcome> = trials.iter().flatten().collect();
        let errors: Vec<f64> = completed
            .iter()
            .flat_map(|o| o.errors.iter().copied())
            .collect();
        let solves = (completed.len() * self.rhs_per_trial).max(1) as f64;
        let analog_time_s: f64 = completed.iter().map(|o| o.stats.analog_time_s).sum();
        let analog_energy_j: f64 = completed.iter().map(|o| o.stats.analog_energy_j).sum();
        // Op counts are tree-structural, identical across completed
        // trials; take the first.
        let ops = completed.first().map(|o| o.stats).unwrap_or_default();
        CellRecord {
            workload: inst.spec.name.clone(),
            family: inst.spec.family.key(),
            n: inst.spec.n,
            solver: solver.label.clone(),
            nonideality: rung.label,
            engine: rung.engine.name(),
            trials: trials.len(),
            completed: completed.len(),
            errors: metrics::ErrorStats::from_samples(&errors),
            program_ops: ops.program_ops,
            inv_ops: ops.inv_ops,
            mvm_ops: ops.mvm_ops,
            analog_time_per_solve_s: analog_time_s / solves,
            analog_energy_per_solve_j: analog_energy_j / solves,
            model_latency_s: model_latency(&inst.matrix, &solver.config, rung),
            meta: inst.meta,
        }
    }
}

/// Per-cell arch-model latency: the depth-generalized sequential op
/// count ([`amc_arch::latency::cascade_op_counts`]) priced with settle
/// times of the cell's leaf-sized arrays under the rung's op-amp.
/// `None` for digital rungs (no analog settle model applies) or when
/// the settle model has no answer (e.g. a leaf block whose minimum
/// eigenvalue estimate fails).
fn model_latency(a: &Matrix, config: &SolverConfig, rung: &Nonideality) -> Option<f64> {
    let circuit = rung.engine.circuit()?;
    let depth = config.stages().depth();
    let leaf = (a.rows() >> depth).max(1);
    let block = a.block(0, 0, leaf, leaf).ok()?;
    let max_abs = block.max_abs();
    if max_abs <= 0.0 {
        return None;
    }
    let g_hat = block.scaled(1.0 / max_abs);
    let opamp = &circuit.sim.opamp;
    let eps = circuit.sim.settle_epsilon;
    let inv_s = timing::inv_settle_time(&g_hat, opamp, eps).ok()?;
    let mvm_s = timing::mvm_settle_time(g_hat.norm_inf(), opamp, eps).ok()?;
    amc_arch::latency::cascade_latency(depth, inv_s, mvm_s, 0.0).ok()
}

/// Deterministic per-trial engine seed: a function of the campaign
/// seed, the cell indices, and the trial index only — never of the
/// worker executing the trial.
fn trial_seed(base: u64, (w, s, l): (usize, usize, usize), trial: usize) -> u64 {
    let mut h = base ^ 0x517C_C1B7_2722_0A95;
    for v in [w as u64 + 1, s as u64 + 1, l as u64 + 1] {
        h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
    h.wrapping_add(trial as u64)
}

/// One trial's measurements.
#[derive(Debug, Clone, PartialEq)]
struct TrialOutcome {
    /// Relative error per right-hand side.
    errors: Vec<f64>,
    /// Engine counters after the trial (programming + all solves).
    stats: EngineStats,
}

/// One cell of a campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Workload display name.
    pub workload: String,
    /// Workload family key.
    pub family: &'static str,
    /// Problem size.
    pub n: usize,
    /// Solver-grid label.
    pub solver: String,
    /// Nonideality-rung label.
    pub nonideality: &'static str,
    /// Backend name of the rung's [`EngineSel`].
    pub engine: &'static str,
    /// Variation draws attempted.
    pub trials: usize,
    /// Draws whose every solve completed with finite error.
    pub completed: usize,
    /// Error statistics over all completed solves of the cell.
    pub errors: metrics::ErrorStats,
    /// Arrays programmed per trial (tree-structural).
    pub program_ops: usize,
    /// INV operations per trial.
    pub inv_ops: usize,
    /// MVM operations per trial.
    pub mvm_ops: usize,
    /// Mean engine-measured analog settle time per solve, seconds.
    pub analog_time_per_solve_s: f64,
    /// Mean engine-measured analog energy per solve, joules.
    pub analog_energy_per_solve_j: f64,
    /// `amc-arch` cascade-model latency of one solve at this depth,
    /// seconds (`None` when the settle model is inapplicable).
    pub model_latency_s: Option<f64>,
    /// Measured workload metadata.
    pub meta: WorkloadMeta,
}

/// The machine-readable result of a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Trials per cell.
    pub trials: usize,
    /// Right-hand sides per trial.
    pub rhs_per_trial: usize,
    /// One record per cell, in `workloads × solvers × ladder` order.
    pub cells: Vec<CellRecord>,
}

impl CampaignReport {
    /// The report's trial/op totals as a metrics snapshot — the same
    /// queryable surface the server exposes, built purely from the
    /// (deterministic) report so it is bit-identical at any worker
    /// count.
    pub fn metrics(&self) -> amc_obs::MetricsSnapshot {
        let registry = amc_obs::Registry::new();
        registry
            .counter("campaign.cells")
            .set(self.cells.len() as u64);
        let attempted = registry.counter("campaign.trials_attempted");
        let completed = registry.counter("campaign.trials_completed");
        let inv_ops = registry.counter("campaign.inv_ops_per_trial");
        let mvm_ops = registry.counter("campaign.mvm_ops_per_trial");
        let program_ops = registry.counter("campaign.program_ops_per_trial");
        for cell in &self.cells {
            attempted.add(cell.trials as u64);
            completed.add(cell.completed as u64);
            inv_ops.add(cell.inv_ops as u64);
            mvm_ops.add(cell.mvm_ops as u64);
            program_ops.add(cell.program_ops as u64);
        }
        registry.snapshot()
    }
}

/// Result of [`run_worker_sweep`]: the (identical) report plus wall
/// timings per worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSweep {
    /// The campaign report (identical at every worker count).
    pub report: CampaignReport,
    /// `(workers, wall_seconds)` per sweep point.
    pub timings: Vec<(usize, f64)>,
    /// Whether every worker count reproduced the serial report bitwise.
    pub bit_identical: bool,
}

/// Runs `campaign` once per entry of `worker_counts`, recording wall
/// time and checking the reports agree bitwise — the determinism
/// contract made measurable.
///
/// # Errors
///
/// [`ScenarioError::InvalidSpec`] for an empty `worker_counts`;
/// campaign failures per run.
pub fn run_worker_sweep(campaign: &Campaign, worker_counts: &[usize]) -> Result<WorkerSweep> {
    let Some((&first, rest)) = worker_counts.split_first() else {
        return Err(ScenarioError::spec("worker sweep needs at least one count"));
    };
    let start = std::time::Instant::now();
    let report = campaign.run_with_workers(first)?;
    let mut timings = vec![(first, start.elapsed().as_secs_f64())];
    let mut bit_identical = true;
    for &workers in rest {
        let start = std::time::Instant::now();
        let r = campaign.run_with_workers(workers)?;
        timings.push((workers, start.elapsed().as_secs_f64()));
        bit_identical &= r == report;
    }
    Ok(WorkerSweep {
        report,
        timings,
        bit_identical,
    })
}

impl CampaignBuilder {
    /// Adds one workload spec.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.campaign.workloads.push(spec);
        self
    }

    /// Adds many workload specs.
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.campaign.workloads.extend(specs);
        self
    }

    /// Adds one named solver configuration.
    pub fn solver(mut self, label: impl Into<String>, config: SolverConfig) -> Self {
        self.campaign.solvers.push(SolverCell {
            label: label.into(),
            config,
        });
        self
    }

    /// Adds one nonideality rung.
    pub fn nonideality(mut self, rung: Nonideality) -> Self {
        self.campaign.ladder.push(rung);
        self
    }

    /// Adds many nonideality rungs.
    pub fn ladder(mut self, rungs: impl IntoIterator<Item = Nonideality>) -> Self {
        self.campaign.ladder.extend(rungs);
        self
    }

    /// Sets the variation draws per cell.
    pub fn trials(mut self, trials: usize) -> Self {
        self.campaign.trials = trials;
        self
    }

    /// Sets the right-hand sides streamed through each prepared part.
    pub fn rhs_per_trial(mut self, rhs: usize) -> Self {
        self.campaign.rhs_per_trial = rhs;
        self
    }

    /// Sets the default worker count of [`Campaign::run`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.campaign.workers = workers;
        self
    }

    /// Sets the campaign seed all trial streams derive from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.campaign.seed = seed;
        self
    }

    /// Replaces the backend registry [`EngineSel::Registered`] rungs
    /// resolve against (defaults to [`EngineRegistry::builtin`]).
    pub fn registry(mut self, registry: EngineRegistry) -> Self {
        self.campaign.registry = Arc::new(registry);
        self
    }

    /// Finishes the campaign.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] for empty axes or zero
    /// trials/RHS/workers.
    pub fn finish(self) -> Result<Campaign> {
        let c = &self.campaign;
        if c.workloads.is_empty() || c.solvers.is_empty() || c.ladder.is_empty() {
            return Err(ScenarioError::spec(format!(
                "campaign '{}' needs at least one workload, solver, and nonideality",
                c.name
            )));
        }
        if c.trials == 0 || c.rhs_per_trial == 0 || c.workers == 0 {
            return Err(ScenarioError::spec(
                "trials, rhs_per_trial, and workers must all be at least 1",
            ));
        }
        Ok(self.campaign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadFamily;
    use blockamc::solver::Stages;

    fn tiny_campaign() -> Campaign {
        Campaign::builder("test")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .solver(
                "one",
                SolverConfig::builder()
                    .stages(Stages::One)
                    .capture_trace(false)
                    .finish()
                    .unwrap(),
            )
            .nonideality(Nonideality::circuit(
                "variation",
                CircuitEngineConfig::paper_variation(),
            ))
            .trials(3)
            .rhs_per_trial(2)
            .seed(7)
            .finish()
            .unwrap()
    }

    #[test]
    fn campaign_produces_one_record_per_cell() {
        let report = tiny_campaign().run().unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.trials, 3);
        assert_eq!(cell.completed, 3);
        assert_eq!(cell.errors.count, 6, "3 trials x 2 RHS");
        assert!(cell.errors.mean > 0.0);
        // One-stage tree: 4 arrays programmed once per trial, 3 INV +
        // 2 MVM per solve x 2 RHS.
        assert_eq!(cell.program_ops, 4);
        assert_eq!(cell.inv_ops, 6);
        assert_eq!(cell.mvm_ops, 4);
        assert!(cell.analog_time_per_solve_s > 0.0);
        assert!(cell.model_latency_s.is_some());
        assert!(cell.meta.spd);
    }

    #[test]
    fn reports_are_reproducible() {
        let c = tiny_campaign();
        assert_eq!(c.run().unwrap(), c.run().unwrap());
    }

    #[test]
    fn worker_count_is_invisible_in_the_report() {
        let c = tiny_campaign();
        let sweep = run_worker_sweep(&c, &[1, 2, 4]).unwrap();
        assert!(sweep.bit_identical);
        assert_eq!(sweep.timings.len(), 3);
    }

    #[test]
    fn invalid_campaigns_fail_fast() {
        assert!(Campaign::builder("empty").finish().is_err());
        let no_trials = Campaign::builder("t")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .solver(
                "one",
                SolverConfig::builder()
                    .stages(Stages::One)
                    .finish()
                    .unwrap(),
            )
            .nonideality(Nonideality::circuit("ideal", CircuitEngineConfig::ideal()))
            .trials(0)
            .finish();
        assert!(no_trials.is_err());
        // A solver too deep for a workload is rejected before any trial.
        let deep = Campaign::builder("t")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .solver(
                "deep",
                SolverConfig::builder()
                    .stages(Stages::Multi(5))
                    .finish()
                    .unwrap(),
            )
            .nonideality(Nonideality::circuit("ideal", CircuitEngineConfig::ideal()))
            .finish()
            .unwrap();
        let err = deep.run().unwrap_err();
        assert!(err.to_string().contains("deep"), "{err}");
        // A rung whose EngineSpec cannot build fails the run loudly,
        // naming the rung — never a silent completed-0 report.
        let bad_rung = Campaign::builder("t")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .solver(
                "one",
                SolverConfig::builder()
                    .stages(Stages::One)
                    .finish()
                    .unwrap(),
            )
            .nonideality(Nonideality::spec(
                "fp-60b",
                blockamc::engine::EngineSpec::FixedPoint { bits: 60 },
            ))
            .finish()
            .unwrap();
        let err = bad_rung.run().unwrap_err();
        assert!(err.to_string().contains("fp-60b"), "{err}");
        // Same for a registered name missing from the registry.
        let unknown = Campaign::builder("t")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .solver(
                "one",
                SolverConfig::builder()
                    .stages(Stages::One)
                    .finish()
                    .unwrap(),
            )
            .nonideality(Nonideality::registered("mystery", "no-such-backend"))
            .finish()
            .unwrap();
        let err = unknown.run().unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn registered_rungs_resolve_through_the_campaign_registry() {
        let mut registry = EngineRegistry::builtin();
        // A custom name whose constructor is opaque to this crate.
        registry.register_spec("exact", EngineSpec::Numeric);
        let c = Campaign::builder("registered")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .solver(
                "one",
                SolverConfig::builder()
                    .stages(Stages::One)
                    .capture_trace(false)
                    .finish()
                    .unwrap(),
            )
            .nonideality(Nonideality::registered("exact-by-name", "exact"))
            .trials(2)
            .registry(registry)
            .finish()
            .unwrap();
        let report = c.run().unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.engine, "exact");
        assert_eq!(cell.completed, 2);
        // Exact digital backend: machine-precision errors, no analog
        // latency model.
        assert!(cell.errors.max < 1e-10);
        assert!(cell.model_latency_s.is_none());
    }
}

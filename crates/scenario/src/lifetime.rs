//! Streaming lifetime campaigns: policy × workload reliability traces.
//!
//! A [`LifetimeCampaign`] drives a long request trace through an aging
//! solver ([`blockamc::aging::AgedSolver`]): per tick the arrays drift
//! and accumulate stuck cells, a [`RepairPolicy`] decides between
//! serving degraded, CG refinement, and write-and-verify
//! reprogramming, and the campaign records accuracy, programming
//! energy, SLO availability, and repair count — the data behind the
//! policy frontier `repro lifetime` emits.
//!
//! Cells (`workload × policy`) are sharded over `amc-par` workers with
//! the same determinism contract as [`crate::campaign::Campaign`]:
//! every random stream is keyed on `(campaign seed, cell indices,
//! tick)`, never on scheduling, so the tick-by-tick report is
//! **bit-identical at any worker count** —
//! [`run_lifetime_worker_sweep`] makes the contract measurable.

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use blockamc::aging::{AgedSolver, AgingModel, RepairScheduler, TickRecord};
use blockamc::engine::EngineRegistry;
use blockamc::solver::{BlockAmcSolver, SolverConfig};

use crate::campaign::EngineSel;
use crate::error::ScenarioError;
use crate::workload::WorkloadSpec;
use crate::Result;

pub use blockamc::aging::RepairPolicy;

/// One named repair policy on the campaign's policy axis.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCell {
    /// Display label used in reports.
    pub label: String,
    /// The scheduler policy.
    pub policy: RepairPolicy,
}

/// A declarative lifetime study: workloads × repair policies, one
/// streaming trace per cell.
#[derive(Debug, Clone)]
pub struct LifetimeCampaign {
    name: String,
    workloads: Vec<WorkloadSpec>,
    policies: Vec<PolicyCell>,
    config: SolverConfig,
    engine: EngineSel,
    model: AgingModel,
    ticks: usize,
    rhs_per_tick: usize,
    workers: usize,
    seed: u64,
    registry: Arc<EngineRegistry>,
}

/// Builder for [`LifetimeCampaign`] — validated by
/// [`LifetimeCampaignBuilder::finish`].
#[derive(Debug, Clone)]
pub struct LifetimeCampaignBuilder {
    campaign: LifetimeCampaign,
}

impl LifetimeCampaign {
    /// Starts a builder. Defaults: the facade's default solver config,
    /// the exact `numeric` backend, [`AgingModel::typical_rram`],
    /// 50 ticks, 2 RHS per tick, 1 worker, seed 0.
    pub fn builder(name: impl Into<String>) -> LifetimeCampaignBuilder {
        LifetimeCampaignBuilder {
            campaign: LifetimeCampaign {
                name: name.into(),
                workloads: Vec::new(),
                policies: Vec::new(),
                config: SolverConfig::builder()
                    .finish()
                    .expect("default solver config is valid"),
                engine: EngineSel::Registered("numeric"),
                model: AgingModel::typical_rram(),
                ticks: 50,
                rhs_per_tick: 2,
                workers: 1,
                seed: 0,
                registry: Arc::new(EngineRegistry::builtin()),
            },
        }
    }

    /// Campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload axis.
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// The policy axis.
    pub fn policies(&self) -> &[PolicyCell] {
        &self.policies
    }

    /// The lifetime model every cell ages under.
    pub fn model(&self) -> &AgingModel {
        &self.model
    }

    /// Ticks per trace.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Runs the campaign with its configured worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LifetimeCampaign::run_with_workers`].
    pub fn run(&self) -> Result<LifetimeReport> {
        self.run_with_workers(self.workers)
    }

    /// Runs the campaign, sharding cells over `workers` threads.
    ///
    /// The report is bit-identical at every worker count: cells are
    /// independent, merged in index order, and all randomness inside a
    /// cell is keyed on `(seed, workload index, policy index, tick)`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] for `workers == 0` or a
    /// config/workload mismatch (reported up front, naming the cell);
    /// solver/aging failures from the traces themselves.
    pub fn run_with_workers(&self, workers: usize) -> Result<LifetimeReport> {
        if workers == 0 {
            return Err(ScenarioError::spec(
                "lifetime campaign needs at least one worker",
            ));
        }
        // Fail fast before any trace runs: every policy and the model
        // were validated at build time; the config × workload grid and
        // the engine selection are checked here, naming the offender.
        self.engine
            .build(&self.registry, self.seed)
            .map_err(ScenarioError::from)?;
        for w in &self.workloads {
            self.config.validate_for_size(w.n).map_err(|e| {
                ScenarioError::spec(format!("workload '{}' (n={}): {e}", w.name, w.n))
            })?;
        }

        let jobs: Vec<(usize, usize)> = (0..self.workloads.len())
            .flat_map(|w| (0..self.policies.len()).map(move |p| (w, p)))
            .collect();
        let results = amc_par::map_indexed(workers, jobs, |_, (w, p)| self.run_cell(w, p));
        let mut cells = Vec::with_capacity(results.len());
        for r in results {
            cells.push(r?);
        }
        Ok(LifetimeReport {
            name: self.name.clone(),
            ticks: self.ticks,
            rhs_per_tick: self.rhs_per_tick,
            cells,
        })
    }

    /// Runs one `(workload, policy)` cell: prepare once, then stream
    /// `ticks` scheduler ticks with fresh per-tick right-hand sides.
    fn run_cell(&self, w: usize, p: usize) -> Result<LifetimeCellRecord> {
        let spec = &self.workloads[w];
        let cell = &self.policies[p];
        let cell_seed = cell_seed(self.seed, w, p);

        // The campaign streams its own per-tick RHS trace; the
        // instance's single RHS is unused.
        let instance = spec.instantiate(1)?;
        let engine = self.engine.build(&self.registry, cell_seed)?;
        let mut solver = BlockAmcSolver::from_config(engine, self.config.clone());
        let replica = solver.prepare(&instance.matrix)?.replicate(1).remove(0);
        let mut aged = AgedSolver::new(replica, instance.matrix, self.model, cell_seed)?;
        let mut scheduler = RepairScheduler::new(cell.policy)?;

        let mut trace_rng = ChaCha8Rng::seed_from_u64(cell_seed.wrapping_add(0x9E37_79B9));
        let mut ticks = Vec::with_capacity(self.ticks);
        for _ in 0..self.ticks {
            let rhs: Vec<Vec<f64>> = (0..self.rhs_per_tick)
                .map(|_| {
                    (0..spec.n)
                        .map(|_| trace_rng.gen::<f64>() * 2.0 - 1.0)
                        .collect()
                })
                .collect();
            ticks.push(aged.run_tick(&mut scheduler, &rhs)?);
        }

        let summary = LifetimeSummary::from_ticks(&ticks);
        Ok(LifetimeCellRecord {
            workload: spec.name.clone(),
            family: spec.family.key().to_string(),
            n: spec.n,
            policy: cell.label.clone(),
            arrays: aged.array_count(),
            stuck_cells: aged.stuck_cells(),
            ticks,
            summary,
        })
    }
}

/// Derives one cell's seed from the campaign seed and the cell's grid
/// coordinates — the same hash shape as the campaign engine's
/// `trial_seed`, so cells land in independent streams.
fn cell_seed(base: u64, w: usize, p: usize) -> u64 {
    let mut h = base ^ 0x517C_C1B7_2722_0A95;
    for v in [w as u64 + 1, p as u64 + 1] {
        h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
    h
}

/// Aggregates of one cell's trace — the numbers a policy-frontier
/// table is made of.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeSummary {
    /// Mean served relative residual over all ticks.
    pub mean_accuracy: f64,
    /// Worst served relative residual over all ticks.
    pub worst_accuracy: f64,
    /// Total write-and-verify energy spent (J).
    pub total_energy_j: f64,
    /// Mean SLO availability over all ticks.
    pub mean_availability: f64,
    /// Total arrays reprogrammed.
    pub total_repairs: u64,
    /// Ticks that served through CG refinement.
    pub refine_ticks: u64,
    /// Total CG iterations saved by warm-starting from degraded
    /// answers (across all refined ticks).
    pub iterations_saved: i64,
    /// Ticks whose served answers missed the SLO (availability 0).
    pub degraded_ticks: u64,
}

impl LifetimeSummary {
    /// Summarizes a trace in tick order (deterministic aggregation).
    pub fn from_ticks(ticks: &[TickRecord]) -> Self {
        let count = ticks.len().max(1) as f64;
        let mut s = LifetimeSummary {
            mean_accuracy: 0.0,
            worst_accuracy: 0.0,
            total_energy_j: 0.0,
            mean_availability: 0.0,
            total_repairs: 0,
            refine_ticks: 0,
            iterations_saved: 0,
            degraded_ticks: 0,
        };
        for t in ticks {
            s.mean_accuracy += t.accuracy / count;
            s.worst_accuracy = s.worst_accuracy.max(t.accuracy);
            s.total_energy_j += t.energy_j;
            s.mean_availability += t.availability / count;
            s.total_repairs += t.arrays_reprogrammed;
            s.refine_ticks += u64::from(t.refine_iterations > 0);
            s.iterations_saved += t.iterations_saved;
            s.degraded_ticks += u64::from(t.availability == 0.0);
        }
        s
    }
}

/// One cell of a lifetime report: a full tick-by-tick trace plus its
/// summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeCellRecord {
    /// Workload display name.
    pub workload: String,
    /// Workload family key.
    pub family: String,
    /// Problem size.
    pub n: usize,
    /// Policy label.
    pub policy: String,
    /// Programmed arrays aging in the cell's solver.
    pub arrays: usize,
    /// Stuck cells accumulated by the end of the trace.
    pub stuck_cells: usize,
    /// The tick-by-tick trace.
    pub ticks: Vec<TickRecord>,
    /// Trace aggregates.
    pub summary: LifetimeSummary,
}

/// A full lifetime campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Campaign name.
    pub name: String,
    /// Ticks per trace.
    pub ticks: usize,
    /// Right-hand sides served per tick.
    pub rhs_per_tick: usize,
    /// One record per `workload × policy` cell, workload-major.
    pub cells: Vec<LifetimeCellRecord>,
}

impl LifetimeReport {
    /// The report's repair/refine/degraded totals as a metrics
    /// snapshot — the same queryable surface the server exposes, built
    /// purely from the (deterministic) report so it is bit-identical
    /// at any worker count.
    pub fn metrics(&self) -> amc_obs::MetricsSnapshot {
        let registry = amc_obs::Registry::new();
        registry
            .counter("lifetime.cells")
            .set(self.cells.len() as u64);
        registry
            .counter("lifetime.ticks")
            .set(self.cells.iter().map(|c| c.ticks.len() as u64).sum());
        let repairs = registry.counter("lifetime.total_repairs");
        let refines = registry.counter("lifetime.refine_ticks");
        let degraded = registry.counter("lifetime.degraded_ticks");
        let repairs_per_tick = registry.histogram("lifetime.repairs_per_tick");
        for cell in &self.cells {
            repairs.add(cell.summary.total_repairs);
            refines.add(cell.summary.refine_ticks);
            degraded.add(cell.summary.degraded_ticks);
            for tick in &cell.ticks {
                repairs_per_tick.record(tick.arrays_reprogrammed);
            }
        }
        registry.snapshot()
    }
}

/// The result of [`run_lifetime_worker_sweep`].
#[derive(Debug, Clone)]
pub struct LifetimeWorkerSweep {
    /// The report (identical at every worker count).
    pub report: LifetimeReport,
    /// `(workers, wall_seconds)` per sweep point.
    pub timings: Vec<(usize, f64)>,
    /// Whether every worker count reproduced the first report bitwise.
    pub bit_identical: bool,
}

/// Runs `campaign` once per entry of `worker_counts`, checking the
/// tick-by-tick reports agree bitwise — the lifetime determinism
/// contract made measurable.
///
/// # Errors
///
/// [`ScenarioError::InvalidSpec`] for an empty `worker_counts`;
/// campaign failures per run.
pub fn run_lifetime_worker_sweep(
    campaign: &LifetimeCampaign,
    worker_counts: &[usize],
) -> Result<LifetimeWorkerSweep> {
    let Some((&first, rest)) = worker_counts.split_first() else {
        return Err(ScenarioError::spec("worker sweep needs at least one count"));
    };
    let start = std::time::Instant::now();
    let report = campaign.run_with_workers(first)?;
    let mut timings = vec![(first, start.elapsed().as_secs_f64())];
    let mut bit_identical = true;
    for &workers in rest {
        let start = std::time::Instant::now();
        let r = campaign.run_with_workers(workers)?;
        timings.push((workers, start.elapsed().as_secs_f64()));
        bit_identical &= r == report;
    }
    Ok(LifetimeWorkerSweep {
        report,
        timings,
        bit_identical,
    })
}

impl LifetimeCampaignBuilder {
    /// Adds one workload spec.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.campaign.workloads.push(spec);
        self
    }

    /// Adds one labelled repair policy.
    pub fn policy(mut self, label: impl Into<String>, policy: RepairPolicy) -> Self {
        self.campaign.policies.push(PolicyCell {
            label: label.into(),
            policy,
        });
        self
    }

    /// Sets the solver configuration every cell prepares with.
    pub fn solver(mut self, config: SolverConfig) -> Self {
        self.campaign.config = config;
        self
    }

    /// Selects the engine backend.
    pub fn engine(mut self, engine: EngineSel) -> Self {
        self.campaign.engine = engine;
        self
    }

    /// Sets the lifetime model.
    pub fn model(mut self, model: AgingModel) -> Self {
        self.campaign.model = model;
        self
    }

    /// Sets the trace length in ticks.
    pub fn ticks(mut self, ticks: usize) -> Self {
        self.campaign.ticks = ticks;
        self
    }

    /// Sets the right-hand sides served per tick.
    pub fn rhs_per_tick(mut self, rhs: usize) -> Self {
        self.campaign.rhs_per_tick = rhs;
        self
    }

    /// Sets the default worker count [`LifetimeCampaign::run`] uses.
    pub fn workers(mut self, workers: usize) -> Self {
        self.campaign.workers = workers;
        self
    }

    /// Sets the campaign base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.campaign.seed = seed;
        self
    }

    /// Validates and returns the campaign — fail-fast: empty axes,
    /// zero counts, invalid policies, and invalid drift/fault/cost
    /// model parameters are all rejected here, before any trace runs.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] (or the wrapped
    /// `InvalidConfig` from the aging layer) naming the offending
    /// parameter.
    pub fn finish(self) -> Result<LifetimeCampaign> {
        let c = self.campaign;
        if c.workloads.is_empty() {
            return Err(ScenarioError::spec(
                "lifetime campaign needs at least one workload",
            ));
        }
        if c.policies.is_empty() {
            return Err(ScenarioError::spec(
                "lifetime campaign needs at least one policy",
            ));
        }
        if c.ticks == 0 {
            return Err(ScenarioError::spec(
                "lifetime campaign needs at least one tick",
            ));
        }
        if c.rhs_per_tick == 0 {
            return Err(ScenarioError::spec(
                "lifetime campaign needs at least one RHS per tick",
            ));
        }
        if c.workers == 0 {
            return Err(ScenarioError::spec(
                "lifetime campaign needs at least one worker",
            ));
        }
        c.model.validate().map_err(ScenarioError::from)?;
        for cell in &c.policies {
            cell.policy
                .validate()
                .map_err(|e| ScenarioError::spec(format!("policy '{}': {e}", cell.label)))?;
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadFamily;
    use amc_device::drift::DriftModel;

    fn accelerated_model() -> AgingModel {
        AgingModel {
            drift: DriftModel {
                nu: 0.05,
                nu_sigma: 0.01,
                t0_s: 1.0,
            },
            tick_s: 100.0,
            ..AgingModel::typical_rram()
        }
    }

    fn tiny_campaign() -> LifetimeCampaign {
        LifetimeCampaign::builder("tiny")
            .workload(WorkloadSpec::new("wishart", WorkloadFamily::Wishart, 8, 1))
            .policy("never", RepairPolicy::Never)
            .policy(
                "threshold",
                RepairPolicy::ResidualThreshold {
                    refine_above: 1e-6,
                    reprogram_above: 1e-2,
                },
            )
            .model(accelerated_model())
            .ticks(6)
            .rhs_per_tick(1)
            .seed(3)
            .finish()
            .unwrap()
    }

    #[test]
    fn report_is_bit_identical_across_worker_counts() {
        let sweep = run_lifetime_worker_sweep(&tiny_campaign(), &[1, 2, 4]).unwrap();
        assert!(sweep.bit_identical);
        assert_eq!(sweep.report.cells.len(), 2);
        assert_eq!(sweep.report.cells[0].ticks.len(), 6);
    }

    #[test]
    fn never_policy_degrades_and_threshold_holds_the_slo() {
        let report = tiny_campaign().run().unwrap();
        let never = &report.cells[0];
        let threshold = &report.cells[1];
        assert_eq!(never.policy, "never");
        assert!(never.summary.total_energy_j == 0.0);
        assert!(
            threshold.summary.mean_accuracy <= never.summary.mean_accuracy,
            "repairing must not serve worse answers: {} vs {}",
            threshold.summary.mean_accuracy,
            never.summary.mean_accuracy
        );
    }

    #[test]
    fn invalid_campaigns_fail_fast() {
        assert!(LifetimeCampaign::builder("empty").finish().is_err());
        // Invalid policy parameters are rejected at build time.
        let bad_policy = LifetimeCampaign::builder("t")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .policy(
                "inverted",
                RepairPolicy::ResidualThreshold {
                    refine_above: 1e-2,
                    reprogram_above: 1e-6,
                },
            )
            .finish();
        assert!(bad_policy.is_err());
        // Invalid device-model parameters are rejected at build time.
        let mut model = AgingModel::typical_rram();
        model.tick_s = -1.0;
        let bad_model = LifetimeCampaign::builder("t")
            .workload(WorkloadSpec::new("w", WorkloadFamily::Wishart, 8, 1))
            .policy("never", RepairPolicy::Never)
            .model(model)
            .finish();
        assert!(bad_model.is_err());
    }
}

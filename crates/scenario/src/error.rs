use std::fmt;

/// Error type for all fallible operations in `amc-scenario`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A campaign or workload specification is malformed (empty axis,
    /// zero trials, size a family cannot realize, …).
    InvalidSpec {
        /// Explanation of what was wrong.
        message: String,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(amc_linalg::LinalgError),
    /// An underlying circuit-model operation failed.
    Circuit(amc_circuit::CircuitError),
    /// An underlying solver operation failed.
    Solver(blockamc::BlockAmcError),
    /// An underlying architecture-model operation failed.
    Arch(amc_arch::ArchError),
}

impl ScenarioError {
    /// Shorthand constructor for [`ScenarioError::InvalidSpec`].
    pub fn spec(message: impl Into<String>) -> Self {
        ScenarioError::InvalidSpec {
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::InvalidSpec { message } => {
                write!(f, "invalid scenario specification: {message}")
            }
            ScenarioError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            ScenarioError::Circuit(e) => write!(f, "circuit error: {e}"),
            ScenarioError::Solver(e) => write!(f, "solver error: {e}"),
            ScenarioError::Arch(e) => write!(f, "architecture model error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Linalg(e) => Some(e),
            ScenarioError::Circuit(e) => Some(e),
            ScenarioError::Solver(e) => Some(e),
            ScenarioError::Arch(e) => Some(e),
            ScenarioError::InvalidSpec { .. } => None,
        }
    }
}

impl From<amc_linalg::LinalgError> for ScenarioError {
    fn from(e: amc_linalg::LinalgError) -> Self {
        ScenarioError::Linalg(e)
    }
}

impl From<amc_circuit::CircuitError> for ScenarioError {
    fn from(e: amc_circuit::CircuitError) -> Self {
        ScenarioError::Circuit(e)
    }
}

impl From<blockamc::BlockAmcError> for ScenarioError {
    fn from(e: blockamc::BlockAmcError) -> Self {
        ScenarioError::Solver(e)
    }
}

impl From<amc_arch::ArchError> for ScenarioError {
    fn from(e: amc_arch::ArchError) -> Self {
        ScenarioError::Arch(e)
    }
}

//! The AMC sign conventions, verified end to end.
//!
//! Every feedback amplifier in the AMC circuits negates its output, and
//! the five-step algorithm is built around those negations (the paper's
//! Fig. 2 labels every intermediate with its sign). These tests pin the
//! conventions down so a refactor can never silently flip one.

use amc_linalg::{generate, lu, vector, Matrix};
use blockamc::converter::IoConfig;
use blockamc::engine::{AmcEngine, CircuitEngine, CircuitEngineConfig, NumericEngine};
use blockamc::one_stage;
use blockamc::partition::BlockPartition;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = generate::diagonally_dominant(n, 1.0, &mut rng).unwrap();
    let b = generate::random_vector(n, &mut rng);
    (a, b)
}

#[test]
fn engine_inv_carries_the_minus_sign() {
    let (a, b) = workload(6, 1);
    for engine in &mut [
        Box::new(NumericEngine::new()) as Box<dyn AmcEngine>,
        Box::new(CircuitEngine::new(CircuitEngineConfig::ideal(), 1)),
    ] {
        let mut op = engine.program(&a).unwrap();
        let out = engine.inv(&mut op, &b).unwrap();
        let x = lu::solve(&a, &b).unwrap();
        assert!(
            vector::approx_eq(&out, &vector::neg(&x), 1e-8),
            "{} engine INV must return −A⁻¹b",
            engine.name()
        );
    }
}

#[test]
fn engine_mvm_carries_the_minus_sign() {
    let (a, x) = workload(6, 2);
    for engine in &mut [
        Box::new(NumericEngine::new()) as Box<dyn AmcEngine>,
        Box::new(CircuitEngine::new(CircuitEngineConfig::ideal(), 2)),
    ] {
        let mut op = engine.program(&a).unwrap();
        let out = engine.mvm(&mut op, &x).unwrap();
        let y = a.matvec(&x).unwrap();
        assert!(
            vector::approx_eq(&out, &vector::neg(&y), 1e-8),
            "{} engine MVM must return −A·x",
            engine.name()
        );
    }
}

#[test]
fn step_signs_match_the_papers_flow_chart() {
    // Verify every intermediate of Fig. 2 against its algebraic
    // definition: −y_t, g_t, z, −f_t, −y.
    let (a, b) = workload(8, 3);
    let p = BlockPartition::halves(&a).unwrap();
    let (f, g) = p.split_vector(&b).unwrap();
    let a4s = p.schur_complement().unwrap();

    let y_t = lu::solve(&p.a1, &f).unwrap();
    let g_t = p.a3.matvec(&y_t).unwrap();
    let z = lu::solve(&a4s, &vector::sub(&g, &g_t)).unwrap();
    let f_t = p.a2.matvec(&z).unwrap();
    let y = lu::solve(&p.a1, &vector::sub(&f, &f_t)).unwrap();

    let mut engine = NumericEngine::new();
    let mut prep = one_stage::prepare(&mut engine, &p).unwrap();
    let sol = one_stage::solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();

    assert_eq!(sol.trace.len(), 5);
    assert!(
        vector::approx_eq(&sol.trace[0].output, &vector::neg(&y_t), 1e-10),
        "step 1 = −y_t"
    );
    assert!(
        vector::approx_eq(&sol.trace[1].output, &g_t, 1e-10),
        "step 2 = g_t"
    );
    assert!(
        vector::approx_eq(&sol.trace[2].output, &z, 1e-10),
        "step 3 = z"
    );
    assert!(
        vector::approx_eq(&sol.trace[3].output, &vector::neg(&f_t), 1e-10),
        "step 4 = −f_t"
    );
    assert!(
        vector::approx_eq(&sol.trace[4].output, &vector::neg(&y), 1e-10),
        "step 5 = −y"
    );
    // Final solution assembles [y; z].
    assert!(vector::approx_eq(&sol.x, &vector::concat(&y, &z), 1e-10));
}

#[test]
fn step_inputs_match_the_papers_flow_chart() {
    let (a, b) = workload(8, 4);
    let p = BlockPartition::halves(&a).unwrap();
    let (f, g) = p.split_vector(&b).unwrap();

    let mut engine = NumericEngine::new();
    let mut prep = one_stage::prepare(&mut engine, &p).unwrap();
    let sol = one_stage::solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();

    // Step 1 input is f; step 3 input is g_t − g (the "−g_s" of eq. 3);
    // step 5 input is f − f_t (the "f_s").
    assert!(
        vector::approx_eq(&sol.trace[0].input, &f, 0.0),
        "step 1 input = f"
    );
    let gt = &sol.trace[1].output;
    assert!(
        vector::approx_eq(&sol.trace[2].input, &vector::sub(gt, &g), 1e-12),
        "step 3 input = g_t − g"
    );
    let neg_ft = &sol.trace[3].output;
    assert!(
        vector::approx_eq(&sol.trace[4].input, &vector::add(&f, neg_ft), 1e-12),
        "step 5 input = f + (−f_t)"
    );
}

#[test]
fn double_negation_recovers_positive_solution() {
    // x_upper = −(step-5 output): the only digital negation in the flow.
    let (a, b) = workload(10, 5);
    let mut engine = NumericEngine::new();
    let mut prep = one_stage::prepare_matrix(&mut engine, &a).unwrap();
    let sol = one_stage::solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
    let x_ref = lu::solve(&a, &b).unwrap();
    assert!(vector::approx_eq(&sol.x, &x_ref, 1e-9));
    // And the raw step-5 output is its negation.
    let split = prep.split();
    assert!(vector::approx_eq(
        &sol.trace[4].output,
        &vector::neg(&x_ref[..split]),
        1e-9
    ));
}

//! Execution engines for the AMC primitives.
//!
//! The BlockAMC algorithm (Fig. 2 / Algorithm 1 of the paper) is a fixed
//! cascade of INV and MVM operations. [`AmcEngine`] abstracts who executes
//! those primitives, and the set of executors is **open**: a backend is
//! any type implementing [`AmcEngine`] whose programmed state implements
//! [`OperandState`]. The backends shipped in-tree are not enumerated
//! here — they are registered in [`EngineRegistry::builtin`] and
//! selectable as data through [`EngineSpec`]; run
//! `EngineRegistry::builtin().names()` (or `repro engines`) for the
//! authoritative list.
//!
//! Both analog-style and digital backends honour the AMC *sign
//! convention*: the negative-feedback circuits produce `−A⁻¹·b` (INV)
//! and `−A·x` (MVM). The five-step algorithm is formulated directly on
//! those signed quantities, exactly as the paper's flow chart.
//!
//! Matrices are programmed once via [`AmcEngine::program`] and the
//! returned [`Operand`] is reused across steps — this matters physically:
//! block `A1` is used twice (steps 1 and 5) *on the same array*, so both
//! steps must see the same variation draw.
//!
//! # Object safety
//!
//! [`AmcEngine`] is object-safe, and `Box<dyn AmcEngine>` itself
//! implements both [`AmcEngine`] and [`Clone`] (via
//! [`AmcEngine::clone_boxed`]), so the entire solver stack — facade,
//! prepared trees, replicas, parallel batching — runs unchanged over a
//! backend chosen at run time:
//!
//! ```
//! use blockamc::engine::EngineRegistry;
//! use blockamc::solver::{SolverConfig, Stages};
//! use amc_linalg::Matrix;
//!
//! # fn main() -> Result<(), blockamc::BlockAmcError> {
//! let engine = EngineRegistry::builtin().build("numeric", 0)?;
//! let mut solver = SolverConfig::builder()
//!     .stages(Stages::One)
//!     .build(engine)?; // BlockAmcSolver<Box<dyn AmcEngine>>
//! let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]])?;
//! let report = solver.solve(&a, &[4.0, 3.0])?;
//! assert!((report.x[0] - 1.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

use std::any::Any;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use amc_linalg::Matrix;

use crate::{BlockAmcError, Result};

mod blocked;
mod circuit;
mod fixed_point;
mod numeric;
mod registry;

pub use blocked::{BlockedNumericEngine, DEFAULT_BLOCK};
pub use circuit::{CircuitEngine, CircuitEngineConfig};
pub use fixed_point::FixedPointEngine;
pub use numeric::NumericEngine;
pub use registry::{EngineRegistry, EngineSpec};

/// The backend-owned state of a programmed matrix.
///
/// Each engine backend defines its own state type (a cached
/// factorization, a conductance-programmed crossbar pair, a quantized
/// copy, …) and keeps it **in the backend module** — core neither
/// enumerates nor constrains the possibilities. The engine recovers its
/// concrete type through [`Operand::downcast_ref`] /
/// [`Operand::downcast_mut`].
pub trait OperandState: Any + fmt::Debug + Send {
    /// Clones the state behind the type erasure.
    fn clone_boxed(&self) -> Box<dyn OperandState>;

    /// Shape `(rows, cols)` of the represented matrix.
    fn shape(&self) -> (usize, usize);

    /// The *effective* matrix this state computes with — exact for
    /// digital backends, the programmed (noisy) matrix for analog ones.
    fn effective_matrix(&self) -> Matrix;

    /// Upcasts to [`Any`] for downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Upcasts to [`Any`] for mutable downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A matrix prepared for repeated AMC operations by a specific engine.
///
/// Obtained from [`AmcEngine::program`]; a thin type-erased handle over
/// the backend's [`OperandState`], opaque to everything but the backend
/// that programmed it.
#[derive(Debug)]
pub struct Operand {
    state: Box<dyn OperandState>,
}

impl Clone for Operand {
    fn clone(&self) -> Self {
        Operand {
            state: self.state.clone_boxed(),
        }
    }
}

impl Operand {
    /// Wraps a backend's programmed state.
    pub fn new(state: impl OperandState) -> Self {
        Operand {
            state: Box::new(state),
        }
    }

    /// Shape `(rows, cols)` of the represented matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.state.shape()
    }

    /// The *effective* matrix this operand computes with — exact for
    /// digital operands, the programmed (noisy) matrix for analog
    /// operands. Useful for diagnostics.
    pub fn effective_matrix(&self) -> Matrix {
        self.state.effective_matrix()
    }

    /// Borrows the state as a concrete backend type, if it matches.
    pub fn downcast_ref<T: OperandState>(&self) -> Option<&T> {
        self.state.as_any().downcast_ref::<T>()
    }

    /// Mutably borrows the state as a concrete backend type, if it
    /// matches.
    pub fn downcast_mut<T: OperandState>(&mut self) -> Option<&mut T> {
        self.state.as_any_mut().downcast_mut::<T>()
    }

    /// Like [`Operand::downcast_mut`], but failure is the standard
    /// [`BlockAmcError::OperandMismatch`] an engine reports when handed
    /// an operand programmed by a different backend.
    pub fn expect_state_mut<T: OperandState>(&mut self, engine: &'static str) -> Result<&mut T> {
        self.downcast_mut::<T>()
            .ok_or(BlockAmcError::OperandMismatch { engine })
    }
}

/// Cumulative cost counters of an engine.
///
/// Counters are additive: [`Add`]/[`AddAssign`] sum the counters of
/// independent engines (e.g. the per-replica engines of a sharded batch
/// solve), and [`Sub`] recovers the delta across an operation. All op
/// counts use saturating arithmetic (asserting in debug builds), so a
/// long-lived serving process can never wrap a counter back to a small
/// value or panic in release on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Number of matrices programmed.
    pub program_ops: usize,
    /// Number of INV operations executed.
    pub inv_ops: usize,
    /// Number of MVM operations executed.
    pub mvm_ops: usize,
    /// Total estimated analog settling time, in seconds (analog
    /// backends only).
    pub analog_time_s: f64,
    /// Total estimated analog energy, in joules (analog backends only).
    pub analog_energy_j: f64,
}

/// Saturating op-count addition: loud in debug builds, safe in release.
fn saturating_count_add(lhs: usize, rhs: usize, what: &'static str) -> usize {
    debug_assert!(
        lhs.checked_add(rhs).is_some(),
        "EngineStats::{what} overflow: {lhs} + {rhs} saturated"
    );
    lhs.saturating_add(rhs)
}

impl EngineStats {
    /// Counts one `program` op (saturating; see struct docs).
    pub fn count_program(&mut self) {
        self.program_ops = saturating_count_add(self.program_ops, 1, "program_ops");
    }

    /// Counts one `inv` op (saturating; see struct docs).
    pub fn count_inv(&mut self) {
        self.inv_ops = saturating_count_add(self.inv_ops, 1, "inv_ops");
    }

    /// Counts one `mvm` op (saturating; see struct docs).
    pub fn count_mvm(&mut self) {
        self.mvm_ops = saturating_count_add(self.mvm_ops, 1, "mvm_ops");
    }
}

impl AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        self.program_ops = saturating_count_add(self.program_ops, rhs.program_ops, "program_ops");
        self.inv_ops = saturating_count_add(self.inv_ops, rhs.inv_ops, "inv_ops");
        self.mvm_ops = saturating_count_add(self.mvm_ops, rhs.mvm_ops, "mvm_ops");
        self.analog_time_s += rhs.analog_time_s;
        self.analog_energy_j += rhs.analog_energy_j;
    }
}

impl Add for EngineStats {
    type Output = EngineStats;

    fn add(mut self, rhs: EngineStats) -> EngineStats {
        self += rhs;
        self
    }
}

impl Sub for EngineStats {
    type Output = EngineStats;

    fn sub(self, rhs: EngineStats) -> EngineStats {
        debug_assert!(
            self.program_ops >= rhs.program_ops
                && self.inv_ops >= rhs.inv_ops
                && self.mvm_ops >= rhs.mvm_ops,
            "EngineStats subtraction underflow (delta taken backwards?)"
        );
        EngineStats {
            program_ops: self.program_ops.saturating_sub(rhs.program_ops),
            inv_ops: self.inv_ops.saturating_sub(rhs.inv_ops),
            mvm_ops: self.mvm_ops.saturating_sub(rhs.mvm_ops),
            analog_time_s: self.analog_time_s - rhs.analog_time_s,
            analog_energy_j: self.analog_energy_j - rhs.analog_energy_j,
        }
    }
}

/// An executor of the two AMC primitives.
///
/// Implementations return results with the AMC minus sign:
/// [`AmcEngine::inv`] yields `−A⁻¹·b` and [`AmcEngine::mvm`] yields
/// `−A·x`.
///
/// The trait is object-safe; see the [module docs](self) for driving
/// the whole solver stack through `Box<dyn AmcEngine>`. Seedable
/// construction lives in the data layer: build a backend from an
/// [`EngineSpec`] (or a registry name) plus a seed.
pub trait AmcEngine: fmt::Debug + Send {
    /// Prepares a matrix for repeated operations (factorization for the
    /// digital backends; conductance mapping + programming for the
    /// circuit engine — variation is drawn here, once per array, as in
    /// hardware).
    ///
    /// # Errors
    ///
    /// Propagates mapping/factorization failures.
    fn program(&mut self, a: &Matrix) -> Result<Operand>;

    /// Executes an INV operation: returns `−A⁻¹·b`.
    ///
    /// # Errors
    ///
    /// Shape mismatches, operand-kind mismatches, and solver failures.
    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>>;

    /// Executes an MVM operation: returns `−A·x`.
    ///
    /// # Errors
    ///
    /// Shape mismatches, operand-kind mismatches, and solver failures.
    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>>;

    /// [`AmcEngine::inv`] into a caller-owned buffer (`out` is resized
    /// as needed). The default delegates to `inv`; allocation-conscious
    /// backends override it to reuse `out` across repeated solves — the
    /// batch hot path.
    ///
    /// Overrides must be **bit-identical** to `inv`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AmcEngine::inv`].
    fn inv_into(&mut self, operand: &mut Operand, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        *out = self.inv(operand, b)?;
        Ok(())
    }

    /// [`AmcEngine::mvm`] into a caller-owned buffer (`out` is resized
    /// as needed); same contract as [`AmcEngine::inv_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AmcEngine::mvm`].
    fn mvm_into(&mut self, operand: &mut Operand, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        *out = self.mvm(operand, x)?;
        Ok(())
    }

    /// Engine name for reports (the registry key of shipped backends).
    fn name(&self) -> &'static str;

    /// Cumulative cost counters.
    fn stats(&self) -> EngineStats;

    /// Clones the engine behind the type erasure, so replication
    /// ([`crate::solver::PreparedSolver::replicate`]) works on
    /// `Box<dyn AmcEngine>` exactly as on a concrete engine.
    fn clone_boxed(&self) -> Box<dyn AmcEngine>;
}

impl AmcEngine for Box<dyn AmcEngine> {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        (**self).program(a)
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        (**self).inv(operand, b)
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        (**self).mvm(operand, x)
    }

    fn inv_into(&mut self, operand: &mut Operand, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        (**self).inv_into(operand, b, out)
    }

    fn mvm_into(&mut self, operand: &mut Operand, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        (**self).mvm_into(operand, x, out)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn stats(&self) -> EngineStats {
        (**self).stats()
    }

    fn clone_boxed(&self) -> Box<dyn AmcEngine> {
        (**self).clone_boxed()
    }
}

impl Clone for Box<dyn AmcEngine> {
    fn clone(&self) -> Self {
        (**self).clone_boxed()
    }
}

// A programmed operand is the leaf executor of the recursive cascade
// core: its INV/MVM are the engine primitives themselves.
impl<E: AmcEngine + ?Sized> crate::multi_stage::InvExec<E> for Operand {
    fn inv_signed(
        &mut self,
        engine: &mut E,
        b: &[f64],
        _path: crate::multi_stage::SignalPath<'_>,
        _log: &mut crate::multi_stage::TraceLog,
        rec: &mut amc_obs::Recorder,
    ) -> Result<Vec<f64>> {
        let span = rec.enter("engine.inv");
        let out = engine.inv(self, b)?;
        rec.exit_with(span, &[("n", b.len() as f64)]);
        Ok(out)
    }
}

impl<E: AmcEngine + ?Sized> crate::multi_stage::MvmExec<E> for Operand {
    fn mvm_signed(&mut self, engine: &mut E, x: &[f64]) -> Result<Vec<f64>> {
        engine.mvm(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::vector;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap()
    }

    #[test]
    fn operand_kind_mismatch_detected() {
        let mut num = NumericEngine::new();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::ideal(), 5);
        let mut opn = num.program(&sample()).unwrap();
        let mut opc = cir.program(&sample()).unwrap();
        assert!(matches!(
            cir.inv(&mut opn, &[0.1, 0.1]),
            Err(BlockAmcError::OperandMismatch { .. })
        ));
        assert!(matches!(
            num.mvm(&mut opc, &[0.1, 0.1]),
            Err(BlockAmcError::OperandMismatch { .. })
        ));
    }

    #[test]
    fn operand_reports_shape_and_effective_matrix() {
        let mut e = NumericEngine::new();
        let op = e.program(&sample()).unwrap();
        assert_eq!(op.shape(), (2, 2));
        assert!(op.effective_matrix().approx_eq(&sample(), 0.0));
    }

    #[test]
    fn stats_are_additive() {
        let a = EngineStats {
            program_ops: 1,
            inv_ops: 2,
            mvm_ops: 3,
            analog_time_s: 0.5,
            analog_energy_j: 0.25,
        };
        let b = EngineStats {
            program_ops: 10,
            inv_ops: 20,
            mvm_ops: 30,
            analog_time_s: 1.0,
            analog_energy_j: 2.0,
        };
        let sum = a + b;
        assert_eq!(sum.program_ops, 11);
        assert_eq!(sum.inv_ops, 22);
        assert_eq!(sum.mvm_ops, 33);
        assert!((sum.analog_time_s - 1.5).abs() < 1e-15);
        assert!((sum.analog_energy_j - 2.25).abs() < 1e-15);
        let mut acc = EngineStats::default();
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
        assert_eq!(sum - b, a);
    }

    #[test]
    fn stats_count_methods_increment() {
        let mut s = EngineStats::default();
        s.count_program();
        s.count_inv();
        s.count_inv();
        s.count_mvm();
        assert_eq!((s.program_ops, s.inv_ops, s.mvm_ops), (1, 2, 1));
    }

    #[test]
    fn stats_addition_at_boundary_without_overflow_is_exact() {
        let mut s = EngineStats {
            inv_ops: usize::MAX - 1,
            ..EngineStats::default()
        };
        s.count_inv(); // lands exactly on MAX: no overflow, no assertion
        assert_eq!(s.inv_ops, usize::MAX);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn stats_addition_saturates_in_release() {
        let mut s = EngineStats {
            inv_ops: usize::MAX,
            ..EngineStats::default()
        };
        s.count_inv();
        assert_eq!(s.inv_ops, usize::MAX, "saturates instead of wrapping");
        let sum = s + s;
        assert_eq!(sum.inv_ops, usize::MAX);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflow")]
    fn stats_addition_overflow_asserts_in_debug() {
        let mut s = EngineStats {
            inv_ops: usize::MAX,
            ..EngineStats::default()
        };
        s.count_inv();
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn stats_subtraction_saturates_in_release() {
        let a = EngineStats {
            inv_ops: 1,
            ..EngineStats::default()
        };
        let b = EngineStats {
            inv_ops: 5,
            ..EngineStats::default()
        };
        assert_eq!((a - b).inv_ops, 0, "underflow clamps to zero");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "underflow")]
    fn stats_subtraction_underflow_asserts_in_debug() {
        let a = EngineStats {
            inv_ops: 1,
            ..EngineStats::default()
        };
        let b = EngineStats {
            inv_ops: 5,
            ..EngineStats::default()
        };
        let _ = a - b;
    }

    #[test]
    fn boxed_engine_is_a_working_engine() {
        let a = sample();
        let b = [0.3, -0.2];
        let mut concrete = NumericEngine::new();
        let mut boxed: Box<dyn AmcEngine> = Box::new(NumericEngine::new());
        let mut opc = concrete.program(&a).unwrap();
        let mut opb = boxed.program(&a).unwrap();
        assert_eq!(
            concrete.inv(&mut opc, &b).unwrap(),
            boxed.inv(&mut opb, &b).unwrap()
        );
        assert_eq!(boxed.name(), "numeric");
        assert_eq!(boxed.stats().inv_ops, 1);
        // Cloning a boxed engine clones the concrete backend behind it.
        let cloned = boxed.clone();
        assert_eq!(cloned.stats(), boxed.stats());
    }

    #[test]
    fn inv_into_defaults_match_inv() {
        let a = sample();
        let b = [0.7, 0.1];
        let mut e = NumericEngine::new();
        let mut op = e.program(&a).unwrap();
        let x = e.inv(&mut op, &b).unwrap();
        let mut buf = vec![42.0; 5]; // deliberately wrong size + contents
        e.inv_into(&mut op, &b, &mut buf).unwrap();
        assert_eq!(x, buf);
        let y = e.mvm(&mut op, &b).unwrap();
        e.mvm_into(&mut op, &b, &mut buf).unwrap();
        assert_eq!(y, buf);
        assert!(vector::approx_eq(&y, &[-1.45, -0.5], 1e-12));
    }
}

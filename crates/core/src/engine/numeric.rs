//! The exact digital reference backend.

use std::any::Any;

use amc_linalg::{lu::LuFactor, Matrix};

use super::{AmcEngine, EngineStats, Operand, OperandState};
use crate::Result;

/// Operand state of [`NumericEngine`]: the exact matrix with a cached
/// LU factorization (built lazily on the first INV).
#[derive(Debug, Clone)]
pub(crate) struct NumericOperand {
    pub(crate) a: Matrix,
    pub(crate) lu: Option<LuFactor>,
}

impl OperandState for NumericOperand {
    fn clone_boxed(&self) -> Box<dyn OperandState> {
        Box::new(self.clone())
    }

    fn shape(&self) -> (usize, usize) {
        self.a.shape()
    }

    fn effective_matrix(&self) -> Matrix {
        self.a.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Exact digital engine (LU-based) — the paper's "numerical solver"
/// reference curve.
///
/// # Example
///
/// ```
/// use blockamc::engine::{AmcEngine, NumericEngine};
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let mut e = NumericEngine::new();
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]])?;
/// let mut op = e.program(&a)?;
/// assert_eq!(e.inv(&mut op, &[2.0, 4.0])?, vec![-1.0, -1.0]); // −A⁻¹b
/// assert_eq!(e.mvm(&mut op, &[1.0, 1.0])?, vec![-2.0, -4.0]); // −A·x
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NumericEngine {
    stats: EngineStats,
}

impl NumericEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AmcEngine for NumericEngine {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        self.stats.count_program();
        Ok(Operand::new(NumericOperand {
            a: a.clone(),
            lu: None,
        }))
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.inv_into(operand, b, &mut x)?;
        Ok(x)
    }

    fn inv_into(&mut self, operand: &mut Operand, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let state = operand.expect_state_mut::<NumericOperand>("numeric")?;
        if state.lu.is_none() {
            state.lu = Some(LuFactor::new(&state.a)?);
        }
        let lu = state.lu.as_ref().expect("factorization was just installed");
        out.resize(lu.dim(), 0.0);
        lu.solve_into(b, out)?;
        amc_linalg::vector::neg_in_place(out);
        self.stats.count_inv();
        Ok(())
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = Vec::new();
        self.mvm_into(operand, x, &mut y)?;
        Ok(y)
    }

    fn mvm_into(&mut self, operand: &mut Operand, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let state = operand.expect_state_mut::<NumericOperand>("numeric")?;
        out.resize(state.a.rows(), 0.0);
        state.a.matvec_into(x, out)?;
        amc_linalg::vector::neg_in_place(out);
        self.stats.count_mvm();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "numeric"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn clone_boxed(&self) -> Box<dyn AmcEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::vector;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap()
    }

    #[test]
    fn numeric_engine_signs() {
        let mut e = NumericEngine::new();
        let a = sample();
        let mut op = e.program(&a).unwrap();
        let b = [0.5, 0.25];
        let neg_x = e.inv(&mut op, &b).unwrap();
        // A·(−neg_x) = b
        let back = a.matvec(&vector::neg(&neg_x)).unwrap();
        assert!(vector::approx_eq(&back, &b, 1e-12));
        let neg_y = e.mvm(&mut op, &[1.0, 1.0]).unwrap();
        assert!(vector::approx_eq(&neg_y, &[-2.5, -2.0], 1e-12));
    }

    #[test]
    fn numeric_engine_caches_factorization() {
        let mut e = NumericEngine::new();
        let mut op = e.program(&sample()).unwrap();
        let _ = e.inv(&mut op, &[1.0, 0.0]).unwrap();
        let _ = e.inv(&mut op, &[0.0, 1.0]).unwrap();
        assert_eq!(e.stats().inv_ops, 2);
        assert_eq!(e.stats().program_ops, 1);
    }

    #[test]
    fn engine_name() {
        assert_eq!(NumericEngine::new().name(), "numeric");
    }
}

//! Engine selection as data: [`EngineSpec`] and the name→constructor
//! [`EngineRegistry`].

use super::{
    AmcEngine, BlockedNumericEngine, CircuitEngine, CircuitEngineConfig, FixedPointEngine,
    NumericEngine, DEFAULT_BLOCK,
};
use crate::{BlockAmcError, Result};

/// A serializable description of an engine backend — the value a
/// campaign cell, a config file, or a service request carries instead
/// of a concrete engine type.
///
/// [`EngineSpec::build`] is the *seedable construction* path of the
/// open backend API: spec + seed → `Box<dyn AmcEngine>`. Digital
/// backends ignore the seed (they draw nothing); the circuit backend
/// seeds its variation/fault stream with it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EngineSpec {
    /// The exact digital reference ([`NumericEngine`]).
    Numeric,
    /// Cache-blocked digital solves with buffer-reusing hot paths
    /// ([`BlockedNumericEngine`]); bit-identical to `Numeric`.
    Blocked {
        /// LU panel width in columns.
        block: usize,
    },
    /// `bits`-bit quantized digital solves ([`FixedPointEngine`]) — the
    /// nonideality rung between exact and full analog.
    FixedPoint {
        /// Fixed-point word length.
        bits: u32,
    },
    /// The full analog device + circuit stack ([`CircuitEngine`]).
    Circuit(CircuitEngineConfig),
}

impl EngineSpec {
    /// The backend name this spec builds (the registry key and the
    /// [`AmcEngine::name`] of the constructed engine).
    pub fn name(&self) -> &'static str {
        match self {
            EngineSpec::Numeric => "numeric",
            EngineSpec::Blocked { .. } => "blocked",
            EngineSpec::FixedPoint { .. } => "fixed-point",
            EngineSpec::Circuit(_) => "circuit",
        }
    }

    /// The analog stack configuration, when this spec describes the
    /// circuit backend (analog cost/latency models apply only there).
    pub fn circuit(&self) -> Option<&CircuitEngineConfig> {
        match self {
            EngineSpec::Circuit(config) => Some(config),
            _ => None,
        }
    }

    /// Constructs the backend. Digital backends ignore `seed`.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for invalid spec parameters
    /// (zero panel width, out-of-range word length).
    pub fn build(&self, seed: u64) -> Result<Box<dyn AmcEngine>> {
        Ok(match self {
            EngineSpec::Numeric => Box::new(NumericEngine::new()),
            EngineSpec::Blocked { block } => Box::new(BlockedNumericEngine::new(*block)?),
            EngineSpec::FixedPoint { bits } => Box::new(FixedPointEngine::new(*bits)?),
            EngineSpec::Circuit(config) => Box::new(CircuitEngine::new(*config, seed)),
        })
    }
}

/// A seed-taking engine constructor, as stored in the registry.
pub type EngineCtor = Box<dyn Fn(u64) -> Result<Box<dyn AmcEngine>> + Send + Sync>;

/// A name → constructor registry of engine backends.
///
/// The registry is the extension point the closed `Operand` enum used
/// to block: downstream code registers a backend under a name and every
/// name-driven surface (campaign ladders, `repro engines`, service
/// configuration) can select it without core ever learning the type.
///
/// # Example
///
/// ```
/// use blockamc::engine::{EngineRegistry, EngineSpec, NumericEngine};
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let mut registry = EngineRegistry::builtin();
/// // Re-register a name with custom parameters …
/// registry.register_spec("fixed-point", EngineSpec::FixedPoint { bits: 12 });
/// // … or register a brand-new constructor.
/// registry.register("my-backend", |_seed| Ok(Box::new(NumericEngine::new())));
/// let mut engine = registry.build("my-backend", 7)?;
/// assert_eq!(engine.name(), "numeric");
/// # Ok(())
/// # }
/// ```
pub struct EngineRegistry {
    entries: Vec<(String, EngineCtor)>,
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl EngineRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        EngineRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry of shipped backends, each under its
    /// [`EngineSpec::name`] with default parameters: `numeric`,
    /// `blocked` ([`DEFAULT_BLOCK`]-column panels), `fixed-point`
    /// (8 bits), and `circuit`
    /// ([`CircuitEngineConfig::paper_variation`]).
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        registry.register_spec("numeric", EngineSpec::Numeric);
        registry.register_spec(
            "blocked",
            EngineSpec::Blocked {
                block: DEFAULT_BLOCK,
            },
        );
        registry.register_spec("fixed-point", EngineSpec::FixedPoint { bits: 8 });
        registry.register_spec(
            "circuit",
            EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
        );
        registry
    }

    /// Registers (or replaces) a named constructor.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        ctor: impl Fn(u64) -> Result<Box<dyn AmcEngine>> + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|(existing, _)| *existing != name);
        self.entries.push((name, Box::new(ctor)));
    }

    /// Registers (or replaces) a name building the given spec.
    pub fn register_spec(&mut self, name: impl Into<String>, spec: EngineSpec) {
        self.register(name, move |seed| spec.build(seed));
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Builds the backend registered under `name` with the given seed.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::UnknownEngine`] for an unregistered name;
    /// constructor failures for invalid parameters.
    pub fn build(&self, name: &str, seed: u64) -> Result<Box<dyn AmcEngine>> {
        let Some((_, ctor)) = self.entries.iter().find(|(n, _)| n == name) else {
            return Err(BlockAmcError::UnknownEngine {
                name: name.to_string(),
                known: self.names().collect::<Vec<_>>().join(", "),
            });
        };
        ctor(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::Matrix;

    #[test]
    fn builtin_registry_builds_all_four_backends() {
        let registry = EngineRegistry::builtin();
        let names: Vec<&str> = registry.names().collect();
        assert_eq!(names, ["numeric", "blocked", "fixed-point", "circuit"]);
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap();
        for name in names {
            let mut engine = registry.build(name, 1).unwrap();
            assert_eq!(engine.name(), name);
            let mut op = engine.program(&a).unwrap();
            let x = engine.inv(&mut op, &[1.0, 0.5]).unwrap();
            assert_eq!(x.len(), 2);
            assert!(x.iter().all(|v| v.is_finite()), "{name}");
        }
    }

    #[test]
    fn unknown_names_fail_loudly() {
        let err = EngineRegistry::builtin().build("gpu", 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gpu"), "{msg}");
        assert!(msg.contains("numeric"), "known backends listed: {msg}");
    }

    #[test]
    fn registration_replaces_and_extends() {
        let mut registry = EngineRegistry::builtin();
        assert!(!registry.contains("fp12"));
        registry.register_spec("fp12", EngineSpec::FixedPoint { bits: 12 });
        assert!(registry.contains("fp12"));
        // Replacing keeps a single entry per name.
        registry.register_spec("fp12", EngineSpec::FixedPoint { bits: 14 });
        assert_eq!(registry.names().filter(|n| *n == "fp12").count(), 1);
    }

    #[test]
    fn spec_names_and_circuit_accessor() {
        assert_eq!(EngineSpec::Numeric.name(), "numeric");
        assert_eq!(EngineSpec::Blocked { block: 8 }.name(), "blocked");
        assert_eq!(EngineSpec::FixedPoint { bits: 8 }.name(), "fixed-point");
        let circuit = EngineSpec::Circuit(CircuitEngineConfig::ideal());
        assert_eq!(circuit.name(), "circuit");
        assert!(circuit.circuit().is_some());
        assert!(EngineSpec::Numeric.circuit().is_none());
    }

    #[test]
    fn invalid_spec_parameters_surface_at_build() {
        assert!(EngineSpec::Blocked { block: 0 }.build(0).is_err());
        assert!(EngineSpec::FixedPoint { bits: 1 }.build(0).is_err());
    }
}

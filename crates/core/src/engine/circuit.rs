//! The full analog backend: device + circuit simulation stack.

use std::any::Any;

use amc_circuit::sim::{AnalogSimulator, SimConfig};
use amc_device::array::ProgrammedMatrix;
use amc_device::mapping::MappingConfig;
use amc_device::variation::VariationModel;
use amc_linalg::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::{AmcEngine, EngineStats, Operand, OperandState};
use crate::Result;

/// Operand state of [`CircuitEngine`]: a conductance-programmed
/// crossbar pair.
#[derive(Debug, Clone)]
pub(crate) struct CircuitOperand {
    pub(crate) programmed: ProgrammedMatrix,
}

impl OperandState for CircuitOperand {
    fn clone_boxed(&self) -> Box<dyn OperandState> {
        Box::new(self.clone())
    }

    fn shape(&self) -> (usize, usize) {
        self.programmed.shape()
    }

    fn effective_matrix(&self) -> Matrix {
        self.programmed.effective_matrix()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Configuration of the analog [`CircuitEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CircuitEngineConfig {
    /// Matrix → conductance mapping (G₀, device window, quantization,
    /// faults).
    pub mapping: MappingConfig,
    /// Conductance programming variation.
    pub variation: VariationModel,
    /// Circuit-level simulation configuration (op-amp gain, interconnect,
    /// saturation checking).
    pub sim: SimConfig,
}

impl CircuitEngineConfig {
    /// Fully ideal analog stack — reproduces the numeric engine exactly
    /// (a self-check configuration). The device window is widened to a
    /// mathematical idealization so that no matrix element is clamped or
    /// deselected; the `paper_*` configurations keep the realistic window.
    pub fn ideal() -> Self {
        let mut mapping = MappingConfig::paper_default();
        mapping.g_min = 1e-15;
        mapping.g_max = 1.0;
        CircuitEngineConfig {
            mapping,
            variation: VariationModel::None,
            sim: SimConfig::ideal(),
        }
    }

    /// Finite-gain op-amps, ideal devices and wires — the paper's "ideal
    /// mapping" Fig. 6 configuration.
    pub fn ideal_mapping() -> Self {
        CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::None,
            sim: SimConfig::finite_gain_only(),
        }
    }

    /// Device variation at the paper's 5% level with an otherwise ideal
    /// circuit — the Fig. 7 configuration.
    ///
    /// Interpretation note: the paper states "a standard deviation of
    /// 0.05·G₀, which is achievable by using the write&verify algorithm".
    /// Taken as *full-scale additive* noise on every one of the n² cells,
    /// the induced matrix perturbation has spectral norm `≈ 0.1·√n·G₀`,
    /// which exceeds the smallest eigenvalue of any of the benchmark
    /// matrices beyond n ≈ 128 and makes every solver diverge — far from
    /// the ≤ 0.4 relative errors Fig. 7 reports. The only reading
    /// consistent with those magnitudes is *per-device relative* accuracy
    /// (a write-and-verify loop verifies each cell to within a fraction
    /// of its target), so this configuration uses
    /// [`VariationModel::Proportional`] with `sigma_rel = 0.05`. The
    /// literal full-scale reading remains available as
    /// [`CircuitEngineConfig::absolute_variation`] for the ablation bench.
    pub fn paper_variation() -> Self {
        CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::Proportional { sigma_rel: 0.05 },
            sim: SimConfig::ideal(),
        }
    }

    /// The literal full-scale-additive reading of the paper's variation
    /// (`σ = 0.05·G₀` on every programmed cell). Kept for the noise-model
    /// ablation; see [`CircuitEngineConfig::paper_variation`].
    pub fn absolute_variation() -> Self {
        let mapping = MappingConfig::paper_default();
        CircuitEngineConfig {
            mapping,
            variation: VariationModel::paper_default(mapping.g0),
            sim: SimConfig::ideal(),
        }
    }

    /// Device variation + 1 Ω/segment interconnect — the paper's Fig. 9
    /// configuration (same variation interpretation as
    /// [`CircuitEngineConfig::paper_variation`]).
    pub fn paper_full() -> Self {
        CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::Proportional { sigma_rel: 0.05 },
            sim: SimConfig {
                opamp: amc_circuit::opamp::OpAmpSpec::ideal(),
                interconnect: amc_circuit::interconnect::InterconnectModel::paper_default(),
                check_saturation: false,
                settle_epsilon: amc_circuit::timing::DEFAULT_SETTLE_EPSILON,
            },
        }
    }
}

/// Analog engine: every primitive runs through the device + circuit stack.
#[derive(Debug, Clone)]
pub struct CircuitEngine {
    config: CircuitEngineConfig,
    sim: AnalogSimulator,
    rng: ChaCha8Rng,
    stats: EngineStats,
}

impl CircuitEngine {
    /// Creates the engine with a deterministic RNG seed (used for
    /// variation and fault draws).
    pub fn new(config: CircuitEngineConfig, seed: u64) -> Self {
        CircuitEngine {
            config,
            sim: AnalogSimulator::new(config.sim),
            rng: ChaCha8Rng::seed_from_u64(seed),
            stats: EngineStats::default(),
        }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &CircuitEngineConfig {
        &self.config
    }
}

impl AmcEngine for CircuitEngine {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        let programmed = ProgrammedMatrix::program(
            a,
            &self.config.mapping,
            &self.config.variation,
            &mut self.rng,
        )?;
        self.stats.count_program();
        Ok(Operand::new(CircuitOperand { programmed }))
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        let state = operand.expect_state_mut::<CircuitOperand>("circuit")?;
        let out = self.sim.inv(&state.programmed, b)?;
        self.stats.count_inv();
        self.stats.analog_time_s += out.settle_time_s;
        self.stats.analog_energy_j += out.settle_time_s * out.power_w;
        Ok(out.values)
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        let state = operand.expect_state_mut::<CircuitOperand>("circuit")?;
        let out = self.sim.mvm(&state.programmed, x)?;
        self.stats.count_mvm();
        self.stats.analog_time_s += out.settle_time_s;
        self.stats.analog_energy_j += out.settle_time_s * out.power_w;
        Ok(out.values)
    }

    fn name(&self) -> &'static str {
        "circuit"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn clone_boxed(&self) -> Box<dyn AmcEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::NumericEngine;
    use super::*;
    use amc_linalg::vector;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap()
    }

    #[test]
    fn ideal_circuit_engine_matches_numeric() {
        let a = sample();
        let b = [0.3, -0.2];
        let mut num = NumericEngine::new();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::ideal(), 1);
        let mut opn = num.program(&a).unwrap();
        let mut opc = cir.program(&a).unwrap();
        let xn = num.inv(&mut opn, &b).unwrap();
        let xc = cir.inv(&mut opc, &b).unwrap();
        assert!(vector::approx_eq(&xn, &xc, 1e-9));
        let yn = num.mvm(&mut opn, &b).unwrap();
        let yc = cir.mvm(&mut opc, &b).unwrap();
        assert!(vector::approx_eq(&yn, &yc, 1e-9));
    }

    #[test]
    fn circuit_engine_tracks_time_and_energy() {
        let mut cir = CircuitEngine::new(CircuitEngineConfig::ideal(), 2);
        let mut op = cir.program(&sample()).unwrap();
        let _ = cir.inv(&mut op, &[0.1, 0.1]).unwrap();
        let s = cir.stats();
        assert_eq!(s.inv_ops, 1);
        assert!(s.analog_time_s > 0.0);
        assert!(s.analog_energy_j > 0.0);
    }

    #[test]
    fn variation_makes_engines_differ() {
        let a = sample();
        let b = [0.3, -0.2];
        let mut num = NumericEngine::new();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 3);
        let mut opn = num.program(&a).unwrap();
        let mut opc = cir.program(&a).unwrap();
        let xn = num.inv(&mut opn, &b).unwrap();
        let xc = cir.inv(&mut opc, &b).unwrap();
        let err = amc_linalg::metrics::relative_error(&xn, &xc);
        assert!(err > 1e-4, "variation should perturb, err={err}");
        assert!(err < 0.5, "perturbation should be moderate, err={err}");
    }

    #[test]
    fn operands_persist_their_variation_draw() {
        // The same operand used twice sees the same noisy matrix; two
        // separately programmed operands see different draws.
        let a = sample();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 4);
        let mut op1 = cir.program(&a).unwrap();
        let mut op2 = cir.program(&a).unwrap();
        let b = [0.2, 0.1];
        let x1a = cir.inv(&mut op1, &b).unwrap();
        let x1b = cir.inv(&mut op1, &b).unwrap();
        let x2 = cir.inv(&mut op2, &b).unwrap();
        assert_eq!(x1a, x1b, "same array => identical results");
        assert_ne!(x1a, x2, "different arrays => different draws");
    }

    #[test]
    fn engine_name() {
        assert_eq!(
            CircuitEngine::new(CircuitEngineConfig::ideal(), 0).name(),
            "circuit"
        );
    }
}

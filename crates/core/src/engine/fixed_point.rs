//! The b-bit quantized digital backend.
//!
//! A nonideality rung *between* the exact numeric reference and the
//! full analog stack: matrices, inputs, and outputs are snapped to
//! signed `bits`-bit fixed-point grids (per-object full-scale range),
//! but the solve itself is an exact LU on the quantized matrix. This
//! isolates the paper's quantization study — how many levels does
//! BlockAMC actually need? — from every other analog nonideality.

use std::any::Any;

use amc_linalg::{lu::LuFactor, Matrix};

use super::{AmcEngine, EngineStats, Operand, OperandState};
use crate::{BlockAmcError, Result};

/// Operand state of [`FixedPointEngine`]: the quantized matrix with a
/// cached LU factorization of it.
#[derive(Debug, Clone)]
pub(crate) struct FixedPointOperand {
    pub(crate) a_q: Matrix,
    pub(crate) lu: Option<LuFactor>,
}

impl OperandState for FixedPointOperand {
    fn clone_boxed(&self) -> Box<dyn OperandState> {
        Box::new(self.clone())
    }

    fn shape(&self) -> (usize, usize) {
        self.a_q.shape()
    }

    fn effective_matrix(&self) -> Matrix {
        self.a_q.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Digital engine computing on `bits`-bit fixed-point values.
///
/// Programming snaps every matrix element to the signed grid spanned by
/// the matrix's own full scale (`±max|aᵢⱼ|`, `2^(bits−1) − 1` positive
/// levels); each INV/MVM likewise quantizes its input and output
/// vectors on their own full-scale grids. As `bits` grows the engine
/// converges to [`super::NumericEngine`] (pinned by proptest in
/// `tests/engine_backends.rs`).
#[derive(Debug, Clone)]
pub struct FixedPointEngine {
    bits: u32,
    stats: EngineStats,
    /// Reused input-quantization buffer: `inv_into`/`mvm_into` quantize
    /// the incoming vector here instead of allocating per primitive.
    scratch: Vec<f64>,
}

impl FixedPointEngine {
    /// Creates the engine with the given word length.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] unless `2 <= bits <= 52` (above
    /// 52 bits the grid outresolves the `f64` mantissa and the engine
    /// would silently degenerate to the numeric one).
    pub fn new(bits: u32) -> Result<Self> {
        if !(2..=52).contains(&bits) {
            return Err(BlockAmcError::config(format!(
                "fixed-point word length must be in 2..=52 bits, got {bits}"
            )));
        }
        Ok(FixedPointEngine {
            bits,
            stats: EngineStats::default(),
            scratch: Vec::new(),
        })
    }

    /// The configured word length.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Grid step for a full-scale magnitude `scale` (0 when the data is
    /// all zero — nothing to resolve).
    fn step(&self, scale: f64) -> f64 {
        if scale == 0.0 {
            0.0
        } else {
            scale / ((1u64 << (self.bits - 1)) - 1) as f64
        }
    }

    fn quantize_slice_into(&self, values: &[f64], out: &mut Vec<f64>) {
        let scale = values.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let step = self.step(scale);
        out.clear();
        out.extend(values.iter().map(|&v| quantize(v, step)));
    }

    fn quantize_in_place(&self, values: &mut [f64]) {
        let scale = values.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let step = self.step(scale);
        for v in values {
            *v = quantize(*v, step);
        }
    }
}

/// Snaps `v` to the grid of spacing `step` (`step == 0` passes through:
/// an all-zero object has nothing to resolve).
fn quantize(v: f64, step: f64) -> f64 {
    if step == 0.0 {
        v
    } else {
        (v / step).round() * step
    }
}

impl AmcEngine for FixedPointEngine {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        let step = self.step(a.max_abs());
        let a_q = a.map(|v| quantize(v, step));
        self.stats.count_program();
        Ok(Operand::new(FixedPointOperand { a_q, lu: None }))
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.inv_into(operand, b, &mut x)?;
        Ok(x)
    }

    fn inv_into(&mut self, operand: &mut Operand, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        // The engine-held scratch buffer carries the quantized input so
        // the batch hot path allocates nothing (taken/restored around
        // the solve to satisfy the borrow checker; an error path merely
        // forfeits the reuse, never correctness).
        let mut b_q = std::mem::take(&mut self.scratch);
        self.quantize_slice_into(b, &mut b_q);
        let state = operand.expect_state_mut::<FixedPointOperand>("fixed-point")?;
        if state.lu.is_none() {
            state.lu = Some(LuFactor::new(&state.a_q)?);
        }
        let lu = state.lu.as_ref().expect("factorization was just installed");
        out.resize(lu.dim(), 0.0);
        let solved = lu.solve_into(&b_q, out);
        self.scratch = b_q;
        solved?;
        amc_linalg::vector::neg_in_place(out);
        self.quantize_in_place(out);
        self.stats.count_inv();
        Ok(())
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = Vec::new();
        self.mvm_into(operand, x, &mut y)?;
        Ok(y)
    }

    fn mvm_into(&mut self, operand: &mut Operand, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let mut x_q = std::mem::take(&mut self.scratch);
        self.quantize_slice_into(x, &mut x_q);
        let state = operand.expect_state_mut::<FixedPointOperand>("fixed-point")?;
        out.resize(state.a_q.rows(), 0.0);
        let multiplied = state.a_q.matvec_into(&x_q, out);
        self.scratch = x_q;
        multiplied?;
        amc_linalg::vector::neg_in_place(out);
        self.quantize_in_place(out);
        self.stats.count_mvm();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "fixed-point"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn clone_boxed(&self) -> Box<dyn AmcEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::NumericEngine;
    use super::*;
    use amc_linalg::{generate, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn word_length_validation() {
        assert!(FixedPointEngine::new(1).is_err());
        assert!(FixedPointEngine::new(53).is_err());
        assert!(FixedPointEngine::new(2).is_ok());
        assert_eq!(FixedPointEngine::new(8).unwrap().bits(), 8);
    }

    #[test]
    fn coarse_bits_perturb_fine_bits_converge() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = generate::wishart_default(12, &mut rng).unwrap();
        let b = generate::random_vector(12, &mut rng);
        let mut reference = NumericEngine::new();
        let mut op_ref = reference.program(&a).unwrap();
        let x_ref = reference.inv(&mut op_ref, &b).unwrap();

        let err_at = |bits: u32| {
            let mut e = FixedPointEngine::new(bits).unwrap();
            let mut op = e.program(&a).unwrap();
            match e.inv(&mut op, &b) {
                Ok(x) => metrics::relative_error(&x_ref, &x),
                Err(_) => f64::INFINITY,
            }
        };
        let coarse = err_at(6);
        let fine = err_at(40);
        assert!(coarse > 1e-4, "6-bit solve must deviate: {coarse}");
        assert!(fine < 1e-9, "40-bit solve must match numeric: {fine}");
    }

    #[test]
    fn quantization_snaps_to_the_grid() {
        let mut e = FixedPointEngine::new(3).unwrap();
        // 3 bits: positive levels at step = max/3.
        let a = Matrix::from_rows(&[&[3.0, 1.4], &[0.4, 2.0]]).unwrap();
        let op = e.program(&a).unwrap();
        let eff = op.effective_matrix();
        assert_eq!(eff.get(0, 0), Some(3.0));
        assert_eq!(eff.get(0, 1), Some(1.0));
        assert_eq!(eff.get(1, 0), Some(0.0));
        assert_eq!(eff.get(1, 1), Some(2.0));
    }

    #[test]
    fn input_quantization_buffer_is_reused() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = generate::wishart_default(8, &mut rng).unwrap();
        let mut e = FixedPointEngine::new(12).unwrap();
        let mut op = e.program(&a).unwrap();
        let mut out = Vec::new();
        // Warm both the scratch buffer and the output buffer.
        let b0 = generate::random_vector(8, &mut rng);
        e.inv_into(&mut op, &b0, &mut out).unwrap();
        let scratch_ptr = e.scratch.as_ptr();
        for _ in 0..3 {
            let b = generate::random_vector(8, &mut rng);
            e.inv_into(&mut op, &b, &mut out).unwrap();
            e.mvm_into(&mut op, &b, &mut out).unwrap();
        }
        assert_eq!(e.scratch.as_ptr(), scratch_ptr, "scratch must be reused");
    }

    #[test]
    fn zero_matrix_survives_programming() {
        let mut e = FixedPointEngine::new(8).unwrap();
        let op = e.program(&Matrix::zeros(3, 3)).unwrap();
        assert!(op.effective_matrix().is_zero());
    }

    #[test]
    fn engine_name() {
        assert_eq!(FixedPointEngine::new(8).unwrap().name(), "fixed-point");
    }
}

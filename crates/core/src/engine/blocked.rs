//! Cache-blocked digital backend with buffer-reusing hot paths.

use std::any::Any;

use amc_linalg::{lu::LuFactor, Matrix};

use super::{AmcEngine, EngineStats, Operand, OperandState};
use crate::{BlockAmcError, Result};

/// Default LU panel width of [`BlockedNumericEngine`]: 32 columns of
/// `f64` is 256 bytes per pivot-row panel — comfortably L1-resident
/// alongside the streamed trailing rows.
pub const DEFAULT_BLOCK: usize = 32;

/// Operand state of [`BlockedNumericEngine`]: the exact matrix with a
/// lazily built *panel-tiled* LU factorization.
#[derive(Debug, Clone)]
pub(crate) struct BlockedOperand {
    pub(crate) a: Matrix,
    pub(crate) lu: Option<LuFactor>,
    pub(crate) block: usize,
}

impl OperandState for BlockedOperand {
    fn clone_boxed(&self) -> Box<dyn OperandState> {
        Box::new(self.clone())
    }

    fn shape(&self) -> (usize, usize) {
        self.a.shape()
    }

    fn effective_matrix(&self) -> Matrix {
        self.a.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Exact digital engine tuned for batch throughput: the factorization
/// runs the cache-blocked LU kernel ([`LuFactor::new_blocked`]) and the
/// primitives overwrite caller-owned buffers ([`AmcEngine::inv_into`] /
/// [`AmcEngine::mvm_into`]) instead of allocating per operation.
///
/// **Bit-identical to [`super::NumericEngine`]** at every block size:
/// the blocked elimination performs the same floating-point operations
/// in the same per-element order (pinned by
/// `tests/solver_equivalence.rs`), so this backend is a pure hot-path
/// substitution — swap it in via [`super::EngineSpec::Blocked`] and
/// nothing downstream can tell except the clock.
#[derive(Debug, Clone)]
pub struct BlockedNumericEngine {
    block: usize,
    stats: EngineStats,
}

impl Default for BlockedNumericEngine {
    fn default() -> Self {
        BlockedNumericEngine {
            block: DEFAULT_BLOCK,
            stats: EngineStats::default(),
        }
    }
}

impl BlockedNumericEngine {
    /// Creates the engine with the given LU panel width.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for `block == 0`.
    pub fn new(block: usize) -> Result<Self> {
        if block == 0 {
            return Err(BlockAmcError::config(
                "blocked engine needs a panel width of at least 1",
            ));
        }
        Ok(BlockedNumericEngine {
            block,
            stats: EngineStats::default(),
        })
    }

    /// The configured LU panel width.
    pub fn block(&self) -> usize {
        self.block
    }
}

impl AmcEngine for BlockedNumericEngine {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        self.stats.count_program();
        Ok(Operand::new(BlockedOperand {
            a: a.clone(),
            lu: None,
            block: self.block,
        }))
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.inv_into(operand, b, &mut x)?;
        Ok(x)
    }

    fn inv_into(&mut self, operand: &mut Operand, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let state = operand.expect_state_mut::<BlockedOperand>("blocked")?;
        if state.lu.is_none() {
            state.lu = Some(LuFactor::new_blocked(&state.a, state.block)?);
        }
        let lu = state.lu.as_ref().expect("factorization was just installed");
        out.resize(lu.dim(), 0.0);
        lu.solve_into(b, out)?;
        amc_linalg::vector::neg_in_place(out);
        self.stats.count_inv();
        Ok(())
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = Vec::new();
        self.mvm_into(operand, x, &mut y)?;
        Ok(y)
    }

    fn mvm_into(&mut self, operand: &mut Operand, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let state = operand.expect_state_mut::<BlockedOperand>("blocked")?;
        out.resize(state.a.rows(), 0.0);
        state.a.matvec_into(x, out)?;
        amc_linalg::vector::neg_in_place(out);
        self.stats.count_mvm();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "blocked"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn clone_boxed(&self) -> Box<dyn AmcEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::NumericEngine;
    use super::*;
    use amc_linalg::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_zero_panel_width() {
        assert!(BlockedNumericEngine::new(0).is_err());
        assert_eq!(BlockedNumericEngine::default().block(), DEFAULT_BLOCK);
    }

    #[test]
    fn bit_identical_to_numeric_engine_at_any_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = generate::wishart_default(13, &mut rng).unwrap();
        let b = generate::random_vector(13, &mut rng);
        let mut reference = NumericEngine::new();
        let mut op_ref = reference.program(&a).unwrap();
        let x_ref = reference.inv(&mut op_ref, &b).unwrap();
        let y_ref = reference.mvm(&mut op_ref, &b).unwrap();
        for block in [1usize, 2, 5, 13, 100] {
            let mut e = BlockedNumericEngine::new(block).unwrap();
            let mut op = e.program(&a).unwrap();
            assert_eq!(e.inv(&mut op, &b).unwrap(), x_ref, "block={block}");
            assert_eq!(e.mvm(&mut op, &b).unwrap(), y_ref, "block={block}");
        }
    }

    #[test]
    fn buffers_are_reused_without_reallocation() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = generate::wishart_default(8, &mut rng).unwrap();
        let mut e = BlockedNumericEngine::default();
        let mut op = e.program(&a).unwrap();
        let mut out = Vec::with_capacity(8);
        let base_ptr = out.as_ptr();
        for _ in 0..3 {
            let b = generate::random_vector(8, &mut rng);
            e.inv_into(&mut op, &b, &mut out).unwrap();
            assert_eq!(out.len(), 8);
        }
        assert_eq!(out.as_ptr(), base_ptr, "no reallocation across solves");
        assert_eq!(e.stats().inv_ops, 3);
        assert_eq!(e.stats().program_ops, 1);
    }

    #[test]
    fn engine_name() {
        assert_eq!(BlockedNumericEngine::default().name(), "blocked");
    }
}

//! The BlockAMC hardware macro: clock phases, reconfigurable topology,
//! and S&H pipelining (paper §III.B, Fig. 4).
//!
//! The macro holds four crossbar arrays (`A1`, `A2`, `A3`, `A4s`) and a
//! *single shared column of op-amps*. Transmission gates select one of
//! five circuit topologies per clock phase (`S0`–`S4`); each phase
//! executes one INV or MVM. Two sample-and-hold banks ping-pong between
//! "being written by this step" and "feeding the next step", which lets a
//! subsequent problem enter the macro while the previous one drains —
//! the pipelining the paper credits for the throughput improvement.

use crate::Result;

/// The five clock phases of the one-stage macro controller (Fig. 4(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockPhase {
    /// Phase 0 — step 1 of the algorithm.
    S0,
    /// Phase 1 — step 2.
    S1,
    /// Phase 2 — step 3.
    S2,
    /// Phase 3 — step 4.
    S3,
    /// Phase 4 — step 5.
    S4,
}

impl ClockPhase {
    /// All phases in execution order.
    pub const ALL: [ClockPhase; 5] = [
        ClockPhase::S0,
        ClockPhase::S1,
        ClockPhase::S2,
        ClockPhase::S3,
        ClockPhase::S4,
    ];

    /// Phase index (0–4).
    pub fn index(&self) -> usize {
        match self {
            ClockPhase::S0 => 0,
            ClockPhase::S1 => 1,
            ClockPhase::S2 => 2,
            ClockPhase::S3 => 3,
            ClockPhase::S4 => 4,
        }
    }
}

/// Which crossbar array a phase connects to the shared op-amps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayId {
    /// The `A1` block array.
    A1,
    /// The `A2` block array.
    A2,
    /// The `A3` block array.
    A3,
    /// The `A4s` (Schur complement) block array.
    A4s,
}

/// The operation a phase performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroOp {
    /// Matrix inversion (feedback topology).
    Inv,
    /// Matrix-vector multiplication (TIA topology).
    Mvm,
}

/// Where a phase's input vector comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalSource {
    /// The DAC (external digital input).
    Dac,
    /// The sample-and-hold bank holding the previous step's result.
    SampleHold,
    /// Sum of DAC and S&H contributions (step 3 adds `−g` and `g_t` in
    /// the analog domain).
    DacPlusSampleHold,
}

/// Where a phase's output vector goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalSink {
    /// The other sample-and-hold bank (analog cascade).
    SampleHold,
    /// The ADC (part of the solution leaves the macro).
    Adc,
    /// Both: the value is part of the solution *and* feeds the next step
    /// (step 3's `z`).
    AdcAndSampleHold,
}

/// One scheduled operation of the macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledOp {
    /// The clock phase.
    pub phase: ClockPhase,
    /// INV or MVM.
    pub op: MacroOp,
    /// The array switched in by the transmission gates.
    pub array: ArrayId,
    /// Input routing.
    pub input: SignalSource,
    /// Output routing.
    pub output: SignalSink,
}

/// The one-stage macro schedule: the five topologies of Fig. 4(a) in
/// clock order.
pub fn one_stage_schedule() -> [ScheduledOp; 5] {
    [
        ScheduledOp {
            phase: ClockPhase::S0,
            op: MacroOp::Inv,
            array: ArrayId::A1,
            input: SignalSource::Dac,
            output: SignalSink::SampleHold,
        },
        ScheduledOp {
            phase: ClockPhase::S1,
            op: MacroOp::Mvm,
            array: ArrayId::A3,
            input: SignalSource::SampleHold,
            output: SignalSink::SampleHold,
        },
        ScheduledOp {
            phase: ClockPhase::S2,
            op: MacroOp::Inv,
            array: ArrayId::A4s,
            input: SignalSource::DacPlusSampleHold,
            output: SignalSink::AdcAndSampleHold,
        },
        ScheduledOp {
            phase: ClockPhase::S3,
            op: MacroOp::Mvm,
            array: ArrayId::A2,
            input: SignalSource::SampleHold,
            output: SignalSink::SampleHold,
        },
        ScheduledOp {
            phase: ClockPhase::S4,
            op: MacroOp::Inv,
            array: ArrayId::A1,
            input: SignalSource::DacPlusSampleHold,
            output: SignalSink::Adc,
        },
    ]
}

/// Timing of the macro given per-phase analog settle times and the
/// converter (DAC/ADC) conversion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroTiming {
    /// Clock period: the slowest phase sets it (all phases share one
    /// clock, Fig. 4(b)).
    pub cycle_s: f64,
    /// Latency of one solve (5 cycles).
    pub latency_s: f64,
    /// Throughput without S&H double-buffering: conversions serialize
    /// with the analog phases.
    pub throughput_unpipelined: f64,
    /// Throughput with the two S&H banks: conversion overlaps analog
    /// settling, so back-to-back problems are spaced by 5 analog cycles.
    pub throughput_pipelined: f64,
}

impl MacroTiming {
    /// Computes macro timing.
    ///
    /// `op_settle_s` are the five per-phase analog settle times;
    /// `conversion_s` is the DAC/ADC conversion time added on the phases
    /// that touch the digital boundary.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BlockAmcError::InvalidConfig`] if any time is
    /// negative or not finite.
    pub fn from_phase_times(op_settle_s: [f64; 5], conversion_s: f64) -> Result<Self> {
        if op_settle_s
            .iter()
            .chain(std::iter::once(&conversion_s))
            .any(|t| !t.is_finite() || *t < 0.0)
        {
            return Err(crate::BlockAmcError::config(
                "phase times must be finite and non-negative",
            ));
        }
        let analog_cycle = op_settle_s.iter().copied().fold(0.0_f64, f64::max);
        let serial_cycle = analog_cycle + conversion_s;
        let cycle_s = analog_cycle;
        Ok(MacroTiming {
            cycle_s,
            latency_s: 5.0 * serial_cycle,
            throughput_unpipelined: if serial_cycle > 0.0 {
                1.0 / (5.0 * serial_cycle)
            } else {
                f64::INFINITY
            },
            throughput_pipelined: if analog_cycle > 0.0 {
                1.0 / (5.0 * analog_cycle)
            } else {
                f64::INFINITY
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_matches_algorithm_structure() {
        let s = one_stage_schedule();
        assert_eq!(s.len(), 5);
        // INV-MVM-INV-MVM-INV cadence.
        assert_eq!(s[0].op, MacroOp::Inv);
        assert_eq!(s[1].op, MacroOp::Mvm);
        assert_eq!(s[2].op, MacroOp::Inv);
        assert_eq!(s[3].op, MacroOp::Mvm);
        assert_eq!(s[4].op, MacroOp::Inv);
        // A1 used twice — first and last.
        assert_eq!(s[0].array, ArrayId::A1);
        assert_eq!(s[4].array, ArrayId::A1);
        // DAC feeds steps 1 and 3; ADC reads steps 3 and 5.
        assert_eq!(s[0].input, SignalSource::Dac);
        assert_eq!(s[2].input, SignalSource::DacPlusSampleHold);
        assert_eq!(s[2].output, SignalSink::AdcAndSampleHold);
        assert_eq!(s[4].output, SignalSink::Adc);
        // Phases are in order.
        for (i, op) in s.iter().enumerate() {
            assert_eq!(op.phase.index(), i);
        }
    }

    #[test]
    fn each_phase_uses_one_array() {
        let s = one_stage_schedule();
        let arrays: Vec<ArrayId> = s.iter().map(|o| o.array).collect();
        assert_eq!(
            arrays,
            vec![
                ArrayId::A1,
                ArrayId::A3,
                ArrayId::A4s,
                ArrayId::A2,
                ArrayId::A1
            ]
        );
    }

    #[test]
    fn timing_cycle_is_slowest_phase() {
        let t = MacroTiming::from_phase_times([1e-6, 2e-6, 5e-6, 2e-6, 1e-6], 1e-6).unwrap();
        assert_eq!(t.cycle_s, 5e-6);
        assert!((t.latency_s - 5.0 * 6e-6).abs() < 1e-18);
    }

    #[test]
    fn pipelining_improves_throughput() {
        let t = MacroTiming::from_phase_times([1e-6; 5], 0.5e-6).unwrap();
        assert!(t.throughput_pipelined > t.throughput_unpipelined);
        // Pipelined: 1/(5·1µs) = 200k solves/s.
        assert!((t.throughput_pipelined - 2e5).abs() < 1.0);
    }

    #[test]
    fn invalid_times_rejected() {
        assert!(MacroTiming::from_phase_times([1e-6, -1.0, 0.0, 0.0, 0.0], 0.0).is_err());
        assert!(MacroTiming::from_phase_times([f64::NAN; 5], 0.0).is_err());
    }

    #[test]
    fn all_phases_listed() {
        assert_eq!(ClockPhase::ALL.len(), 5);
        assert_eq!(ClockPhase::ALL[3], ClockPhase::S3);
    }
}

//! High-level solver facade.
//!
//! [`BlockAmcSolver`] bundles an engine, a solver architecture
//! ([`Stages`]), and a signal-path configuration, and exposes a single
//! `solve` call. Every architecture below executes on the same
//! recursive cascade core ([`crate::multi_stage::run_cascade`]); they
//! differ only in tree depth and signal path. The paper's three
//! compared solvers map to:
//!
//! * `Stages::Original` — the baseline: one INV circuit with a single
//!   full-size array,
//! * `Stages::One` — the one-stage BlockAMC macro (Fig. 4),
//! * `Stages::Two` — the two-stage solver (Fig. 5),
//! * `Stages::Multi(d)` — the depth-`d` generalization.

use amc_linalg::{vector, Matrix};

use crate::converter::IoConfig;
use crate::engine::{AmcEngine, EngineStats};
use crate::one_stage::StepRecord;
use crate::{multi_stage, one_stage, two_stage, BlockAmcError, Result};

/// Solver architecture selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stages {
    /// Single full-size INV circuit (the paper's "original AMC" baseline).
    Original,
    /// One-stage BlockAMC: one partition, five steps on half-size arrays.
    One,
    /// Two-stage BlockAMC: recursive partition, sixteen quarter-size
    /// arrays.
    Two,
    /// Multi-stage BlockAMC at the given depth (`Multi(1)` ≈ `One` without
    /// the converter boundary details; see [`crate::multi_stage`]).
    Multi(usize),
}

/// Result of a facade solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The recovered solution of `A·x = b`.
    pub x: Vec<f64>,
    /// The architecture used.
    pub stages: Stages,
    /// Engine name (`"numeric"` or `"circuit"`).
    pub engine: &'static str,
    /// One-stage step trace when `stages == Stages::One`.
    pub trace: Option<Vec<StepRecord>>,
    /// Engine cost counters accumulated during this solve.
    pub stats_delta: EngineStats,
}

/// Engine + architecture + signal path, ready to solve linear systems.
///
/// # Example
///
/// ```
/// use blockamc::engine::NumericEngine;
/// use blockamc::solver::{BlockAmcSolver, Stages};
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]])?;
/// let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
/// let report = solver.solve(&a, &[4.0, 3.0])?;
/// assert!((report.x[0] - 1.0).abs() < 1e-10);
/// assert!((report.x[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockAmcSolver<E: AmcEngine> {
    engine: E,
    stages: Stages,
    io: IoConfig,
}

impl<E: AmcEngine> BlockAmcSolver<E> {
    /// Creates a solver with an ideal signal path.
    pub fn new(engine: E, stages: Stages) -> Self {
        BlockAmcSolver {
            engine,
            stages,
            io: IoConfig::ideal(),
        }
    }

    /// Sets the DAC/ADC/S&H configuration.
    pub fn with_io(mut self, io: IoConfig) -> Self {
        self.io = io;
        self
    }

    /// Borrows the engine (e.g. to read [`AmcEngine::stats`]).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The configured architecture.
    pub fn stages(&self) -> Stages {
        self.stages
    }

    /// Solves `A·x = b`.
    ///
    /// Arrays are (re)programmed on every call — each call models a fresh
    /// hardware deployment, which is what the paper's Monte-Carlo
    /// accuracy sweeps need. To amortize programming across many
    /// right-hand sides, drive the [`crate::one_stage`] /
    /// [`crate::two_stage`] module APIs directly.
    ///
    /// # Errors
    ///
    /// Shape mismatches, partitioning/Schur failures, and engine errors.
    pub fn solve(&mut self, a: &Matrix, b: &[f64]) -> Result<SolveReport> {
        if !a.is_square() {
            return Err(BlockAmcError::ShapeMismatch {
                op: "solve (square matrix required)",
                expected: a.rows(),
                got: a.cols(),
            });
        }
        if b.len() != a.rows() {
            return Err(BlockAmcError::ShapeMismatch {
                op: "solve",
                expected: a.rows(),
                got: b.len(),
            });
        }
        let before = self.engine.stats();
        let (x, trace) = match self.stages {
            Stages::Original => {
                // Single INV circuit: DAC in, one INV, ADC out.
                let mut op = self.engine.program(a)?;
                let input = self.io.apply_dac(b);
                let neg_x = self.engine.inv(&mut op, &input)?;
                (vector::neg(&self.io.apply_adc(&neg_x)), None)
            }
            Stages::One => {
                let mut prep = one_stage::prepare_matrix(&mut self.engine, a)?;
                let sol = one_stage::solve(&mut self.engine, &mut prep, b, &self.io)?;
                (sol.x, Some(sol.trace))
            }
            Stages::Two => {
                let mut prep = two_stage::prepare(&mut self.engine, a)?;
                let sol = two_stage::solve(&mut self.engine, &mut prep, b, &self.io)?;
                (sol.x, None)
            }
            Stages::Multi(depth) => {
                let mut prep = multi_stage::prepare(&mut self.engine, a, depth)?;
                (multi_stage::solve(&mut self.engine, &mut prep, b)?, None)
            }
        };
        let after = self.engine.stats();
        Ok(SolveReport {
            x,
            stages: self.stages,
            engine: self.engine.name(),
            trace,
            stats_delta: EngineStats {
                program_ops: after.program_ops - before.program_ops,
                inv_ops: after.inv_ops - before.inv_ops,
                mvm_ops: after.mvm_ops - before.mvm_ops,
                analog_time_s: after.analog_time_s - before.analog_time_s,
                analog_energy_j: after.analog_energy_j - before.analog_energy_j,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
    use amc_linalg::{generate, lu, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn all_architectures_agree_with_numeric_engine() {
        let (a, b) = workload(16, 1);
        let x_ref = lu::solve(&a, &b).unwrap();
        for stages in [Stages::Original, Stages::One, Stages::Two, Stages::Multi(3)] {
            let mut solver = BlockAmcSolver::new(NumericEngine::new(), stages);
            let report = solver.solve(&a, &b).unwrap();
            assert!(
                metrics::relative_error(&x_ref, &report.x) < 1e-8,
                "{stages:?} diverged"
            );
            assert_eq!(report.stages, stages);
            assert_eq!(report.engine, "numeric");
        }
    }

    #[test]
    fn trace_only_for_one_stage() {
        let (a, b) = workload(8, 2);
        let mut s1 = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        assert!(s1.solve(&a, &b).unwrap().trace.is_some());
        let mut s0 = BlockAmcSolver::new(NumericEngine::new(), Stages::Original);
        assert!(s0.solve(&a, &b).unwrap().trace.is_none());
    }

    #[test]
    fn stats_delta_counts_operations() {
        let (a, b) = workload(8, 3);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        let r1 = solver.solve(&a, &b).unwrap();
        assert_eq!(r1.stats_delta.inv_ops, 3);
        assert_eq!(r1.stats_delta.mvm_ops, 2);
        // Second solve has its own delta, not cumulative.
        let r2 = solver.solve(&a, &b).unwrap();
        assert_eq!(r2.stats_delta.inv_ops, 3);
    }

    #[test]
    fn original_vs_blockamc_accuracy_under_variation() {
        // With the same seed and variation level, both should be in the
        // same error ballpark; this is the comparison the sweeps run at
        // scale (BlockAMC wins on average, not necessarily per-draw).
        let (a, b) = workload(32, 4);
        let x_ref = lu::solve(&a, &b).unwrap();
        let mut orig = BlockAmcSolver::new(
            CircuitEngine::new(CircuitEngineConfig::paper_variation(), 7),
            Stages::Original,
        );
        let mut blk = BlockAmcSolver::new(
            CircuitEngine::new(CircuitEngineConfig::paper_variation(), 7),
            Stages::One,
        );
        let e_orig = metrics::relative_error(&x_ref, &orig.solve(&a, &b).unwrap().x);
        let e_blk = metrics::relative_error(&x_ref, &blk.solve(&a, &b).unwrap().x);
        // Condition-number amplification of the 5% conductance noise makes
        // absolute values draw-dependent; only coarse bounds are asserted.
        assert!(e_orig > 1e-6 && e_orig < 2.0, "e_orig={e_orig}");
        assert!(e_blk > 1e-6 && e_blk < 2.0, "e_blk={e_blk}");
    }

    #[test]
    fn shape_validation() {
        let (a, _) = workload(8, 5);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        assert!(solver.solve(&a, &[1.0; 3]).is_err());
        assert!(solver.solve(&Matrix::zeros(2, 3), &[1.0, 1.0]).is_err());
    }

    #[test]
    fn io_config_is_applied() {
        let (a, b) = workload(8, 6);
        let x_ref = lu::solve(&a, &b).unwrap();
        let mut ideal = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        let mut coarse = BlockAmcSolver::new(NumericEngine::new(), Stages::One).with_io(IoConfig {
            dac: Some(crate::converter::Converter::new(4, 1.0).unwrap()),
            adc: Some(crate::converter::Converter::new(4, 1.0).unwrap()),
            sh_droop: 0.0,
        });
        let e_ideal = metrics::relative_error(&x_ref, &ideal.solve(&a, &b).unwrap().x);
        let e_coarse = metrics::relative_error(&x_ref, &coarse.solve(&a, &b).unwrap().x);
        assert!(e_ideal < 1e-9);
        assert!(e_coarse > 1e-3, "4-bit converters must hurt: {e_coarse}");
    }
}

//! High-level solver facade.
//!
//! The facade is built in two steps. A [`SolverConfig`] — created
//! through [`SolverConfig::builder`] — selects the architecture
//! ([`Stages`]), the per-level signal path ([`SignalPlan`]), the split
//! rule ([`SplitRule`]), and trace capture. Binding a config to an
//! engine yields a [`BlockAmcSolver`], whose [`prepare`] programs every
//! array of the partition tree **exactly once** and returns a
//! [`PreparedSolver`] that solves any number of right-hand sides against
//! those arrays — the paper's §III.B amortization: matrices are
//! programmed into nonvolatile arrays once, then reused.
//!
//! Every architecture executes on the same recursive cascade core
//! (`run_cascade` in [`crate::multi_stage`]); they differ only in tree
//! depth and signal path. The paper's three compared solvers map to:
//!
//! * `Stages::Original` — the baseline: one INV circuit with a single
//!   full-size array,
//! * `Stages::One` — the one-stage BlockAMC macro (Fig. 4),
//! * `Stages::Two` — the two-stage solver (Fig. 5),
//! * `Stages::Multi(d)` — the depth-`d` generalization, with a
//!   paper-style signal plan (`Bus` hops above one `Macro` level) by
//!   default.
//!
//! [`prepare`]: BlockAmcSolver::prepare

use amc_linalg::Matrix;
use amc_obs::Recorder;

use crate::converter::IoConfig;
use crate::engine::{AmcEngine, EngineStats};
use crate::multi_stage::{self, PreparedMultiStage};
use crate::one_stage::StepRecord;
use crate::{BlockAmcError, Result};

pub use crate::multi_stage::{LevelIo, PartitionPlan, SignalPlan, SplitRule};
pub use crate::split_search::SplitSearchOptions;

/// Solver architecture selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Stages {
    /// Single full-size INV circuit (the paper's "original AMC" baseline).
    Original,
    /// One-stage BlockAMC: one partition, five steps on half-size arrays.
    One,
    /// Two-stage BlockAMC: recursive partition, sixteen quarter-size
    /// arrays.
    Two,
    /// Multi-stage BlockAMC at the given depth (`Multi(1)` is the
    /// one-stage tree with natural-size MVM blocks; see
    /// [`crate::multi_stage`]). `Multi(0)` is rejected by validation —
    /// use [`Stages::Original`] for a single full-size array.
    Multi(usize),
}

impl Stages {
    /// The partition-tree depth of this architecture.
    pub fn depth(&self) -> usize {
        match self {
            Stages::Original => 0,
            Stages::One => 1,
            Stages::Two => 2,
            Stages::Multi(d) => *d,
        }
    }
}

/// Complete configuration of a [`BlockAmcSolver`], independent of the
/// engine: architecture, per-level signal path, split rule, and trace
/// capture. Build one with [`SolverConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    stages: Stages,
    signal: SignalPlan,
    split: SplitRule,
    capture_trace: bool,
}

impl SolverConfig {
    /// Starts building a configuration (defaults: [`Stages::One`], an
    /// ideal signal path in the architecture's paper layout, midpoint
    /// splits, trace capture on).
    pub fn builder() -> SolverConfigBuilder {
        SolverConfigBuilder::default()
    }

    /// The architecture's default signal plan: the paper layout
    /// ([`SignalPlan::paper`]) at the architecture's depth, carrying
    /// `io` at every level.
    pub fn default_signal_plan(stages: Stages, io: IoConfig) -> SignalPlan {
        SignalPlan::paper(stages.depth(), io)
    }

    /// The configured architecture.
    pub fn stages(&self) -> Stages {
        self.stages
    }

    /// The per-level signal-path plan.
    pub fn signal_plan(&self) -> &SignalPlan {
        &self.signal
    }

    /// The split-index rule applied at every partition node.
    pub fn split_rule(&self) -> SplitRule {
        self.split
    }

    /// Whether solves record per-step signal traces.
    pub fn capture_trace(&self) -> bool {
        self.capture_trace
    }

    /// Validates the size-independent parts of the configuration.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for `Stages::Multi(0)`, an
    /// invalid converter configuration in the signal plan, or a plan
    /// with non-`Pure` entries deeper than the architecture's cascade
    /// (which would otherwise be silently ignored).
    pub fn validate(&self) -> Result<()> {
        if self.stages == Stages::Multi(0) {
            return Err(BlockAmcError::config(
                "Stages::Multi(0) has no cascade; use Stages::Original \
                 for a single full-size array",
            ));
        }
        // Cascade levels run 0..depth (a depth-0 tree still honours a
        // level-0 entry as its digital boundary); a converter entry
        // past the deepest cascade level would never execute.
        let deepest_entry = self
            .signal
            .levels()
            .iter()
            .rposition(|level| *level != LevelIo::Pure)
            .map_or(0, |i| i + 1);
        let cascade_levels = self.stages.depth().max(1);
        if deepest_entry > cascade_levels {
            return Err(BlockAmcError::config(format!(
                "signal plan configures level {} but a {:?} solver has \
                 only {cascade_levels} cascade level(s); the deeper \
                 entries would be silently ignored",
                deepest_entry - 1,
                self.stages,
            )));
        }
        self.signal.validate()
    }

    /// Validates the configuration against a concrete problem size.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] when the architecture cannot
    /// partition an `n`-sized system (e.g. depth exceeding `log2(n)`).
    pub fn validate_for_size(&self, n: usize) -> Result<()> {
        self.validate()?;
        if n == 0 {
            return Err(BlockAmcError::config("cannot solve an empty 0x0 system"));
        }
        match self.stages {
            Stages::Original => Ok(()),
            Stages::One if n < 2 => Err(BlockAmcError::config(format!(
                "one-stage BlockAMC requires n >= 2, got {n}"
            ))),
            Stages::Two if n < 4 => Err(BlockAmcError::config(format!(
                "two-stage solver requires n >= 4, got {n}"
            ))),
            Stages::Multi(d) if (d as u32) > n.ilog2() => Err(BlockAmcError::config(format!(
                "partition depth {d} exceeds log2({n}) = {}: blocks would \
                 shrink below 1x1 before the cascade bottoms out",
                n.ilog2()
            ))),
            _ => Ok(()),
        }
    }

    /// The partition layout this configuration programs: the legacy
    /// module layouts per architecture (natural-size MVM blocks for
    /// `Original`/`One`/`Multi`, the paper's quadrant tiling for `Two`),
    /// with the configured split rule.
    pub fn partition_plan(&self) -> PartitionPlan {
        let base = match self.stages {
            Stages::Original => PartitionPlan::depth(0),
            Stages::One => PartitionPlan::depth(1),
            Stages::Two => PartitionPlan::paper(2),
            Stages::Multi(d) => PartitionPlan::depth(d),
        };
        base.with_split_rule(self.split)
    }
}

/// Encodes as a four-field object: `stages`, `signal_plan`,
/// `split_rule`, `capture_trace`.
#[cfg(feature = "serde")]
impl serde::ToConfig for SolverConfig {
    fn to_json(&self) -> serde::Json {
        serde::Json::obj([
            ("stages", serde::ToConfig::to_json(&self.stages)),
            ("signal_plan", serde::ToConfig::to_json(&self.signal)),
            ("split_rule", serde::ToConfig::to_json(&self.split)),
            (
                "capture_trace",
                serde::ToConfig::to_json(&self.capture_trace),
            ),
        ])
    }
}

/// Decodes by routing the four fields back through
/// [`SolverConfig::builder`], so a file-loaded configuration passes
/// exactly the validation an in-code one does — the same contract as
/// the `amc-serve` wire codec.
#[cfg(feature = "serde")]
impl serde::FromConfig for SolverConfig {
    fn from_json(value: &serde::Json) -> std::result::Result<Self, serde::ConfigError> {
        let record = serde::decode::fields(
            value,
            "SolverConfig",
            &["stages", "signal_plan", "split_rule", "capture_trace"],
        )?;
        SolverConfig::builder()
            .stages(record.required("stages")?)
            .signal_plan(record.required("signal_plan")?)
            .split_rule(record.required("split_rule")?)
            .capture_trace(record.required("capture_trace")?)
            .finish()
            .map_err(|e| serde::ConfigError::invalid(e.to_string()))
    }
}

/// Builder for [`SolverConfig`] — the single configuration surface of
/// the facade.
///
/// # Example
///
/// ```
/// use blockamc::converter::IoConfig;
/// use blockamc::engine::NumericEngine;
/// use blockamc::solver::{SolverConfig, SplitRule, SplitSearchOptions, Stages};
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let solver = SolverConfig::builder()
///     .stages(Stages::Two)
///     .io(IoConfig::default_8bit())
///     .split_rule(SplitRule::Searched(SplitSearchOptions::default()))
///     .build(NumericEngine::new())?;
/// # let _ = solver;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SolverConfigBuilder {
    stages: Stages,
    io: IoConfig,
    signal: Option<SignalPlan>,
    split: SplitRule,
    capture_trace: bool,
}

impl Default for SolverConfigBuilder {
    fn default() -> Self {
        SolverConfigBuilder {
            stages: Stages::One,
            io: IoConfig::ideal(),
            signal: None,
            split: SplitRule::Halves,
            capture_trace: true,
        }
    }
}

impl SolverConfigBuilder {
    /// Selects the architecture.
    pub fn stages(mut self, stages: Stages) -> Self {
        self.stages = stages;
        self
    }

    /// Sets the DAC/ADC/S&H configuration used by the architecture's
    /// default signal plan (ignored when [`signal_plan`] supplies an
    /// explicit plan).
    ///
    /// [`signal_plan`]: SolverConfigBuilder::signal_plan
    pub fn io(mut self, io: IoConfig) -> Self {
        self.io = io;
        self
    }

    /// Overrides the per-level signal plan (otherwise
    /// [`SolverConfig::default_signal_plan`] of the selected
    /// architecture is used).
    pub fn signal_plan(mut self, signal: SignalPlan) -> Self {
        self.signal = Some(signal);
        self
    }

    /// Sets the split-index rule applied at every partition node.
    pub fn split_rule(mut self, split: SplitRule) -> Self {
        self.split = split;
        self
    }

    /// Enables or disables per-step signal-trace capture (on by
    /// default).
    pub fn capture_trace(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// Finishes the configuration without binding an engine.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for nonsensical configurations
    /// (see [`SolverConfig::validate`]).
    pub fn finish(self) -> Result<SolverConfig> {
        let config = SolverConfig {
            stages: self.stages,
            signal: self
                .signal
                .unwrap_or_else(|| SolverConfig::default_signal_plan(self.stages, self.io)),
            split: self.split,
            capture_trace: self.capture_trace,
        };
        config.validate()?;
        Ok(config)
    }

    /// Finishes the configuration and binds it to an engine.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SolverConfigBuilder::finish`].
    pub fn build<E: AmcEngine>(self, engine: E) -> Result<BlockAmcSolver<E>> {
        Ok(BlockAmcSolver::from_config(engine, self.finish()?))
    }
}

/// Result of a facade solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The recovered solution of `A·x = b`.
    pub x: Vec<f64>,
    /// The architecture used.
    pub stages: Stages,
    /// Engine name, as reported by [`AmcEngine::name`] — for shipped
    /// backends this is the registry key (see
    /// [`crate::engine::EngineRegistry::builtin`]; the registry, not
    /// this field's docs, is the authoritative list).
    pub engine: &'static str,
    /// Per-step trace of the root cascade when trace capture is on and
    /// the root level records per-step signals — a macro level (e.g.
    /// `Stages::One`) or a pure analog cascade. Bus-connected roots
    /// report [`SolveReport::inner_traces`] instead, and a depth-0 tree
    /// has no cascade to trace.
    pub trace: Option<Vec<StepRecord>>,
    /// Labeled traces of the inner macros a bus-connected root captured
    /// (e.g. the `"A4s"`/`"A1"` second-stage traces of `Stages::Two`).
    pub inner_traces: Vec<(String, Vec<StepRecord>)>,
    /// Engine cost counters accumulated during this solve (including
    /// array programming for [`BlockAmcSolver::solve`]; excluding it for
    /// [`PreparedSolver::solve`], which programs nothing).
    pub stats_delta: EngineStats,
}

fn stats_delta(before: &EngineStats, after: &EngineStats) -> EngineStats {
    *after - *before
}

/// Engine + configuration, ready to prepare and solve linear systems.
///
/// # Example
///
/// ```
/// use blockamc::engine::NumericEngine;
/// use blockamc::solver::{BlockAmcSolver, Stages};
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]])?;
/// let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
/// let report = solver.solve(&a, &[4.0, 3.0])?;
/// assert!((report.x[0] - 1.0).abs() < 1e-10);
/// assert!((report.x[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
///
/// The engine can equally be chosen *as data* — a registry name (or an
/// [`crate::engine::EngineSpec`]) instead of a concrete type — and the
/// solver runs unchanged over `Box<dyn AmcEngine>`:
///
/// ```
/// use blockamc::engine::EngineRegistry;
/// use blockamc::solver::{SolverConfig, Stages};
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]])?;
/// let mut solver = SolverConfig::builder()
///     .stages(Stages::One)
///     .build(EngineRegistry::builtin().build("blocked", 0)?)?;
/// let report = solver.solve(&a, &[4.0, 3.0])?;
/// assert_eq!(report.engine, "blocked");
/// # Ok(())
/// # }
/// ```
///
/// To amortize array programming across many right-hand sides, use
/// [`BlockAmcSolver::prepare`]:
///
/// ```
/// use blockamc::engine::{AmcEngine, NumericEngine};
/// use blockamc::solver::{SolverConfig, Stages};
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]])?;
/// let mut solver = SolverConfig::builder()
///     .stages(Stages::One)
///     .build(NumericEngine::new())?;
/// let mut prepared = solver.prepare(&a)?;
/// let r1 = prepared.solve(&[4.0, 3.0])?;
/// let r2 = prepared.solve(&[3.0, 3.0])?;
/// assert_eq!(r1.stats_delta.program_ops, 0); // arrays reused, not reprogrammed
/// assert_eq!(r2.stats_delta.program_ops, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockAmcSolver<E: AmcEngine> {
    engine: E,
    config: SolverConfig,
    recorder: Recorder,
}

impl<E: AmcEngine> BlockAmcSolver<E> {
    /// Creates a solver with the architecture's default configuration
    /// and an ideal signal path.
    ///
    /// Nonsensical architectures (e.g. `Stages::Multi(0)`) are rejected
    /// when [`prepare`]/[`solve`] is called, keeping this constructor
    /// infallible; use [`SolverConfig::builder`] to fail fast instead.
    ///
    /// [`prepare`]: BlockAmcSolver::prepare
    /// [`solve`]: BlockAmcSolver::solve
    pub fn new(engine: E, stages: Stages) -> Self {
        BlockAmcSolver {
            engine,
            config: SolverConfig {
                stages,
                signal: SolverConfig::default_signal_plan(stages, IoConfig::ideal()),
                split: SplitRule::Halves,
                capture_trace: true,
            },
            recorder: Recorder::disabled(),
        }
    }

    /// Binds a finished configuration to an engine.
    pub fn from_config(engine: E, config: SolverConfig) -> Self {
        BlockAmcSolver {
            engine,
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a span [`Recorder`]: subsequent [`prepare`] /
    /// [`solve`] calls record hierarchical prepare/solve spans on it.
    ///
    /// Instrumentation is strictly read-only — results are bit-identical
    /// whether the recorder is enabled, disabled (the default), or
    /// absent; only timing observation changes.
    ///
    /// [`prepare`]: BlockAmcSolver::prepare
    /// [`solve`]: BlockAmcSolver::solve
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Borrows the attached recorder (e.g. to flush it mid-run).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Sets the DAC/ADC/S&H configuration, rebuilding the architecture's
    /// default signal plan around it.
    ///
    /// Migration shim for the pre-builder API: prefer
    /// `SolverConfig::builder().io(..)` (or an explicit
    /// [`SignalPlan`]) in new code.
    pub fn with_io(mut self, io: IoConfig) -> Self {
        self.config.signal = SolverConfig::default_signal_plan(self.config.stages, io);
        self
    }

    /// Borrows the engine (e.g. to read [`AmcEngine::stats`]).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Consumes the solver and returns the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// The configured architecture.
    pub fn stages(&self) -> Stages {
        self.config.stages
    }

    /// Borrows the full configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Partitions `a` per the configuration and programs every array of
    /// the partition tree **once**, returning a solver that reuses those
    /// arrays — and therefore one fixed variation draw, as in hardware —
    /// for any number of right-hand sides.
    ///
    /// # Errors
    ///
    /// Configuration validation ([`SolverConfig::validate_for_size`]),
    /// shape, partitioning/Schur, and programming failures.
    pub fn prepare(&mut self, a: &Matrix) -> Result<PreparedSolver<'_, E>> {
        if !a.is_square() {
            return Err(BlockAmcError::ShapeMismatch {
                op: "prepare (square matrix required)",
                expected: a.rows(),
                got: a.cols(),
            });
        }
        self.config.validate_for_size(a.rows())?;
        let plan = self.config.partition_plan();
        let tree =
            multi_stage::prepare_plan_recorded(&mut self.engine, a, &plan, &mut self.recorder)?;
        Ok(PreparedSolver {
            engine: &mut self.engine,
            config: &self.config,
            tree,
            recorder: &mut self.recorder,
        })
    }

    /// [`prepare`](Self::prepare) with the partition/Schur work sharded
    /// over `workers` threads (see
    /// [`multi_stage::prepare_plan_workers`]). Bit-identical to
    /// [`prepare`](Self::prepare) at any worker count; array programming
    /// stays serial and in canonical order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`prepare`](Self::prepare).
    pub fn prepare_with_workers(
        &mut self,
        a: &Matrix,
        workers: usize,
    ) -> Result<PreparedSolver<'_, E>> {
        if !a.is_square() {
            return Err(BlockAmcError::ShapeMismatch {
                op: "prepare (square matrix required)",
                expected: a.rows(),
                got: a.cols(),
            });
        }
        self.config.validate_for_size(a.rows())?;
        let plan = self.config.partition_plan();
        let tree = multi_stage::prepare_plan_workers_recorded(
            &mut self.engine,
            a,
            &plan,
            workers,
            &mut self.recorder,
        )?;
        Ok(PreparedSolver {
            engine: &mut self.engine,
            config: &self.config,
            tree,
            recorder: &mut self.recorder,
        })
    }

    /// Solves `A·x = b`: a thin [`prepare`]-then-[`solve`] convenience.
    ///
    /// Arrays are (re)programmed on every call — each call models a
    /// fresh hardware deployment, which is what the Monte-Carlo accuracy
    /// sweeps need. To amortize programming across many right-hand
    /// sides, call [`prepare`] once and solve through the returned
    /// [`PreparedSolver`].
    ///
    /// [`prepare`]: BlockAmcSolver::prepare
    /// [`solve`]: PreparedSolver::solve
    ///
    /// # Errors
    ///
    /// Shape mismatches, configuration validation, partitioning/Schur
    /// failures, and engine errors.
    pub fn solve(&mut self, a: &Matrix, b: &[f64]) -> Result<SolveReport> {
        if a.is_square() && b.len() != a.rows() {
            return Err(BlockAmcError::ShapeMismatch {
                op: "solve",
                expected: a.rows(),
                got: b.len(),
            });
        }
        let before = self.engine.stats();
        let mut report = {
            let mut prepared = self.prepare(a)?;
            prepared.solve(b)?
        };
        // The convenience path charges programming to the solve, exactly
        // like the pre-builder facade did.
        report.stats_delta = stats_delta(&before, &self.engine.stats());
        Ok(report)
    }
}

/// A partition tree whose arrays have been programmed once, bound to
/// the engine and configuration that built it.
///
/// Obtained from [`BlockAmcSolver::prepare`]; solves any number of
/// right-hand sides against the same programmed arrays (one variation
/// draw, zero additional `program_ops`).
#[derive(Debug)]
pub struct PreparedSolver<'a, E: AmcEngine> {
    engine: &'a mut E,
    config: &'a SolverConfig,
    tree: PreparedMultiStage,
    recorder: &'a mut Recorder,
}

impl<E: AmcEngine> PreparedSolver<'_, E> {
    /// Problem size `n`.
    pub fn size(&self) -> usize {
        self.tree.size()
    }

    /// Partition-tree depth.
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// Largest programmed array dimension in the tree.
    pub fn max_array_size(&self) -> usize {
        self.tree.max_leaf_size()
    }

    /// Borrows the engine (e.g. to read [`AmcEngine::stats`]).
    pub fn engine(&self) -> &E {
        self.engine
    }

    /// The configuration this solver was prepared under.
    pub fn config(&self) -> &SolverConfig {
        self.config
    }

    /// Solves `A·x = b` against the already-programmed arrays.
    ///
    /// # Errors
    ///
    /// Shape mismatches and engine failures.
    pub fn solve(&mut self, b: &[f64]) -> Result<SolveReport> {
        solve_prepared(self.engine, self.config, &mut self.tree, b, self.recorder)
    }

    /// Clones this prepared solver into `n` independently owned
    /// replicas — the "independently-programmed macro instances" the
    /// parallel batch layer shards work across.
    ///
    /// Each replica owns a copy of the engine and of every programmed
    /// array, modeling a separate hardware deployment whose
    /// write-and-verify loop reached the **same effective conductances**
    /// as this solver's arrays: the one variation draw taken at
    /// [`BlockAmcSolver::prepare`] time is inherited bitwise. That is
    /// the determinism contract the parallel layer builds on — any
    /// right-hand side solved on any replica is bit-identical to
    /// solving it here, so sharded output cannot depend on the worker
    /// count or on which worker stole which shard.
    ///
    /// Replication is cheap relative to preparation: no partitioning,
    /// Schur pre-processing, or variation sampling is repeated — only
    /// the programmed state is copied.
    pub fn replicate(&self, n: usize) -> Vec<SolverReplica<E>>
    where
        E: Clone,
    {
        (0..n)
            .map(|_| SolverReplica {
                engine: self.engine.clone(),
                config: self.config.clone(),
                tree: self.tree.clone(),
                // Recorder clones fork: each replica records on its own
                // worker lane of the same trace session.
                recorder: self.recorder.clone(),
            })
            .collect()
    }

    /// Solves one right-hand side after another against the same
    /// programmed arrays and returns the solutions in input order —
    /// the multi-RHS workload the paper's §III.B pipelining serves.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for an empty batch; per-solve
    /// shape and engine failures.
    pub fn solve_batch(&mut self, batch: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        if batch.is_empty() {
            return Err(BlockAmcError::config("batch must contain at least one RHS"));
        }
        let mut solutions = Vec::with_capacity(batch.len());
        for b in batch {
            solutions.push(self.solve(b)?.x);
        }
        Ok(solutions)
    }
}

/// Runs one solve against an already-prepared partition tree; shared by
/// the borrowing [`PreparedSolver`] and the owning [`SolverReplica`].
fn solve_prepared<E: AmcEngine>(
    engine: &mut E,
    config: &SolverConfig,
    tree: &mut PreparedMultiStage,
    b: &[f64],
    rec: &mut Recorder,
) -> Result<SolveReport> {
    let before = engine.stats();
    let span = rec.enter("solve");
    let (x, log) =
        multi_stage::solve_with_signal(engine, tree, b, &config.signal, config.capture_trace, rec)?;
    let after = engine.stats();
    // Fold the engine op-count delta of this solve into the root span.
    rec.exit_with(
        span,
        &[
            ("n", b.len() as f64),
            (
                "inv_ops",
                after.inv_ops.saturating_sub(before.inv_ops) as f64,
            ),
            (
                "mvm_ops",
                after.mvm_ops.saturating_sub(before.mvm_ops) as f64,
            ),
        ],
    );
    let trace = (!log.steps.is_empty()).then_some(log.steps);
    Ok(SolveReport {
        x,
        stages: config.stages,
        engine: engine.name(),
        trace,
        inner_traces: log.inner,
        stats_delta: stats_delta(&before, &after),
    })
}

/// A self-contained copy of a prepared solver: engine, configuration,
/// and programmed partition tree, all owned.
///
/// Created by [`PreparedSolver::replicate`]. Unlike [`PreparedSolver`]
/// it borrows nothing, so replicas can be moved onto worker threads and
/// driven concurrently — each models an independently deployed macro
/// instance programmed to the same effective conductances as the
/// original (see [`PreparedSolver::replicate`] for the determinism
/// contract).
#[derive(Debug, Clone)]
pub struct SolverReplica<E: AmcEngine> {
    engine: E,
    config: SolverConfig,
    tree: PreparedMultiStage,
    // Cloned replicas fork the recorder, so each worker's solves land
    // on a distinct lane of the same trace session.
    recorder: Recorder,
}

impl<E: AmcEngine> SolverReplica<E> {
    /// Problem size `n`.
    pub fn size(&self) -> usize {
        self.tree.size()
    }

    /// Borrows this replica's engine (e.g. to read per-worker
    /// [`AmcEngine::stats`] after a sharded run).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The configuration the replica was prepared under.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Splits the replica into disjoint mutable borrows of its engine,
    /// configuration, and programmed tree — the aging layer rewrites
    /// operands through the engine while walking the tree, which needs
    /// both halves mutable at once.
    pub(crate) fn parts_mut(&mut self) -> (&mut E, &SolverConfig, &mut PreparedMultiStage) {
        (&mut self.engine, &self.config, &mut self.tree)
    }

    /// Attaches a span [`Recorder`]: subsequent solves on this replica
    /// record hierarchical solve spans on it. See
    /// [`BlockAmcSolver::set_recorder`] for the bit-identity contract.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Borrows the attached recorder (e.g. to flush it mid-run).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Solves `A·x = b` against the replica's programmed arrays.
    ///
    /// # Errors
    ///
    /// Shape mismatches and engine failures.
    pub fn solve(&mut self, b: &[f64]) -> Result<SolveReport> {
        solve_prepared(
            &mut self.engine,
            &self.config,
            &mut self.tree,
            b,
            &mut self.recorder,
        )
    }

    /// Solves one right-hand side after another against the replica's
    /// programmed arrays, returning the solutions in input order.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for an empty batch; per-solve
    /// shape and engine failures.
    pub fn solve_batch(&mut self, batch: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        if batch.is_empty() {
            return Err(BlockAmcError::config("batch must contain at least one RHS"));
        }
        batch.iter().map(|b| self.solve(b).map(|r| r.x)).collect()
    }

    /// Shards `batch` over `workers` solving instances — this replica
    /// plus `workers − 1` bitwise clones of it — on an `amc_par`
    /// work-stealing pool, returning the solutions in input order.
    ///
    /// **Bit-identical to [`solve_batch`](Self::solve_batch) at every
    /// worker count**: clones copy the programmed state (the one
    /// variation draw taken at prepare time), so which worker solves a
    /// right-hand side cannot show in the output. This is the entry the
    /// `amc-serve` dispatcher drives when it coalesces concurrent
    /// requests against one cached replica into a shared batch.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for an empty batch or
    /// `workers == 0`; per-solve shape and engine failures.
    pub fn solve_batch_parallel(
        &mut self,
        batch: &[Vec<f64>],
        workers: usize,
    ) -> Result<Vec<Vec<f64>>>
    where
        E: Clone,
    {
        if batch.is_empty() {
            return Err(BlockAmcError::config("batch must contain at least one RHS"));
        }
        if workers == 0 {
            return Err(BlockAmcError::config(
                "parallel batch needs at least one worker",
            ));
        }
        if workers == 1 || batch.len() == 1 {
            return self.solve_batch(batch);
        }
        let mut clones: Vec<SolverReplica<E>> = (1..workers).map(|_| self.clone()).collect();
        let mut states: Vec<&mut SolverReplica<E>> = Vec::with_capacity(workers);
        states.push(self);
        states.extend(clones.iter_mut());
        // Contiguous shards, a few per worker (see SHARDS_PER_WORKER in
        // crate::batch); input order is restored by the index-preserving
        // pool merge.
        let shard_len = batch.len().div_ceil(workers * 4).max(1);
        let shards: Vec<&[Vec<f64>]> = batch.chunks(shard_len).collect();
        let sharded = amc_par::map_with_states(&mut states, shards, |replica, _, shard| {
            shard
                .iter()
                .map(|b| replica.solve(b).map(|r| r.x))
                .collect::<Result<Vec<_>>>()
        });
        let mut solutions = Vec::with_capacity(batch.len());
        for shard in sharded {
            solutions.extend(shard?);
        }
        Ok(solutions)
    }
}

// Compile-time guarantee that prepared solvers cross threads: the
// `amc-serve` cache stores replicas behind a mutex and hands clones to
// worker threads, so `Send` is a type-checked invariant here, not an
// assumption. `AmcEngine`'s `Send` supertrait must suffice for *any*
// engine, including the type-erased one the registry builds.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn check_engine<E: AmcEngine>() {
        assert_send::<E>();
        assert_send::<PreparedSolver<'_, E>>();
        assert_send::<SolverReplica<E>>();
    }
    check_engine::<Box<dyn AmcEngine>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::converter::Converter;
    use crate::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
    use amc_linalg::{generate, lu, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn all_architectures_agree_with_numeric_engine() {
        let (a, b) = workload(16, 1);
        let x_ref = lu::solve(&a, &b).unwrap();
        for stages in [Stages::Original, Stages::One, Stages::Two, Stages::Multi(3)] {
            let mut solver = BlockAmcSolver::new(NumericEngine::new(), stages);
            let report = solver.solve(&a, &b).unwrap();
            assert!(
                metrics::relative_error(&x_ref, &report.x) < 1e-8,
                "{stages:?} diverged"
            );
            assert_eq!(report.stages, stages);
            assert_eq!(report.engine, "numeric");
        }
    }

    #[test]
    fn trace_only_for_one_stage() {
        let (a, b) = workload(8, 2);
        let mut s1 = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        assert!(s1.solve(&a, &b).unwrap().trace.is_some());
        let mut s0 = BlockAmcSolver::new(NumericEngine::new(), Stages::Original);
        assert!(s0.solve(&a, &b).unwrap().trace.is_none());
    }

    #[test]
    fn two_stage_reports_inner_traces() {
        let (a, b) = workload(8, 2);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::Two);
        let report = solver.solve(&a, &b).unwrap();
        assert!(report.trace.is_none());
        assert_eq!(
            report
                .inner_traces
                .iter()
                .map(|t| t.0.as_str())
                .collect::<Vec<_>>(),
            ["A4s", "A1"]
        );
    }

    #[test]
    fn trace_capture_can_be_disabled() {
        let (a, b) = workload(8, 2);
        let mut solver = SolverConfig::builder()
            .stages(Stages::One)
            .capture_trace(false)
            .build(NumericEngine::new())
            .unwrap();
        let report = solver.solve(&a, &b).unwrap();
        assert!(report.trace.is_none());
        assert!(report.inner_traces.is_empty());
    }

    #[test]
    fn stats_delta_counts_operations() {
        let (a, b) = workload(8, 3);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        let r1 = solver.solve(&a, &b).unwrap();
        assert_eq!(r1.stats_delta.inv_ops, 3);
        assert_eq!(r1.stats_delta.mvm_ops, 2);
        assert_eq!(r1.stats_delta.program_ops, 4);
        // Second solve has its own delta, not cumulative.
        let r2 = solver.solve(&a, &b).unwrap();
        assert_eq!(r2.stats_delta.inv_ops, 3);
        assert_eq!(r2.stats_delta.program_ops, 4);
    }

    #[test]
    fn prepared_solver_programs_once_and_reuses_arrays() {
        let (a, _) = workload(8, 3);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.engine().stats().program_ops, 4);
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let b = generate::random_vector(8, &mut rng);
            let r = prepared.solve(&b).unwrap();
            assert_eq!(r.stats_delta.program_ops, 0);
            assert_eq!(r.stats_delta.inv_ops, 3);
            let x_ref = lu::solve(&a, &b).unwrap();
            assert!(metrics::relative_error(&x_ref, &r.x) < 1e-9);
        }
        assert_eq!(prepared.engine().stats().program_ops, 4);
    }

    #[test]
    fn replicas_are_bit_identical_to_the_prepared_solver() {
        // The determinism contract of the parallel layer: a replica's
        // solve equals the original's bitwise, even under variation.
        let (a, b) = workload(12, 21);
        let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 3);
        let mut solver = BlockAmcSolver::new(engine, Stages::One);
        let mut prepared = solver.prepare(&a).unwrap();
        let mut replicas = prepared.replicate(3);
        let x_ref = prepared.solve(&b).unwrap().x;
        for (i, replica) in replicas.iter_mut().enumerate() {
            assert_eq!(replica.size(), 12);
            assert_eq!(replica.config().stages(), Stages::One);
            let x = replica.solve(&b).unwrap().x;
            assert_eq!(x, x_ref, "replica {i} diverged");
            // Replication copies programmed state; nothing is reprogrammed.
            assert_eq!(replica.engine().stats().program_ops, 4);
        }
    }

    #[test]
    fn replica_batch_parallel_is_bit_identical_to_serial() {
        // The coalescing path of amc-serve: one cached replica fans a
        // shared batch out over clones. Variation makes solutions
        // draw-dependent, so identity across worker counts proves the
        // clones inherit the draw bitwise.
        let (a, _) = workload(16, 33);
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let batch: Vec<Vec<f64>> = (0..9)
            .map(|_| generate::random_vector(16, &mut rng))
            .collect();
        let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 11);
        let mut solver = BlockAmcSolver::new(engine, Stages::One);
        let prepared = solver.prepare(&a).unwrap();
        let mut replica = prepared.replicate(1).remove(0);
        let serial = replica.clone().solve_batch(&batch).unwrap();
        for workers in [1usize, 2, 4] {
            let out = replica.solve_batch_parallel(&batch, workers).unwrap();
            assert_eq!(out, serial, "workers={workers}");
        }
        assert!(replica.solve_batch_parallel(&[], 2).is_err());
        assert!(replica.solve_batch_parallel(&batch, 0).is_err());
    }

    #[test]
    fn replicas_and_boxed_engines_move_across_threads() {
        // Runtime companion to the compile-time Send assertions: a
        // type-erased replica is solved on another thread and must
        // produce the same bits as on this one.
        let (a, b) = workload(8, 35);
        let mut solver = SolverConfig::builder()
            .stages(Stages::One)
            .build(
                crate::engine::EngineRegistry::builtin()
                    .build("circuit", 3)
                    .unwrap(),
            )
            .unwrap();
        let mut prepared = solver.prepare(&a).unwrap();
        let mut replica = prepared.replicate(1).remove(0);
        let x_here = prepared.solve(&b).unwrap().x;
        let b2 = b.clone();
        let x_there = std::thread::spawn(move || replica.solve(&b2).unwrap().x)
            .join()
            .unwrap();
        assert_eq!(x_here, x_there);
    }

    #[test]
    fn prepared_solver_keeps_one_variation_draw() {
        // Repeated solves on one PreparedSolver hit the same programmed
        // (noisy) arrays: results are bit-identical, unlike re-preparing.
        let (a, b) = workload(12, 9);
        let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 5);
        let mut solver = BlockAmcSolver::new(engine, Stages::One);
        let mut prepared = solver.prepare(&a).unwrap();
        let x1 = prepared.solve(&b).unwrap().x;
        let x2 = prepared.solve(&b).unwrap().x;
        assert_eq!(x1, x2);
    }

    #[test]
    fn original_vs_blockamc_accuracy_under_variation() {
        // With the same seed and variation level, both should be in the
        // same error ballpark; this is the comparison the sweeps run at
        // scale (BlockAMC wins on average, not necessarily per-draw).
        let (a, b) = workload(32, 4);
        let x_ref = lu::solve(&a, &b).unwrap();
        let mut orig = BlockAmcSolver::new(
            CircuitEngine::new(CircuitEngineConfig::paper_variation(), 7),
            Stages::Original,
        );
        let mut blk = BlockAmcSolver::new(
            CircuitEngine::new(CircuitEngineConfig::paper_variation(), 7),
            Stages::One,
        );
        let e_orig = metrics::relative_error(&x_ref, &orig.solve(&a, &b).unwrap().x);
        let e_blk = metrics::relative_error(&x_ref, &blk.solve(&a, &b).unwrap().x);
        // Condition-number amplification of the 5% conductance noise makes
        // absolute values draw-dependent; only coarse bounds are asserted.
        assert!(e_orig > 1e-6 && e_orig < 2.0, "e_orig={e_orig}");
        assert!(e_blk > 1e-6 && e_blk < 2.0, "e_blk={e_blk}");
    }

    #[test]
    fn shape_validation() {
        let (a, _) = workload(8, 5);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        assert!(solver.solve(&a, &[1.0; 3]).is_err());
        assert!(solver.solve(&Matrix::zeros(2, 3), &[1.0, 1.0]).is_err());
    }

    #[test]
    fn nonsensical_configs_rejected_with_clear_errors() {
        // Multi(0) fails fast at build …
        let err = SolverConfig::builder()
            .stages(Stages::Multi(0))
            .finish()
            .unwrap_err();
        assert!(err.to_string().contains("Multi(0)"), "{err}");
        // … and at prepare through the infallible constructor.
        let (a, b) = workload(8, 5);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::Multi(0));
        assert!(solver.solve(&a, &b).is_err());
        // Depth exceeding log2(n) names the bound instead of failing in
        // the partitioner.
        let mut deep = BlockAmcSolver::new(NumericEngine::new(), Stages::Multi(4));
        let err = deep.solve(&a, &b).unwrap_err();
        assert!(err.to_string().contains("log2"), "{err}");
        // Architecture minimum sizes.
        let (a2, _) = workload(2, 6);
        let mut two = BlockAmcSolver::new(NumericEngine::new(), Stages::Two);
        assert!(two.prepare(&a2).is_err());
    }

    #[test]
    fn signal_plan_deeper_than_the_cascade_rejected() {
        // A converter entry below the leaf level would never execute;
        // that must be a loud error, not a silent drop.
        let io = IoConfig::default_8bit();
        let err = SolverConfig::builder()
            .stages(Stages::One)
            .signal_plan(SignalPlan::pure().with_level(1, LevelIo::Macro(io)))
            .finish()
            .unwrap_err();
        assert!(err.to_string().contains("level 1"), "{err}");
        // Trailing Pure padding is harmless and accepted.
        assert!(SolverConfig::builder()
            .stages(Stages::One)
            .signal_plan(SignalPlan::from_levels(vec![
                LevelIo::Macro(io),
                LevelIo::Pure,
                LevelIo::Pure,
            ]))
            .finish()
            .is_ok());
        // A depth-0 tree still honours its level-0 boundary entry.
        assert!(SolverConfig::builder()
            .stages(Stages::Original)
            .io(io)
            .finish()
            .is_ok());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn solver_config_round_trips_through_json() {
        use serde::{FromConfig, ToConfig};
        let io = IoConfig::default_8bit();
        let configs = [
            SolverConfig::builder().finish().unwrap(),
            SolverConfig::builder()
                .stages(Stages::Two)
                .io(io)
                .split_rule(SplitRule::Searched(SplitSearchOptions {
                    imbalance_weight: 0.25,
                }))
                .capture_trace(false)
                .finish()
                .unwrap(),
            SolverConfig::builder()
                .stages(Stages::Multi(3))
                .signal_plan(SignalPlan::uniform_bus(2, io))
                .finish()
                .unwrap(),
        ];
        for config in configs {
            let json = config.to_json();
            let text = json.render();
            let back = SolverConfig::from_json(&serde::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, config);
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn solver_config_decode_revalidates_through_the_builder() {
        use serde::{FromConfig, ToConfig};
        // A structurally valid file describing a nonsensical solver must
        // fail decode with the builder's validation message.
        let mut json = SolverConfig::builder().finish().unwrap().to_json();
        let serde::Json::Obj(pairs) = &mut json else {
            panic!()
        };
        pairs[0].1 = serde::Json::tagged("Multi", serde::Json::Int(0));
        let err = SolverConfig::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("Multi(0)"), "{err}");
        // Misspelled fields name the offender and the known set.
        let bad = serde::Json::obj([("stagez", serde::Json::Str("One".into()))]);
        let err = SolverConfig::from_json(&bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("stagez") && msg.contains("stages"), "{msg}");
    }

    #[test]
    fn io_config_is_applied() {
        let (a, b) = workload(8, 6);
        let x_ref = lu::solve(&a, &b).unwrap();
        let mut ideal = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
        let mut coarse = BlockAmcSolver::new(NumericEngine::new(), Stages::One).with_io(IoConfig {
            dac: Some(Converter::new(4, 1.0).unwrap()),
            adc: Some(Converter::new(4, 1.0).unwrap()),
            sh_droop: 0.0,
        });
        let e_ideal = metrics::relative_error(&x_ref, &ideal.solve(&a, &b).unwrap().x);
        let e_coarse = metrics::relative_error(&x_ref, &coarse.solve(&a, &b).unwrap().x);
        assert!(e_ideal < 1e-9);
        assert!(e_coarse > 1e-3, "4-bit converters must hurt: {e_coarse}");
    }

    #[test]
    fn multi_stage_no_longer_ignores_io() {
        // The pre-builder facade silently dropped the IoConfig for
        // Stages::Multi; the per-level plan applies it.
        let (a, b) = workload(16, 7);
        let x_ref = lu::solve(&a, &b).unwrap();
        let coarse_io = IoConfig {
            dac: Some(Converter::new(4, 1.0).unwrap()),
            adc: Some(Converter::new(4, 1.0).unwrap()),
            sh_droop: 0.0,
        };
        let mut coarse = SolverConfig::builder()
            .stages(Stages::Multi(2))
            .io(coarse_io)
            .build(NumericEngine::new())
            .unwrap();
        let e = metrics::relative_error(&x_ref, &coarse.solve(&a, &b).unwrap().x);
        assert!(e > 1e-3, "4-bit converters must reach Multi: {e}");
    }

    #[test]
    fn searched_splits_work_through_the_facade() {
        let (a, b) = workload(12, 8);
        let x_ref = lu::solve(&a, &b).unwrap();
        for stages in [Stages::One, Stages::Two, Stages::Multi(2)] {
            let mut solver = SolverConfig::builder()
                .stages(stages)
                .split_rule(SplitRule::Searched(SplitSearchOptions::default()))
                .build(NumericEngine::new())
                .unwrap();
            let r = solver.solve(&a, &b).unwrap();
            assert!(
                metrics::relative_error(&x_ref, &r.x) < 1e-8,
                "{stages:?} diverged under searched splits"
            );
        }
    }

    #[test]
    fn explicit_signal_plan_overrides_the_default() {
        let (a, b) = workload(16, 10);
        let x_ref = lu::solve(&a, &b).unwrap();
        // Wide-range converters: quantization without clipping.
        let bus_io = IoConfig {
            dac: Some(Converter::new(12, 8.0).unwrap()),
            adc: Some(Converter::new(12, 8.0).unwrap()),
            sh_droop: 0.0,
        };
        let plan = SignalPlan::pure().with_level(1, LevelIo::Bus(bus_io));
        let mut solver = SolverConfig::builder()
            .stages(Stages::Multi(3))
            .signal_plan(plan.clone())
            .build(NumericEngine::new())
            .unwrap();
        assert_eq!(solver.config().signal_plan(), &plan);
        let r = solver.solve(&a, &b).unwrap();
        let e = metrics::relative_error(&x_ref, &r.x);
        assert!(e > 1e-8, "12-bit bus hops at level 1 must quantize: {e}");
        assert!(e < 1e-1, "but stay small: {e}");
    }
}

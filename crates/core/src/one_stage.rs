//! The one-stage BlockAMC solver: the paper's five-step algorithm.
//!
//! Given the partition `A = [[A1, A2], [A3, A4]]`, the pre-computed Schur
//! complement `A4s`, and `b = [f; g]`, the solver executes (Fig. 2 /
//! Algorithm 1), tracking the AMC minus signs exactly as hardware
//! produces them:
//!
//! | Step | Operation             | Output                              |
//! |------|-----------------------|-------------------------------------|
//! | 1    | INV(A1, f)            | `−y_t = −A1⁻¹·f`                    |
//! | 2    | MVM(A3, −y_t)         | `g_t = A3·y_t`                      |
//! | 3    | INV(A4s, g_t − g)     | `z = A4s⁻¹·(g − g_t)` (bottom of x) |
//! | 4    | MVM(A2, z)            | `−f_t = −A2·z`                      |
//! | 5    | INV(A1, f − f_t)      | `−y` (upper of x, negated)          |
//!
//! Block `A1` is used in steps 1 and 5 **on the same programmed array**
//! (its variation draw is shared), matching the paper's macro in which
//! "the A1 array should be used twice".
//!
//! Signals cascade through sample-and-hold buffers between steps; external
//! inputs (`f`, `g`) enter through the DAC and the solution parts (`z`,
//! `−y`) leave through the ADC — see [`crate::converter::IoConfig`].
//!
//! **Migration note:** this module is the low-level execution layer.
//! Prefer the builder facade —
//! `SolverConfig::builder().stages(Stages::One).io(io)` followed by
//! [`crate::solver::BlockAmcSolver::prepare`] — which is pinned
//! bit-identical to these functions and adds searched splits, per-level
//! signal plans, and multi-RHS batching (see the crate-level migration
//! table).

use amc_linalg::{vector, Matrix};

use crate::converter::IoConfig;
use crate::engine::{AmcEngine, Operand};
use crate::multi_stage::{run_cascade, InvExec, LevelIo, SignalPath, TraceLog};
use crate::partition::BlockPartition;
use crate::Result;

/// Identifies one of the five algorithm steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepId {
    /// Step 1: INV with `A1` and `f`.
    Inv1,
    /// Step 2: MVM with `A3`.
    Mvm2,
    /// Step 3: INV with `A4s`.
    Inv3,
    /// Step 4: MVM with `A2`.
    Mvm4,
    /// Step 5: INV with `A1` again.
    Inv5,
}

impl std::fmt::Display for StepId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StepId::Inv1 => "step 1 (INV A1)",
            StepId::Mvm2 => "step 2 (MVM A3)",
            StepId::Inv3 => "step 3 (INV A4s)",
            StepId::Mvm4 => "step 4 (MVM A2)",
            StepId::Inv5 => "step 5 (INV A1)",
        };
        f.write_str(s)
    }
}

/// Input/output record of one executed step (Fig. 6(a) plots exactly
/// these signals against their numerical references).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Which step this record describes.
    pub step: StepId,
    /// The analog input vector fed to the array.
    pub input: Vec<f64>,
    /// The analog output vector produced.
    pub output: Vec<f64>,
}

/// Result of a one-stage solve.
#[derive(Debug, Clone, PartialEq)]
pub struct OneStageSolution {
    /// The recovered solution of `A·x = b`.
    pub x: Vec<f64>,
    /// Per-step signal trace.
    pub trace: Vec<StepRecord>,
}

/// A partition whose blocks have been programmed onto engine operands.
///
/// Create once with [`prepare`], then [`solve`] any number of right-hand
/// sides against the same programmed arrays.
#[derive(Debug, Clone)]
pub struct PreparedOneStage {
    split: usize,
    n: usize,
    a1: Operand,
    /// `None` when `A2` is a zero block (step 4 is skipped; `f_t = 0`).
    a2: Option<Operand>,
    /// `None` when `A3` is a zero block (step 2 is skipped; `g_t = 0`).
    a3: Option<Operand>,
    a4s: Operand,
}

impl PreparedOneStage {
    /// The split index (size of `A1`).
    pub fn split(&self) -> usize {
        self.split
    }

    /// Full problem size `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Mutable access to the programmed `A1` operand (for diagnostics).
    pub fn a1_operand(&self) -> &Operand {
        &self.a1
    }

    /// Mutable access to the programmed `A4s` operand (for diagnostics).
    pub fn a4s_operand(&self) -> &Operand {
        &self.a4s
    }
}

/// Computes the Schur complement digitally and programs all blocks onto
/// the engine.
///
/// # Errors
///
/// Propagates Schur (singular `A1`) and programming failures.
pub fn prepare<E: AmcEngine + ?Sized>(
    engine: &mut E,
    partition: &BlockPartition,
) -> Result<PreparedOneStage> {
    let a4s = partition.schur_complement()?;
    let a1 = engine.program(&partition.a1)?;
    let a2 = if partition.a2.is_zero() {
        None
    } else {
        Some(engine.program(&partition.a2)?)
    };
    let a3 = if partition.a3.is_zero() {
        None
    } else {
        Some(engine.program(&partition.a3)?)
    };
    let a4s = engine.program(&a4s)?;
    Ok(PreparedOneStage {
        split: partition.split,
        n: partition.size(),
        a1,
        a2,
        a3,
        a4s,
    })
}

/// Convenience: partition `a` at the default split and [`prepare`] it.
///
/// # Errors
///
/// Propagates partitioning, Schur, and programming failures.
pub fn prepare_matrix<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
) -> Result<PreparedOneStage> {
    let partition = BlockPartition::halves(a)?;
    prepare(engine, &partition)
}

/// Executes the five-step algorithm for one right-hand side.
///
/// The cascade itself lives in the recursive execution core
/// (`run_cascade` in [`crate::multi_stage`]); this wrapper contributes the
/// macro signal path (DAC entry, S&H hops, ADC exit), the per-step
/// trace, and the digital negation of the upper solution half.
///
/// # Errors
///
/// * [`crate::BlockAmcError::ShapeMismatch`] if `b.len()` differs from the
///   prepared size.
/// * Engine execution failures.
pub fn solve<E: AmcEngine + ?Sized>(
    engine: &mut E,
    prepared: &mut PreparedOneStage,
    b: &[f64],
    io: &IoConfig,
) -> Result<OneStageSolution> {
    io.validate()?;
    if b.len() != prepared.n {
        return Err(crate::BlockAmcError::ShapeMismatch {
            op: "one_stage_solve",
            expected: prepared.n,
            got: b.len(),
        });
    }
    let mut log = TraceLog::enabled();
    let levels = [LevelIo::Macro(*io)];
    let neg_x = prepared.inv_signed(
        engine,
        b,
        SignalPath::new(&levels),
        &mut log,
        &mut amc_obs::Recorder::disabled(),
    )?;
    Ok(OneStageSolution {
        x: vector::neg(&neg_x),
        trace: log.steps,
    })
}

// A prepared macro is itself an INV executor: this is what lets the
// two-stage solver (and any deeper bus-connected layout) cascade whole
// macros exactly like single arrays. The head of `path` is this macro's
// signal-path policy (`Macro` when driven by [`solve`] or by a bus
// level above it).
impl<E: AmcEngine + ?Sized> InvExec<E> for PreparedOneStage {
    fn inv_signed(
        &mut self,
        engine: &mut E,
        b: &[f64],
        path: SignalPath<'_>,
        log: &mut TraceLog,
        rec: &mut amc_obs::Recorder,
    ) -> Result<Vec<f64>> {
        run_cascade(
            engine,
            self.split,
            &mut self.a1,
            &mut self.a4s,
            self.a2.as_mut(),
            self.a3.as_mut(),
            b,
            path,
            log,
            rec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::converter::Converter;
    use crate::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
    use amc_linalg::{generate, lu, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn numeric_engine_recovers_exact_solution() {
        let (a, b) = workload(8, 1);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&sol.x, &x_ref, 1e-9));
    }

    #[test]
    fn odd_size_works() {
        let (a, b) = workload(9, 2);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&sol.x, &x_ref, 1e-9));
    }

    #[test]
    fn arbitrary_split_works() {
        let (a, b) = workload(10, 3);
        let x_ref = lu::solve(&a, &b).unwrap();
        for split in [1usize, 3, 7, 9] {
            let mut engine = NumericEngine::new();
            let p = BlockPartition::new(&a, split).unwrap();
            let mut prep = prepare(&mut engine, &p).unwrap();
            let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
            assert!(
                vector::approx_eq(&sol.x, &x_ref, 1e-8),
                "split {split} diverged"
            );
        }
    }

    #[test]
    fn trace_has_five_steps_with_correct_signals() {
        let (a, b) = workload(8, 4);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        assert_eq!(sol.trace.len(), 5);
        assert_eq!(sol.trace[0].step, StepId::Inv1);
        assert_eq!(sol.trace[4].step, StepId::Inv5);
        // Step-1 output is −A1⁻¹ f.
        let p = BlockPartition::halves(&a).unwrap();
        let yt = lu::solve(&p.a1, &b[..4]).unwrap();
        assert!(vector::approx_eq(
            &sol.trace[0].output,
            &vector::neg(&yt),
            1e-10
        ));
        // Step-3 output equals the bottom half of the solution.
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&sol.trace[2].output, &x_ref[4..], 1e-9));
    }

    #[test]
    fn zero_a2_and_a3_blocks_skip_mvm_steps() {
        // Block-diagonal matrix: both MVM steps are skipped, trace has 3.
        let a1 = Matrix::from_diag(&[2.0, 3.0]);
        let a4 = Matrix::from_diag(&[4.0, 5.0]);
        let z = Matrix::zeros(2, 2);
        let a = Matrix::from_blocks(&a1, &z, &z, &a4).unwrap();
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        assert_eq!(sol.trace.len(), 3);
        assert!(vector::approx_eq(&sol.x, &[1.0; 4], 1e-12));
        // Only A1 and A4s were programmed.
        assert_eq!(engine.stats().program_ops, 2);
    }

    #[test]
    fn triangular_block_matrix_uses_a4_directly() {
        // A2 = 0: the Schur complement equals A4, no digital inversion.
        let a1 = Matrix::from_diag(&[2.0, 1.0]);
        let a3 = Matrix::filled(2, 2, 0.25);
        let a4 = Matrix::from_diag(&[3.0, 1.5]);
        let z = Matrix::zeros(2, 2);
        let a = Matrix::from_blocks(&a1, &z, &a3, &a4).unwrap();
        let b = [1.0, 1.0, 1.0, 1.0];
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&sol.x, &x_ref, 1e-12));
    }

    #[test]
    fn ideal_circuit_engine_matches_numeric_one_stage() {
        let (a, b) = workload(8, 5);
        let mut engine = CircuitEngine::new(CircuitEngineConfig::ideal(), 11);
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(metrics::relative_error(&x_ref, &sol.x) < 1e-8);
    }

    #[test]
    fn variation_produces_bounded_error() {
        let (a, b) = workload(16, 6);
        let mut engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 12);
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        let err = metrics::relative_error(&x_ref, &sol.x);
        assert!(err > 1e-6, "variation must perturb (err={err})");
        assert!(err < 1.0, "error should stay bounded (err={err})");
    }

    #[test]
    fn a1_array_is_programmed_once_and_reused() {
        let (a, b) = workload(8, 7);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let _ = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        // 4 programs (A1, A2, A3, A4s); 3 INV (two of them on A1); 2 MVM.
        let s = engine.stats();
        assert_eq!(s.program_ops, 4);
        assert_eq!(s.inv_ops, 3);
        assert_eq!(s.mvm_ops, 2);
    }

    #[test]
    fn converters_quantize_the_digital_boundary() {
        let (a, b) = workload(8, 8);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        let io = IoConfig {
            dac: Some(Converter::new(6, 1.0).unwrap()),
            adc: Some(Converter::new(6, 1.0).unwrap()),
            sh_droop: 0.0,
        };
        let sol = solve(&mut engine, &mut prep, &b, &io).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        let err = metrics::relative_error(&x_ref, &sol.x);
        assert!(err > 1e-6, "6-bit converters must quantize (err={err})");
        // Quantization error is amplified by the condition number of the
        // Wishart draw, so only a coarse upper bound is meaningful here.
        assert!(err < 1.0, "but coarsely bounded (err={err})");
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let (a, _) = workload(8, 9);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        assert!(solve(&mut engine, &mut prep, &[1.0; 4], &IoConfig::ideal()).is_err());
    }

    #[test]
    fn prepared_partition_reusable_across_rhs() {
        let (a, _) = workload(8, 10);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_matrix(&mut engine, &a).unwrap();
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let b = generate::random_vector(8, &mut rng);
            let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
            let x_ref = lu::solve(&a, &b).unwrap();
            assert!(vector::approx_eq(&sol.x, &x_ref, 1e-9));
        }
        // Arrays were programmed exactly once despite three solves.
        assert_eq!(engine.stats().program_ops, 4);
    }
}

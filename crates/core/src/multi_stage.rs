//! Arbitrary-depth recursive BlockAMC (generalization of the paper's
//! two-stage solver).
//!
//! The paper notes that "for an arbitrarily sized matrix, it can be
//! partitioned stage by stage, resulting eventually in small scale block
//! matrices that can be accommodated in memory arrays", and Fig. 8(d)
//! supports "the scalability of this method towards larger scale INV
//! problems through deeper partitioning". This module implements that
//! generalization: a partition *tree* of depth `d` whose leaves are
//! engine-programmed arrays of size ≈ `n / 2^d`.
//!
//! MVM blocks are executed directly on engine arrays at their natural
//! block size (forward partitioning of MVM is routine — refs. \[13\]–\[15\]
//! of the paper — and orthogonal to the INV recursion studied here).

use amc_linalg::{vector, Matrix};

use crate::engine::{AmcEngine, Operand};
use crate::partition::BlockPartition;
use crate::{BlockAmcError, Result};

/// A node of the prepared partition tree.
#[derive(Debug, Clone)]
enum Node {
    /// A leaf: the whole block is programmed on one array.
    Leaf(Operand),
    /// An internal node: the block is solved by the five-step algorithm
    /// over its children.
    Split {
        split: usize,
        size: usize,
        a1: Box<Node>,
        a4s: Box<Node>,
        /// `None` for a zero block.
        a2: Option<Operand>,
        /// `None` for a zero block.
        a3: Option<Operand>,
    },
}

/// A matrix prepared for multi-stage BlockAMC solving.
#[derive(Debug, Clone)]
pub struct PreparedMultiStage {
    root: Node,
    n: usize,
    depth: usize,
}

impl PreparedMultiStage {
    /// Problem size `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Partitioning depth (0 = single array, 1 = one-stage, 2 = two-stage
    /// INV recursion, …).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Largest array (leaf block) size in the tree.
    pub fn max_leaf_size(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(op) => op.shape().0.max(op.shape().1),
                Node::Split { a1, a4s, a2, a3, .. } => {
                    let mut m = walk(a1).max(walk(a4s));
                    if let Some(op) = a2 {
                        m = m.max(op.shape().0.max(op.shape().1));
                    }
                    if let Some(op) = a3 {
                        m = m.max(op.shape().0.max(op.shape().1));
                    }
                    m
                }
            }
        }
        walk(&self.root)
    }
}

fn prepare_node<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    depth: usize,
) -> Result<Node> {
    if depth == 0 || a.rows() < 2 {
        return Ok(Node::Leaf(engine.program(a)?));
    }
    let p = BlockPartition::halves(a)?;
    let a4s = p.schur_complement()?;
    let a1 = prepare_node(engine, &p.a1, depth - 1)?;
    let a4s_node = prepare_node(engine, &a4s, depth - 1)?;
    let a2 = if p.a2.is_zero() {
        None
    } else {
        Some(engine.program(&p.a2)?)
    };
    let a3 = if p.a3.is_zero() {
        None
    } else {
        Some(engine.program(&p.a3)?)
    };
    Ok(Node::Split {
        split: p.split,
        size: p.size(),
        a1: Box::new(a1),
        a4s: Box::new(a4s_node),
        a2,
        a3,
    })
}

/// Computes `−block⁻¹·b` recursively (the AMC sign convention, so the
/// recursion composes exactly like cascaded INV circuits).
fn inv_signed<E: AmcEngine + ?Sized>(
    engine: &mut E,
    node: &mut Node,
    b: &[f64],
) -> Result<Vec<f64>> {
    match node {
        Node::Leaf(op) => engine.inv(op, b),
        Node::Split {
            split,
            size,
            a1,
            a4s,
            a2,
            a3,
        } => {
            let split = *split;
            let bottom = *size - split;
            let f = &b[..split];
            let g = &b[split..];
            // Step 1: −y_t.
            let neg_yt = inv_signed(engine, a1, f)?;
            // Step 2: g_t = −A3·(−y_t).
            let gt = match a3.as_mut() {
                Some(op) => engine.mvm(op, &neg_yt)?,
                None => vec![0.0; bottom],
            };
            // Step 3: z = −A4s⁻¹·(g_t − g).
            let input3 = vector::sub(&gt, g);
            let z = inv_signed(engine, a4s, &input3)?;
            // Step 4: −f_t = −A2·z.
            let neg_ft = match a2.as_mut() {
                Some(op) => engine.mvm(op, &z)?,
                None => vec![0.0; split],
            };
            // Step 5: −y = −A1⁻¹·(f − f_t).
            let input5 = vector::add(f, &neg_ft);
            let neg_y = inv_signed(engine, a1, &input5)?;
            // This node's "INV output" must be −x for the parent cascade:
            // x = [y; z] with y = −neg_y, so −x = [neg_y; −z].
            Ok(vector::concat(&neg_y, &vector::neg(&z)))
        }
    }
}

/// Partitions `a` recursively to `depth` and programs all leaves.
///
/// # Errors
///
/// Partitioning, Schur, and programming failures. `depth` may exceed
/// `log2(n)`; recursion stops early at 1×1 blocks.
pub fn prepare<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    depth: usize,
) -> Result<PreparedMultiStage> {
    if !a.is_square() {
        return Err(BlockAmcError::ShapeMismatch {
            op: "multi_stage prepare",
            expected: a.rows(),
            got: a.cols(),
        });
    }
    Ok(PreparedMultiStage {
        n: a.rows(),
        root: prepare_node(engine, a, depth)?,
        depth,
    })
}

/// Solves `A·x = b` with the prepared partition tree.
///
/// # Errors
///
/// Shape mismatches and engine failures.
pub fn solve<E: AmcEngine + ?Sized>(
    engine: &mut E,
    prepared: &mut PreparedMultiStage,
    b: &[f64],
) -> Result<Vec<f64>> {
    if b.len() != prepared.n {
        return Err(BlockAmcError::ShapeMismatch {
            op: "multi_stage_solve",
            expected: prepared.n,
            got: b.len(),
        });
    }
    let neg_x = inv_signed(engine, &mut prepared.root, b)?;
    Ok(vector::neg(&neg_x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
    use amc_linalg::{generate, lu, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn depth_zero_is_single_array() {
        let (a, b) = workload(8, 1);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a, 0).unwrap();
        assert_eq!(prep.max_leaf_size(), 8);
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x, &x_ref, 1e-10));
        assert_eq!(engine.stats().program_ops, 1);
    }

    #[test]
    fn depths_match_exact_solution() {
        let (a, b) = workload(16, 2);
        let x_ref = lu::solve(&a, &b).unwrap();
        for depth in 0..=4 {
            let mut engine = NumericEngine::new();
            let mut prep = prepare(&mut engine, &a, depth).unwrap();
            let x = solve(&mut engine, &mut prep, &b).unwrap();
            assert!(
                metrics::relative_error(&x_ref, &x) < 1e-8,
                "depth {depth} diverged"
            );
        }
    }

    #[test]
    fn leaf_size_halves_per_stage() {
        let (a, _) = workload(32, 3);
        let mut engine = NumericEngine::new();
        let d1 = prepare(&mut engine, &a, 1).unwrap();
        assert_eq!(d1.max_leaf_size(), 16);
        let d2 = prepare(&mut engine, &a, 2).unwrap();
        assert_eq!(d2.max_leaf_size(), 16); // MVM blocks stay at n/2
        // INV leaves shrink though: count leaves of size 8.
        let d3 = prepare(&mut engine, &a, 3).unwrap();
        assert_eq!(d3.depth(), 3);
    }

    #[test]
    fn excessive_depth_stops_at_1x1() {
        let (a, b) = workload(4, 4);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a, 10).unwrap();
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x, &x_ref, 1e-8));
    }

    #[test]
    fn odd_sizes_at_depth_two() {
        let (a, b) = workload(13, 5);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a, 2).unwrap();
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(metrics::relative_error(&x_ref, &x) < 1e-8);
    }

    #[test]
    fn circuit_engine_depth_two_with_variation() {
        let (a, b) = workload(16, 6);
        let mut engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 31);
        let mut prep = prepare(&mut engine, &a, 2).unwrap();
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        let err = metrics::relative_error(&x_ref, &x);
        assert!(err > 1e-6 && err < 1.0, "err={err}");
    }

    #[test]
    fn non_square_and_wrong_rhs_rejected() {
        let mut engine = NumericEngine::new();
        assert!(prepare(&mut engine, &Matrix::zeros(2, 3), 1).is_err());
        let (a, _) = workload(8, 7);
        let mut prep = prepare(&mut engine, &a, 1).unwrap();
        assert!(solve(&mut engine, &mut prep, &[0.0; 3]).is_err());
    }
}

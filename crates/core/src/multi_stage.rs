//! Arbitrary-depth recursive BlockAMC — **the single execution core**.
//!
//! The paper notes that "for an arbitrarily sized matrix, it can be
//! partitioned stage by stage, resulting eventually in small scale block
//! matrices that can be accommodated in memory arrays", and Fig. 8(d)
//! supports "the scalability of this method towards larger scale INV
//! problems through deeper partitioning". This module implements that
//! generalization — and, since the one-stage and two-stage solvers are
//! just depth-1 and depth-2 instances of the same five-step cascade,
//! it also hosts the one implementation of that cascade
//! (`run_cascade`, crate-internal) that [`crate::one_stage`] and
//! [`crate::two_stage`] delegate to.
//!
//! The cascade is written once over two small traits:
//!
//! * `InvExec` — "something that can run a (signed) INV": a programmed
//!   array ([`Operand`]), a prepared one-stage macro, or a deeper
//!   partition-tree node;
//! * `MvmExec` — "something that can run a (signed) MVM": a whole
//!   array or a quadrant-tiled one ([`crate::two_stage::TiledMvm`]).
//!
//! What distinguishes the solvers is only their *signal path*, captured
//! per cascade level by [`LevelIo`] and assembled into a per-level
//! [`SignalPlan`]:
//!
//! | Policy  | Entry   | Between steps        | Exit   | Used by |
//! |---------|---------|----------------------|--------|---------|
//! | `Macro` | DAC     | S&H cascades         | ADC    | [`crate::one_stage`] (and the inner macros of two-stage) |
//! | `Bus`   | DAC     | ADC→DAC bus hops     | ADC    | [`crate::two_stage`] first stage |
//! | `Pure`  | —       | — (ideal analog)     | —      | this module's tree recursion (default) |
//!
//! MVM blocks are executed directly on engine arrays at their natural
//! block size by default (forward partitioning of MVM is routine —
//! refs. \[13\]–\[15\] of the paper — and orthogonal to the INV
//! recursion studied here); [`PartitionPlan::paper`] reproduces the
//! paper's two-stage layout instead, tiling them into quadrants.

use amc_linalg::{vector, Matrix};
use amc_obs::Recorder;

use crate::converter::IoConfig;
use crate::engine::{AmcEngine, Operand};
use crate::one_stage::{StepId, StepRecord};
use crate::partition::BlockPartition;
use crate::split_search::{self, SplitSearchOptions};
use crate::{BlockAmcError, Result};

// ---------------------------------------------------------------------
// The execution core shared by all three solvers.
// ---------------------------------------------------------------------

/// Signal-path policy of one cascade level (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StageIo {
    /// Ideal analog recursion: no converters, no hops.
    Pure,
    /// One reconfigurable macro: DAC at entry, S&H between steps, ADC at
    /// exit, per-step trace records.
    Macro,
    /// Bus-connected macros (paper §III.C): every inter-macro value is
    /// "converted and stored in the main memory, which in turn will be
    /// converted back", i.e. crosses ADC then DAC.
    Bus,
}

/// Signal-path policy of one cascade level, with its converter
/// configuration — the public, per-level generalization of the
/// hard-wired Macro-at-leaf / Bus-at-two-stage layout.
///
/// A [`SignalPlan`] assigns one `LevelIo` to each cascade depth: the
/// root cascade is level 0, its `A1`/`A4s` sub-solvers are level 1, and
/// so on. Levels beyond the plan run [`LevelIo::Pure`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LevelIo {
    /// Ideal analog recursion: no converters, no hops (the default for
    /// levels a plan does not mention).
    Pure,
    /// A reconfigurable macro level: DAC at entry, S&H hops between the
    /// five steps, ADC at exit, per-step trace records.
    Macro(IoConfig),
    /// A bus-connected level (paper §III.C): external inputs cross the
    /// DAC, and every inter-macro value crosses ADC then DAC on its way
    /// through main memory.
    Bus(IoConfig),
}

impl LevelIo {
    /// The converter configuration of this level (`None` for
    /// [`LevelIo::Pure`]).
    pub fn io(&self) -> Option<&IoConfig> {
        match self {
            LevelIo::Pure => None,
            LevelIo::Macro(io) | LevelIo::Bus(io) => Some(io),
        }
    }

    /// Splits into the internal cascade policy and the level's
    /// converter configuration (ideal for `Pure`).
    pub(crate) fn stage_io(&self) -> (StageIo, IoConfig) {
        match self {
            LevelIo::Pure => (StageIo::Pure, IoConfig::ideal()),
            LevelIo::Macro(io) => (StageIo::Macro, *io),
            LevelIo::Bus(io) => (StageIo::Bus, *io),
        }
    }

    /// Validates the level's converter configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`IoConfig::validate`] failures.
    pub fn validate(&self) -> Result<()> {
        match self.io() {
            Some(io) => io.validate(),
            None => Ok(()),
        }
    }
}

/// A per-level signal-path plan for a cascade of any depth.
///
/// Entry `k` of the plan is applied at cascade level `k` (the root is
/// level 0); levels past the end of the plan run ideal analog
/// ([`LevelIo::Pure`]). The paper's two solvers are the two smallest
/// instances: the one-stage macro is `[Macro]` and the two-stage
/// bus-connected architecture is `[Bus, Macro]` — see
/// [`SignalPlan::paper`].
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SignalPlan {
    levels: Vec<LevelIo>,
}

impl SignalPlan {
    /// The fully analog plan: every level is [`LevelIo::Pure`].
    pub fn pure() -> Self {
        SignalPlan { levels: Vec::new() }
    }

    /// Builds a plan from explicit per-level entries (entry 0 = root).
    pub fn from_levels(levels: Vec<LevelIo>) -> Self {
        SignalPlan { levels }
    }

    /// The paper's architecture at the given depth: bus-connected levels
    /// above, one macro level at the bottom of the cascade. `paper(1)`
    /// is the one-stage macro (`[Macro]`), `paper(2)` the two-stage
    /// bus-connected solver (`[Bus, Macro]`), `paper(3)` adds one more
    /// bus hop (`[Bus, Bus, Macro]`), and so on. `paper(0)` treats the
    /// single array as a macro (DAC in, ADC out).
    pub fn paper(depth: usize, io: IoConfig) -> Self {
        let mut levels = vec![LevelIo::Bus(io); depth.saturating_sub(1)];
        levels.push(LevelIo::Macro(io));
        SignalPlan { levels }
    }

    /// A bus hop at every one of `depth` levels — the configuration for
    /// studying how many ADC/DAC crossings deep cascades tolerate.
    /// `uniform_bus(0, ..)` is the empty (fully pure) plan.
    pub fn uniform_bus(depth: usize, io: IoConfig) -> Self {
        SignalPlan {
            levels: vec![LevelIo::Bus(io); depth],
        }
    }

    /// Replaces the entry at `level`, padding intermediate levels with
    /// [`LevelIo::Pure`] if the plan is shorter.
    pub fn with_level(mut self, level: usize, entry: LevelIo) -> Self {
        if self.levels.len() <= level {
            self.levels.resize(level + 1, LevelIo::Pure);
        }
        self.levels[level] = entry;
        self
    }

    /// The explicit entries of the plan (levels beyond run `Pure`).
    pub fn levels(&self) -> &[LevelIo] {
        &self.levels
    }

    /// The entry applied at cascade level `k`.
    pub fn level(&self, k: usize) -> LevelIo {
        self.levels.get(k).copied().unwrap_or(LevelIo::Pure)
    }

    /// Validates every level's converter configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`IoConfig::validate`] failures.
    pub fn validate(&self) -> Result<()> {
        for level in &self.levels {
            level.validate()?;
        }
        Ok(())
    }

    pub(crate) fn path(&self) -> SignalPath<'_> {
        SignalPath::new(&self.levels)
    }
}

/// A borrowed suffix of a [`SignalPlan`], threaded down the cascade:
/// the head entry is the current level's policy, the tail is what the
/// `A1`/`A4s` sub-executors receive.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SignalPath<'a> {
    levels: &'a [LevelIo],
}

impl<'a> SignalPath<'a> {
    pub(crate) fn new(levels: &'a [LevelIo]) -> Self {
        SignalPath { levels }
    }

    fn head(&self) -> LevelIo {
        self.levels.first().copied().unwrap_or(LevelIo::Pure)
    }

    fn tail(&self) -> SignalPath<'a> {
        SignalPath {
            levels: if self.levels.is_empty() {
                self.levels
            } else {
                &self.levels[1..]
            },
        }
    }
}

/// Trace sink threaded through a cascade.
///
/// `steps` collects the five [`StepRecord`]s of a `Macro`-policy
/// cascade; `inner` collects the labeled child-macro traces a
/// `Bus`-policy cascade captures for its step-3 (`"A4s"`) and step-5
/// (`"A1"`) INV operations.
#[derive(Debug, Default)]
pub(crate) struct TraceLog {
    enabled: bool,
    pub(crate) steps: Vec<StepRecord>,
    pub(crate) inner: Vec<(String, Vec<StepRecord>)>,
}

impl TraceLog {
    fn new(enabled: bool) -> Self {
        TraceLog {
            enabled,
            steps: Vec::new(),
            inner: Vec::new(),
        }
    }

    pub(crate) fn enabled() -> Self {
        Self::new(true)
    }

    pub(crate) fn disabled() -> Self {
        Self::new(false)
    }

    fn record(&mut self, step: StepId, input: &[f64], output: &[f64]) {
        if self.enabled {
            self.steps.push(StepRecord {
                step,
                input: input.to_vec(),
                output: output.to_vec(),
            });
        }
    }

    fn capture_inner(&mut self, label: &str, sub: TraceLog) {
        if self.enabled {
            self.inner.push((label.to_string(), sub.steps));
            self.inner.extend(sub.inner);
        }
    }
}

/// An executor of a signed INV: computes `−block⁻¹·b` (the AMC sign
/// convention, so executors compose exactly like cascaded INV circuits).
///
/// Implemented by [`Operand`] (a single array), by
/// [`crate::one_stage::PreparedOneStage`] (a whole macro), and by
/// [`Node`] (a partition subtree).
pub(crate) trait InvExec<E: AmcEngine + ?Sized> {
    #[allow(clippy::too_many_arguments)] // signal path + signal log + span recorder
    fn inv_signed(
        &mut self,
        engine: &mut E,
        b: &[f64],
        path: SignalPath<'_>,
        log: &mut TraceLog,
        rec: &mut Recorder,
    ) -> Result<Vec<f64>>;
}

/// An executor of a signed MVM: computes `−M·x`.
///
/// Implemented by [`Operand`] and [`crate::two_stage::TiledMvm`].
pub(crate) trait MvmExec<E: AmcEngine + ?Sized> {
    fn mvm_signed(&mut self, engine: &mut E, x: &[f64]) -> Result<Vec<f64>>;
}

/// Executes the paper's five-step algorithm (Fig. 2 / Algorithm 1) once,
/// for every solver in the crate. Returns `−x` so that cascades compose.
///
/// The head of `path` is this cascade's signal-path policy; the tail is
/// handed to the `A1`/`A4s` executors, so a multi-level [`SignalPlan`]
/// descends the tree one entry per stage.
///
/// Zero blocks (`a2`/`a3` = `None`) skip their MVM step entirely:
/// `g_t`/`f_t` are zero and nothing is recorded, exactly as the hardware
/// would leave those arrays unprogrammed.
#[allow(clippy::too_many_arguments)] // the five-step dataflow really has this arity
pub(crate) fn run_cascade<E, I, M>(
    engine: &mut E,
    split: usize,
    a1: &mut I,
    a4s: &mut I,
    a2: Option<&mut M>,
    a3: Option<&mut M>,
    b: &[f64],
    path: SignalPath<'_>,
    log: &mut TraceLog,
    rec: &mut Recorder,
) -> Result<Vec<f64>>
where
    E: AmcEngine + ?Sized,
    I: InvExec<E>,
    M: MvmExec<E>,
{
    let (policy, io) = path.head().stage_io();
    let io = &io;
    let inner = path.tail();
    let bottom = b.len() - split;
    // External inputs cross the DAC at macro/bus entries; the pure
    // recursion stays analog.
    let (f, g) = match policy {
        StageIo::Pure => (b[..split].to_vec(), b[split..].to_vec()),
        StageIo::Macro | StageIo::Bus => (io.apply_dac(&b[..split]), io.apply_dac(&b[split..])),
    };
    let bus = |v: &[f64]| io.apply_dac(&io.apply_adc(v));

    // Step 1: INV(A1, f) -> −y_t = −A1⁻¹·f.
    let span = rec.enter("cascade.inv1");
    let neg_yt = match policy {
        StageIo::Bus => {
            let c1 = a1.inv_signed(engine, &f, inner, &mut TraceLog::disabled(), rec)?;
            bus(&c1)
        }
        _ => {
            let out = a1.inv_signed(engine, &f, inner, &mut TraceLog::disabled(), rec)?;
            log.record(StepId::Inv1, &f, &out);
            out
        }
    };
    rec.exit_with(span, &[("n", split as f64)]);

    // Step 2: MVM(A3, −y_t) -> g_t (= −A3·(−y_t)).
    let span = rec.enter("cascade.mvm2");
    let gt = match a3 {
        Some(m) => {
            let sh_input;
            let input: &[f64] = match policy {
                StageIo::Macro => {
                    sh_input = io.apply_sh(&neg_yt);
                    &sh_input
                }
                _ => &neg_yt,
            };
            let out = m.mvm_signed(engine, input)?;
            match policy {
                StageIo::Bus => bus(&out),
                _ => {
                    log.record(StepId::Mvm2, input, &out);
                    out
                }
            }
        }
        None => vec![0.0; bottom],
    };
    rec.exit(span);

    // Step 3: INV(A4s, g_t − g) -> z (the bottom half of x).
    // The owned g/g_t vectors die here, so the subtractions reuse their
    // buffers instead of allocating per phase.
    let span = rec.enter("cascade.inv3");
    let z = match policy {
        StageIo::Bus => {
            // The inner macro is handed the right-hand side g − g_t and
            // returns +z, keeping its trace signals oriented exactly as
            // the bus-connected architecture observes them.
            let mut rhs3 = g;
            vector::sub_assign(&mut rhs3, &gt);
            let mut sub = TraceLog::new(log.enabled);
            let mut c3 = a4s.inv_signed(engine, &rhs3, inner, &mut sub, rec)?;
            log.capture_inner("A4s", sub);
            vector::neg_in_place(&mut c3);
            c3
        }
        _ => {
            let mut input3 = match policy {
                StageIo::Macro => io.apply_sh(&gt),
                _ => gt,
            };
            vector::sub_assign(&mut input3, &g);
            let out = a4s.inv_signed(engine, &input3, inner, &mut TraceLog::disabled(), rec)?;
            log.record(StepId::Inv3, &input3, &out);
            out
        }
    };
    rec.exit_with(span, &[("n", bottom as f64)]);
    // The value step 4 consumes and the exit re-reads: the bus hop for
    // inter-macro transfers, the raw analog z otherwise.
    let z_held = match policy {
        StageIo::Bus => bus(&z),
        _ => z,
    };

    // Step 4: MVM(A2, z) -> −f_t = −A2·z.
    let span = rec.enter("cascade.mvm4");
    let neg_ft = match a2 {
        Some(m) => {
            let sh_input;
            let input: &[f64] = match policy {
                StageIo::Macro => {
                    sh_input = io.apply_sh(&z_held);
                    &sh_input
                }
                _ => &z_held,
            };
            let out = m.mvm_signed(engine, input)?;
            match policy {
                StageIo::Bus => bus(&out),
                _ => {
                    log.record(StepId::Mvm4, input, &out);
                    out
                }
            }
        }
        None => vec![0.0; split],
    };
    rec.exit(span);

    // Step 5: INV(A1, f − f_t) -> −y (the negated upper half of x),
    // reusing the very same A1 executor as step 1 — the paper's "the A1
    // array should be used twice", so both steps see one variation draw.
    // −f_t is owned and dead after this step; its buffer carries the sum.
    let mut input5 = match policy {
        StageIo::Macro => io.apply_sh(&neg_ft),
        _ => neg_ft,
    };
    vector::add_assign(&mut input5, &f);
    let span = rec.enter("cascade.inv5");
    let c5 = match policy {
        StageIo::Bus => {
            let mut sub = TraceLog::new(log.enabled);
            let c5 = a1.inv_signed(engine, &input5, inner, &mut sub, rec)?;
            log.capture_inner("A1", sub);
            c5
        }
        _ => {
            let out = a1.inv_signed(engine, &input5, inner, &mut TraceLog::disabled(), rec)?;
            log.record(StepId::Inv5, &input5, &out);
            out
        }
    };
    rec.exit_with(span, &[("n", split as f64)]);

    // This node's "INV output" must be −x for the parent cascade:
    // x = [y; z] with y = −c5, so −x = [c5; −z]. The tail buffer is
    // negated in place before the single concat allocation.
    Ok(match policy {
        StageIo::Pure => {
            let mut tail = z_held;
            vector::neg_in_place(&mut tail);
            vector::concat(&c5, &tail)
        }
        StageIo::Macro | StageIo::Bus => {
            let head = io.apply_adc(&c5);
            let mut tail = io.apply_adc(&z_held);
            vector::neg_in_place(&mut tail);
            vector::concat(&head, &tail)
        }
    })
}

// ---------------------------------------------------------------------
// The partition tree.
// ---------------------------------------------------------------------

/// An MVM block of a partition-tree node.
#[derive(Debug, Clone)]
pub(crate) enum MvmBlock {
    /// The whole block programmed on one array.
    Whole(Operand),
    /// The block tiled into quadrants (the paper's layout); boxed to
    /// keep the enum lean next to [`MvmBlock::Whole`].
    Tiled(Box<QuadMvm>),
}

/// A quadrant decomposition of an MVM block whose tiles recurse while
/// tiling levels remain — the multi-level generalization of the
/// one-level [`crate::two_stage::TiledMvm`], so that a depth-`d` paper layout shrinks
/// MVM arrays to the same size as its INV leaves. One level of
/// quadrants over whole-array tiles is executed identically to
/// [`crate::two_stage::TiledMvm`] (same quadrant order, zero-tile skipping, and partial
/// sums), which is what makes the two-stage wrapper bit-equivalent to
/// `PartitionPlan::paper(2)`.
#[derive(Debug, Clone)]
pub(crate) struct QuadMvm {
    rows: usize,
    cols: usize,
    row_split: usize,
    col_split: usize,
    /// Quadrants in row-major order: `[top-left, top-right,
    /// bottom-left, bottom-right]`; `None` marks a zero tile.
    tiles: [Option<MvmBlock>; 4],
}

impl QuadMvm {
    fn prepare<E: AmcEngine + ?Sized>(engine: &mut E, m: &Matrix, levels: usize) -> Result<Self> {
        let (rows, cols) = m.shape();
        let row_split = rows.div_ceil(2);
        let col_split = cols.div_ceil(2);
        let quadrants = [
            m.block(0, 0, row_split, col_split)?,
            m.block(0, col_split, row_split, cols - col_split)?,
            m.block(row_split, 0, rows - row_split, col_split)?,
            m.block(row_split, col_split, rows - row_split, cols - col_split)?,
        ];
        let mut tiles: [Option<MvmBlock>; 4] = [None, None, None, None];
        for (slot, q) in tiles.iter_mut().zip(quadrants.iter()) {
            *slot = prepare_mvm_tile(engine, q, levels - 1)?;
        }
        Ok(QuadMvm {
            rows,
            cols,
            row_split,
            col_split,
            tiles,
        })
    }

    fn mvm<E: AmcEngine + ?Sized>(&mut self, engine: &mut E, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(BlockAmcError::ShapeMismatch {
                op: "quad_mvm",
                expected: self.cols,
                got: x.len(),
            });
        }
        let (xt, xb) = (&x[..self.col_split], &x[self.col_split..]);
        let mut top = vec![0.0; self.row_split];
        let mut bottom = vec![0.0; self.rows - self.row_split];
        // Summing the tiles' signed outputs preserves the AMC sign,
        // exactly as TiledMvm::mvm. One scratch buffer serves all four
        // quadrants (whole-array tiles write into it via the engine's
        // buffer-reusing `mvm_into`), so a quadrant level costs one
        // allocation instead of one per non-zero tile.
        let mut scratch = Vec::new();
        let accumulate = |engine: &mut E,
                          tile: Option<&mut MvmBlock>,
                          input: &[f64],
                          acc: &mut [f64],
                          scratch: &mut Vec<f64>|
         -> Result<()> {
            if let Some(t) = tile {
                match t {
                    MvmBlock::Whole(op) => engine.mvm_into(op, input, scratch)?,
                    MvmBlock::Tiled(q) => *scratch = q.mvm(engine, input)?,
                }
                vector::axpy(1.0, scratch.as_slice(), acc);
            }
            Ok(())
        };
        let [t0, t1, t2, t3] = &mut self.tiles;
        accumulate(engine, t0.as_mut(), xt, &mut top, &mut scratch)?;
        accumulate(engine, t1.as_mut(), xb, &mut top, &mut scratch)?;
        accumulate(engine, t2.as_mut(), xt, &mut bottom, &mut scratch)?;
        accumulate(engine, t3.as_mut(), xb, &mut bottom, &mut scratch)?;
        Ok(vector::concat(&top, &bottom))
    }

    fn max_tile_dim(&self) -> usize {
        self.tiles
            .iter()
            .flatten()
            .map(MvmBlock::max_array_dim)
            .max()
            .unwrap_or(0)
    }
}

impl<E: AmcEngine + ?Sized> MvmExec<E> for MvmBlock {
    fn mvm_signed(&mut self, engine: &mut E, x: &[f64]) -> Result<Vec<f64>> {
        match self {
            MvmBlock::Whole(op) => engine.mvm(op, x),
            MvmBlock::Tiled(t) => t.mvm(engine, x),
        }
    }
}

impl MvmBlock {
    fn max_array_dim(&self) -> usize {
        match self {
            MvmBlock::Whole(op) => op.shape().0.max(op.shape().1),
            MvmBlock::Tiled(t) => t.max_tile_dim(),
        }
    }
}

/// A node of the prepared partition tree.
#[derive(Debug, Clone)]
enum Node {
    /// A leaf: the whole block is programmed on one array.
    Leaf(Operand),
    /// An internal node: the block is solved by the five-step algorithm
    /// over its children.
    Split {
        split: usize,
        a1: Box<Node>,
        a4s: Box<Node>,
        /// `None` for a zero block.
        a2: Option<MvmBlock>,
        /// `None` for a zero block.
        a3: Option<MvmBlock>,
    },
}

impl<E: AmcEngine + ?Sized> InvExec<E> for Node {
    fn inv_signed(
        &mut self,
        engine: &mut E,
        b: &[f64],
        path: SignalPath<'_>,
        log: &mut TraceLog,
        rec: &mut Recorder,
    ) -> Result<Vec<f64>> {
        match self {
            Node::Leaf(op) => {
                let span = rec.enter("engine.inv");
                let out = engine.inv(op, b)?;
                rec.exit_with(span, &[("n", b.len() as f64)]);
                Ok(out)
            }
            Node::Split {
                split,
                a1,
                a4s,
                a2,
                a3,
            } => run_cascade(
                engine,
                *split,
                a1.as_mut(),
                a4s.as_mut(),
                a2.as_mut(),
                a3.as_mut(),
                b,
                path,
                log,
                rec,
            ),
        }
    }
}

/// How a matrix is recursively partitioned onto arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionPlan {
    /// Partitioning depth (0 = single array, 1 = one-stage, 2 =
    /// two-stage INV recursion, …).
    pub depth: usize,
    /// Tile MVM blocks into quadrants wherever their level's INV blocks
    /// are split further — the paper's two-stage layout (16 quarter-size
    /// arrays at depth 2) instead of natural-size MVM arrays.
    pub tile_mvm: bool,
    /// How the split index is chosen at every node.
    pub split: SplitRule,
}

/// Split-index selection rule of a [`PartitionPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SplitRule {
    /// The paper's default `⌈n/2⌉` everywhere.
    Halves,
    /// Conditioning-driven per-node search (see [`crate::split_search`];
    /// nodes smaller than 4 fall back to halves).
    Searched(SplitSearchOptions),
}

impl PartitionPlan {
    /// Natural-size MVM blocks and midpoint splits at the given depth —
    /// the layout the plain [`prepare`] entry point uses.
    pub fn depth(depth: usize) -> Self {
        PartitionPlan {
            depth,
            tile_mvm: false,
            split: SplitRule::Halves,
        }
    }

    /// The paper's macro layout at the given depth: MVM blocks tiled
    /// into quadrants. `PartitionPlan::paper(2)` is the two-stage
    /// solver's exact array inventory.
    pub fn paper(depth: usize) -> Self {
        PartitionPlan {
            depth,
            tile_mvm: true,
            split: SplitRule::Halves,
        }
    }

    /// Replaces the split rule.
    pub fn with_split_rule(mut self, split: SplitRule) -> Self {
        self.split = split;
        self
    }
}

/// A matrix prepared for multi-stage BlockAMC solving.
#[derive(Debug, Clone)]
pub struct PreparedMultiStage {
    root: Node,
    n: usize,
    plan: PartitionPlan,
}

impl PreparedMultiStage {
    /// Problem size `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Partitioning depth (0 = single array, 1 = one-stage, 2 = two-stage
    /// INV recursion, …).
    pub fn depth(&self) -> usize {
        self.plan.depth
    }

    /// The plan this tree was built with.
    pub fn plan(&self) -> PartitionPlan {
        self.plan
    }

    /// Visits every programmed operand in **canonical program order** —
    /// the exact order [`prepare_node`]/[`program_tree`] issued the
    /// `program` calls (a1 subtree, a2 tile, a3 tile, a4s subtree;
    /// quadrant tiles in row-major `[TL, TR, BL, BR]` order) — so
    /// callers can snapshot per-array state under a stable index.
    pub(crate) fn for_each_operand(&self, f: &mut dyn FnMut(usize, &Operand)) {
        fn visit_block(block: &MvmBlock, idx: &mut usize, f: &mut dyn FnMut(usize, &Operand)) {
            match block {
                MvmBlock::Whole(op) => {
                    f(*idx, op);
                    *idx += 1;
                }
                MvmBlock::Tiled(q) => {
                    for tile in q.tiles.iter().flatten() {
                        visit_block(tile, idx, f);
                    }
                }
            }
        }
        fn visit(node: &Node, idx: &mut usize, f: &mut dyn FnMut(usize, &Operand)) {
            match node {
                Node::Leaf(op) => {
                    f(*idx, op);
                    *idx += 1;
                }
                Node::Split {
                    a1, a4s, a2, a3, ..
                } => {
                    visit(a1, idx, f);
                    if let Some(block) = a2 {
                        visit_block(block, idx, f);
                    }
                    if let Some(block) = a3 {
                        visit_block(block, idx, f);
                    }
                    visit(a4s, idx, f);
                }
            }
        }
        let mut idx = 0;
        visit(&self.root, &mut idx, f);
    }

    /// Mutable [`Self::for_each_operand`]: same canonical order, but the
    /// callback may replace each operand (the aging layer reprograms
    /// arrays in place through the engine).
    pub(crate) fn for_each_operand_mut(
        &mut self,
        f: &mut dyn FnMut(usize, &mut Operand) -> Result<()>,
    ) -> Result<()> {
        fn visit_block(
            block: &mut MvmBlock,
            idx: &mut usize,
            f: &mut dyn FnMut(usize, &mut Operand) -> Result<()>,
        ) -> Result<()> {
            match block {
                MvmBlock::Whole(op) => {
                    f(*idx, op)?;
                    *idx += 1;
                }
                MvmBlock::Tiled(q) => {
                    for tile in q.tiles.iter_mut().flatten() {
                        visit_block(tile, idx, f)?;
                    }
                }
            }
            Ok(())
        }
        fn visit(
            node: &mut Node,
            idx: &mut usize,
            f: &mut dyn FnMut(usize, &mut Operand) -> Result<()>,
        ) -> Result<()> {
            match node {
                Node::Leaf(op) => {
                    f(*idx, op)?;
                    *idx += 1;
                }
                Node::Split {
                    a1, a4s, a2, a3, ..
                } => {
                    visit(a1, idx, f)?;
                    if let Some(block) = a2 {
                        visit_block(block, idx, f)?;
                    }
                    if let Some(block) = a3 {
                        visit_block(block, idx, f)?;
                    }
                    visit(a4s, idx, f)?;
                }
            }
            Ok(())
        }
        let mut idx = 0;
        visit(&mut self.root, &mut idx, f)
    }

    /// Largest array (leaf or MVM-tile) size in the tree.
    pub fn max_leaf_size(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(op) => op.shape().0.max(op.shape().1),
                Node::Split {
                    a1, a4s, a2, a3, ..
                } => {
                    let mut m = walk(a1).max(walk(a4s));
                    if let Some(block) = a2 {
                        m = m.max(block.max_array_dim());
                    }
                    if let Some(block) = a3 {
                        m = m.max(block.max_array_dim());
                    }
                    m
                }
            }
        }
        walk(&self.root)
    }
}

/// Programs one MVM block, tiling it into quadrants recursively for
/// `levels` levels (0 = whole array). Tiling stops early at blocks
/// thinner than 2 in either dimension.
fn prepare_mvm_tile<E: AmcEngine + ?Sized>(
    engine: &mut E,
    m: &Matrix,
    levels: usize,
) -> Result<Option<MvmBlock>> {
    if m.is_zero() {
        return Ok(None);
    }
    let (rows, cols) = m.shape();
    Ok(Some(if levels >= 1 && rows >= 2 && cols >= 2 {
        MvmBlock::Tiled(Box::new(QuadMvm::prepare(engine, m, levels)?))
    } else {
        MvmBlock::Whole(engine.program(m)?)
    }))
}

fn prepare_node<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    depth: usize,
    plan: &PartitionPlan,
    rec: &mut Recorder,
) -> Result<Node> {
    if depth == 0 || a.rows() < 2 {
        let span = rec.enter("prepare.program");
        let op = engine.program(a)?;
        rec.exit_with(span, &[("n", a.rows() as f64)]);
        return Ok(Node::Leaf(op));
    }
    let node_span = rec.enter("prepare.node");
    let span = rec.enter("prepare.partition");
    let p = match plan.split {
        SplitRule::Halves => BlockPartition::halves(a)?,
        SplitRule::Searched(opts) if a.rows() >= 4 => split_search::best_partition(a, &opts)?,
        SplitRule::Searched(_) => BlockPartition::halves(a)?,
    };
    rec.exit(span);
    let span = rec.enter("prepare.schur");
    let a4s = p.schur_complement()?;
    rec.exit_with(span, &[("n", a4s.rows() as f64)]);
    // Programming order mirrors one_stage::prepare (A1, A2, A3, A4s) so
    // a depth-1 tree consumes the engine's variation stream identically
    // to the one-stage macro — see tests/solver_equivalence.rs.
    let a1 = prepare_node(engine, &p.a1, depth - 1, plan, rec)?;
    // In the paper layout, MVM blocks tile down to the same size as the
    // INV leaves below them: one quadrant level per remaining INV split
    // (depth 2 ⇒ one level, the two-stage inventory; deeper ⇒ recurse).
    let tile_levels = if plan.tile_mvm { depth - 1 } else { 0 };
    let span = rec.enter("prepare.program_mvm");
    let a2 = prepare_mvm_tile(engine, &p.a2, tile_levels)?;
    let a3 = prepare_mvm_tile(engine, &p.a3, tile_levels)?;
    rec.exit(span);
    let a4s_node = prepare_node(engine, &a4s, depth - 1, plan, rec)?;
    rec.exit_with(node_span, &[("n", a.rows() as f64)]);
    Ok(Node::Split {
        split: p.split,
        a1: Box::new(a1),
        a4s: Box::new(a4s_node),
        a2,
        a3,
    })
}

/// Partitions `a` according to `plan` and programs all arrays.
///
/// # Errors
///
/// Partitioning, Schur, and programming failures. `plan.depth` may
/// exceed `log2(n)`; recursion stops early at 1×1 blocks.
pub fn prepare_plan<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    plan: &PartitionPlan,
) -> Result<PreparedMultiStage> {
    prepare_plan_recorded(engine, a, plan, &mut Recorder::disabled())
}

/// [`prepare_plan`] with span tracing: per-level partition / Schur /
/// program-arrays spans are recorded on `rec` (pass
/// [`Recorder::disabled`] for the zero-cost no-op).
///
/// Instrumentation is strictly read-only: the prepared tree is
/// bit-identical to [`prepare_plan`]'s regardless of the recorder.
///
/// # Errors
///
/// Same conditions as [`prepare_plan`].
pub fn prepare_plan_recorded<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    plan: &PartitionPlan,
    rec: &mut Recorder,
) -> Result<PreparedMultiStage> {
    if !a.is_square() {
        return Err(BlockAmcError::ShapeMismatch {
            op: "multi_stage prepare",
            expected: a.rows(),
            got: a.cols(),
        });
    }
    let span = rec.enter("prepare");
    let root = prepare_node(engine, a, plan.depth, plan, rec)?;
    rec.exit_with(
        span,
        &[("n", a.rows() as f64), ("depth", plan.depth as f64)],
    );
    Ok(PreparedMultiStage {
        n: a.rows(),
        root,
        plan: *plan,
    })
}

/// Partitions `a` recursively to `depth` and programs all leaves
/// (midpoint splits, natural-size MVM blocks).
///
/// # Errors
///
/// Same conditions as [`prepare_plan`].
pub fn prepare<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    depth: usize,
) -> Result<PreparedMultiStage> {
    prepare_plan(engine, a, &PartitionPlan::depth(depth))
}

// ---------------------------------------------------------------------
// Parallel prepare: two-phase (parallel plan, serial program).
// ---------------------------------------------------------------------

/// One node of the engine-free plan tree built by the parallel prepare.
///
/// Phase 1 (parallel) computes all partitions and Schur complements —
/// the numeric work of `prepare` — without touching the engine. Phase 2
/// (serial) walks the assembled tree programming arrays in exactly the
/// order [`prepare_node`] would, so the engine's variation stream is
/// consumed identically and the result is bit-identical to a serial
/// prepare at any worker count.
#[derive(Debug)]
enum MatrixTree {
    Leaf(Matrix),
    Split {
        split: usize,
        a1: Box<MatrixTree>,
        a4s: Box<MatrixTree>,
        a2: Matrix,
        a3: Matrix,
        tile_levels: usize,
    },
}

/// A planned node before its subtrees are attached: the per-node output
/// of one parallel `plan_step`, with children returned separately.
#[derive(Debug)]
enum PlannedNode {
    Leaf(Matrix),
    Split {
        split: usize,
        a2: Matrix,
        a3: Matrix,
        tile_levels: usize,
    },
}

/// Partitions one block (split selection + Schur complement) without
/// programming anything. Returns the planned node plus the child blocks
/// (`a1` then `a4s`, each one level shallower) to expand next.
fn plan_step(
    a: Matrix,
    depth: usize,
    plan: &PartitionPlan,
) -> Result<(PlannedNode, Vec<(Matrix, usize)>)> {
    if depth == 0 || a.rows() < 2 {
        return Ok((PlannedNode::Leaf(a), Vec::new()));
    }
    let p = match plan.split {
        SplitRule::Halves => BlockPartition::halves(&a)?,
        SplitRule::Searched(opts) if a.rows() >= 4 => split_search::best_partition(&a, &opts)?,
        SplitRule::Searched(_) => BlockPartition::halves(&a)?,
    };
    let a4s = p.schur_complement()?;
    let tile_levels = if plan.tile_mvm { depth - 1 } else { 0 };
    Ok((
        PlannedNode::Split {
            split: p.split,
            a2: p.a2,
            a3: p.a3,
            tile_levels,
        },
        vec![(p.a1, depth - 1), (a4s, depth - 1)],
    ))
}

/// Phase 1: builds the engine-free [`MatrixTree`] level by level, with
/// every level's partition/Schur work sharded over `workers` threads
/// through [`amc_par::map_indexed`]. The index-preserving merge keeps
/// each level's node order deterministic, so the assembled tree does not
/// depend on the worker count.
fn plan_tree(a: &Matrix, plan: &PartitionPlan, workers: usize) -> Result<MatrixTree> {
    let mut levels: Vec<Vec<PlannedNode>> = Vec::new();
    let mut frontier: Vec<(Matrix, usize)> = vec![(a.clone(), plan.depth)];
    while !frontier.is_empty() {
        let results = amc_par::map_indexed(workers, frontier, |_, (m, d)| plan_step(m, d, plan));
        let mut nodes = Vec::with_capacity(results.len());
        let mut next = Vec::new();
        for r in results {
            let (node, children) = r?;
            nodes.push(node);
            next.extend(children);
        }
        levels.push(nodes);
        frontier = next;
    }
    // Bottom-up assembly: each Split at level L consumes its two
    // children (a1 then a4s, matching the order plan_step emitted them)
    // from the assembled trees of level L+1.
    let mut below: Vec<MatrixTree> = Vec::new();
    for level in levels.into_iter().rev() {
        let mut children = below.into_iter();
        let mut current = Vec::with_capacity(level.len());
        for node in level {
            current.push(match node {
                PlannedNode::Leaf(m) => MatrixTree::Leaf(m),
                PlannedNode::Split {
                    split,
                    a2,
                    a3,
                    tile_levels,
                } => {
                    let a1 = children.next().expect("plan tree child (a1) missing");
                    let a4s = children.next().expect("plan tree child (a4s) missing");
                    MatrixTree::Split {
                        split,
                        a1: Box::new(a1),
                        a4s: Box::new(a4s),
                        a2,
                        a3,
                        tile_levels,
                    }
                }
            });
        }
        debug_assert!(children.next().is_none(), "plan tree child surplus");
        below = current;
    }
    let mut roots = below.into_iter();
    let root = roots.next().expect("plan tree root missing");
    debug_assert!(roots.next().is_none());
    Ok(root)
}

/// Phase 2: programs the planned tree serially, in the exact program-call
/// order of [`prepare_node`] (a1 subtree, a2 tile, a3 tile, a4s subtree).
fn program_tree<E: AmcEngine + ?Sized>(
    engine: &mut E,
    tree: &MatrixTree,
    rec: &mut Recorder,
) -> Result<Node> {
    match tree {
        MatrixTree::Leaf(m) => {
            let span = rec.enter("prepare.program");
            let op = engine.program(m)?;
            rec.exit_with(span, &[("n", m.rows() as f64)]);
            Ok(Node::Leaf(op))
        }
        MatrixTree::Split {
            split,
            a1,
            a4s,
            a2,
            a3,
            tile_levels,
        } => {
            let a1_node = program_tree(engine, a1, rec)?;
            let span = rec.enter("prepare.program_mvm");
            let a2_block = prepare_mvm_tile(engine, a2, *tile_levels)?;
            let a3_block = prepare_mvm_tile(engine, a3, *tile_levels)?;
            rec.exit(span);
            let a4s_node = program_tree(engine, a4s, rec)?;
            Ok(Node::Split {
                split: *split,
                a1: Box::new(a1_node),
                a4s: Box::new(a4s_node),
                a2: a2_block,
                a3: a3_block,
            })
        }
    }
}

/// [`prepare_plan`] with the partition/Schur work sharded over `workers`
/// threads (`amc-par` work-stealing pool; `workers == 1` runs inline).
///
/// Array programming itself stays serial and in canonical order, so the
/// result is **bit-identical** to [`prepare_plan`] at any worker count —
/// including engines whose variation stream depends on program-call
/// order. The parallel win comes from the O(n³) Schur complements at
/// each level, which dominate prepare for depth ≥ 3 trees.
///
/// # Errors
///
/// Same conditions as [`prepare_plan`].
pub fn prepare_plan_workers<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    plan: &PartitionPlan,
    workers: usize,
) -> Result<PreparedMultiStage> {
    prepare_plan_workers_recorded(engine, a, plan, workers, &mut Recorder::disabled())
}

/// [`prepare_plan_workers`] with span tracing: one coarse
/// `prepare.plan` span over the sharded partition/Schur phase (the
/// recorder is single-threaded, so per-node spans are not recorded
/// inside the worker pool) and per-node `prepare.program` spans over
/// the serial programming phase.
///
/// # Errors
///
/// Same conditions as [`prepare_plan`].
pub fn prepare_plan_workers_recorded<E: AmcEngine + ?Sized>(
    engine: &mut E,
    a: &Matrix,
    plan: &PartitionPlan,
    workers: usize,
    rec: &mut Recorder,
) -> Result<PreparedMultiStage> {
    if !a.is_square() {
        return Err(BlockAmcError::ShapeMismatch {
            op: "multi_stage prepare",
            expected: a.rows(),
            got: a.cols(),
        });
    }
    let span = rec.enter("prepare");
    let plan_span = rec.enter("prepare.plan");
    let tree = plan_tree(a, plan, workers)?;
    rec.exit_with(plan_span, &[("workers", workers as f64)]);
    let root = program_tree(engine, &tree, rec)?;
    rec.exit_with(
        span,
        &[("n", a.rows() as f64), ("depth", plan.depth as f64)],
    );
    Ok(PreparedMultiStage {
        n: a.rows(),
        root,
        plan: *plan,
    })
}

/// Solves `A·x = b` with the prepared partition tree and a fully analog
/// signal path (every level [`LevelIo::Pure`]).
///
/// # Errors
///
/// Shape mismatches and engine failures.
pub fn solve<E: AmcEngine + ?Sized>(
    engine: &mut E,
    prepared: &mut PreparedMultiStage,
    b: &[f64],
) -> Result<Vec<f64>> {
    let (x, _) = solve_with_signal(
        engine,
        prepared,
        b,
        &SignalPlan::pure(),
        false,
        &mut Recorder::disabled(),
    )?;
    Ok(x)
}

/// Solves `A·x = b` with a per-level [`SignalPlan`], returning the
/// solution together with the trace log the cascade recorded (empty
/// unless `capture` is set and the root level is `Macro`/`Bus`).
///
/// A depth-0 tree (single array) under a `Macro`/`Bus` root level runs
/// as a single-array macro: DAC at entry, one INV, ADC at exit — the
/// paper's "original AMC" baseline with its digital boundary.
pub(crate) fn solve_with_signal<E: AmcEngine + ?Sized>(
    engine: &mut E,
    prepared: &mut PreparedMultiStage,
    b: &[f64],
    signal: &SignalPlan,
    capture: bool,
    rec: &mut Recorder,
) -> Result<(Vec<f64>, TraceLog)> {
    if b.len() != prepared.n {
        return Err(BlockAmcError::ShapeMismatch {
            op: "multi_stage_solve",
            expected: prepared.n,
            got: b.len(),
        });
    }
    signal.validate()?;
    let mut log = if capture {
        TraceLog::enabled()
    } else {
        TraceLog::disabled()
    };
    let path = signal.path();
    let mut x = match (&mut prepared.root, signal.level(0)) {
        // A leaf root has no cascade to apply the boundary converters,
        // so the macro/bus digital boundary is applied here.
        (root @ Node::Leaf(_), LevelIo::Macro(io) | LevelIo::Bus(io)) => {
            io.validate()?;
            let input = io.apply_dac(b);
            let out = root.inv_signed(engine, &input, path, &mut log, rec)?;
            io.apply_adc(&out)
        }
        (root, _) => root.inv_signed(engine, b, path, &mut log, rec)?,
    };
    vector::neg_in_place(&mut x);
    Ok((x, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
    use amc_linalg::{generate, lu, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn depth_zero_is_single_array() {
        let (a, b) = workload(8, 1);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a, 0).unwrap();
        assert_eq!(prep.max_leaf_size(), 8);
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x, &x_ref, 1e-10));
        assert_eq!(engine.stats().program_ops, 1);
    }

    #[test]
    fn depths_match_exact_solution() {
        let (a, b) = workload(16, 2);
        let x_ref = lu::solve(&a, &b).unwrap();
        for depth in 0..=4 {
            let mut engine = NumericEngine::new();
            let mut prep = prepare(&mut engine, &a, depth).unwrap();
            let x = solve(&mut engine, &mut prep, &b).unwrap();
            assert!(
                metrics::relative_error(&x_ref, &x) < 1e-8,
                "depth {depth} diverged"
            );
        }
    }

    #[test]
    fn leaf_size_halves_per_stage() {
        let (a, _) = workload(32, 3);
        let mut engine = NumericEngine::new();
        let d1 = prepare(&mut engine, &a, 1).unwrap();
        assert_eq!(d1.max_leaf_size(), 16);
        let d2 = prepare(&mut engine, &a, 2).unwrap();
        assert_eq!(d2.max_leaf_size(), 16); // MVM blocks stay at n/2
                                            // INV leaves shrink though: count leaves of size 8.
        let d3 = prepare(&mut engine, &a, 3).unwrap();
        assert_eq!(d3.depth(), 3);
    }

    #[test]
    fn paper_plan_tiles_mvm_blocks() {
        // The paper: a two-stage solve of n uses 16 quarter-size arrays.
        let (a, b) = workload(16, 3);
        let mut engine = NumericEngine::new();
        let mut prep = prepare_plan(&mut engine, &a, &PartitionPlan::paper(2)).unwrap();
        assert_eq!(engine.stats().program_ops, 16);
        assert_eq!(prep.max_leaf_size(), 4);
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(metrics::relative_error(&x_ref, &x) < 1e-8);
    }

    #[test]
    fn paper_plan_tiling_recurses_with_depth() {
        // Deeper paper layouts shrink MVM tiles along with the INV
        // leaves: at depth d every array is n/2^d on a side.
        let (a, b) = workload(32, 8);
        let x_ref = lu::solve(&a, &b).unwrap();
        for depth in 1..=4usize {
            let mut engine = NumericEngine::new();
            let mut prep = prepare_plan(&mut engine, &a, &PartitionPlan::paper(depth)).unwrap();
            assert_eq!(
                prep.max_leaf_size(),
                32 >> depth,
                "depth {depth} array size"
            );
            let x = solve(&mut engine, &mut prep, &b).unwrap();
            assert!(
                metrics::relative_error(&x_ref, &x) < 1e-8,
                "depth {depth} diverged"
            );
        }
    }

    #[test]
    fn searched_splits_still_solve() {
        let (a, b) = workload(12, 11);
        let mut engine = NumericEngine::new();
        let plan = PartitionPlan::depth(2)
            .with_split_rule(SplitRule::Searched(SplitSearchOptions::default()));
        let mut prep = prepare_plan(&mut engine, &a, &plan).unwrap();
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(metrics::relative_error(&x_ref, &x) < 1e-8);
    }

    #[test]
    fn excessive_depth_stops_at_1x1() {
        let (a, b) = workload(4, 4);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a, 10).unwrap();
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x, &x_ref, 1e-8));
    }

    #[test]
    fn odd_sizes_at_depth_two() {
        let (a, b) = workload(13, 5);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a, 2).unwrap();
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(metrics::relative_error(&x_ref, &x) < 1e-8);
    }

    #[test]
    fn parallel_prepare_is_bit_identical_to_serial() {
        let (a, b) = workload(32, 9);
        let plan = PartitionPlan::depth(3);
        // Numeric engine: deterministic kernels, order-insensitive.
        let mut serial_engine = NumericEngine::new();
        let mut serial = prepare_plan(&mut serial_engine, &a, &plan).unwrap();
        let x_serial = solve(&mut serial_engine, &mut serial, &b).unwrap();
        for workers in [1, 2, 4] {
            let mut engine = NumericEngine::new();
            let mut prep = prepare_plan_workers(&mut engine, &a, &plan, workers).unwrap();
            let x = solve(&mut engine, &mut prep, &b).unwrap();
            assert_eq!(x, x_serial, "numeric diverged at {workers} workers");
        }
        // Circuit engine: the variation stream is consumed in program-call
        // order, so bit-identity here pins that phase 2 preserves it.
        let mut serial_engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 77);
        let mut serial = prepare_plan(&mut serial_engine, &a, &plan).unwrap();
        let x_serial = solve(&mut serial_engine, &mut serial, &b).unwrap();
        for workers in [1, 2, 4] {
            let mut engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 77);
            let mut prep = prepare_plan_workers(&mut engine, &a, &plan, workers).unwrap();
            let x = solve(&mut engine, &mut prep, &b).unwrap();
            assert_eq!(x, x_serial, "circuit diverged at {workers} workers");
        }
    }

    #[test]
    fn parallel_prepare_rejects_non_square() {
        let mut engine = NumericEngine::new();
        let a = Matrix::zeros(3, 4);
        assert!(prepare_plan_workers(&mut engine, &a, &PartitionPlan::depth(1), 2).is_err());
    }

    #[test]
    fn circuit_engine_depth_two_with_variation() {
        let (a, b) = workload(16, 6);
        let mut engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 31);
        let mut prep = prepare(&mut engine, &a, 2).unwrap();
        let x = solve(&mut engine, &mut prep, &b).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        let err = metrics::relative_error(&x_ref, &x);
        assert!(err > 1e-6 && err < 1.0, "err={err}");
    }

    #[test]
    fn non_square_and_wrong_rhs_rejected() {
        let mut engine = NumericEngine::new();
        assert!(prepare(&mut engine, &Matrix::zeros(2, 3), 1).is_err());
        let (a, _) = workload(8, 7);
        let mut prep = prepare(&mut engine, &a, 1).unwrap();
        assert!(solve(&mut engine, &mut prep, &[0.0; 3]).is_err());
    }
}

//! Adaptive split-index selection.
//!
//! The paper notes that "for a given matrix A, the size of A1 can be
//! arbitrarily selected, only requiring that it is square". That freedom
//! matters: the analog error of the five-step cascade is governed by the
//! conditioning of the two INV blocks (`A1` and the Schur complement
//! `A4s`), and a poorly placed split can hand the INV circuits
//! near-singular blocks even when `A` itself is healthy. This module
//! scores candidate splits and picks the best one — a design-space
//! exploration the paper leaves implicit (its benchmarks use `n/2`).
//!
//! The score of a split is `max(κ(A1), κ(A4s))` (spectral condition of
//! the symmetric part), optionally weighted by the array-size imbalance;
//! lower is better.

use amc_linalg::eigen;
use amc_linalg::Matrix;

use crate::partition::BlockPartition;
use crate::{BlockAmcError, Result};

/// The score sheet of one candidate split.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitScore {
    /// The candidate split index.
    pub split: usize,
    /// Condition estimate of `A1`.
    pub cond_a1: f64,
    /// Condition estimate of `A4s`.
    pub cond_a4s: f64,
    /// The combined score (lower is better); `f64::INFINITY` when a block
    /// is singular or the Schur complement does not exist.
    pub score: f64,
}

/// Options controlling the search.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SplitSearchOptions {
    /// Weight of the size-imbalance penalty: a split far from `n/2` makes
    /// the larger block nearly as big as `A` itself, eroding BlockAMC's
    /// scalability benefit. The penalty multiplies the conditioning score
    /// by `1 + weight·imbalance` with `imbalance = |2·split − n| / n`.
    pub imbalance_weight: f64,
}

impl Default for SplitSearchOptions {
    fn default() -> Self {
        SplitSearchOptions {
            imbalance_weight: 1.0,
        }
    }
}

/// Scores a single candidate split.
///
/// # Errors
///
/// Returns partitioning errors for invalid `split`; a singular `A1`
/// yields an infinite score rather than an error (it is a legitimate —
/// just terrible — candidate).
pub fn score_split(a: &Matrix, split: usize, opts: &SplitSearchOptions) -> Result<SplitScore> {
    let p = BlockPartition::new(a, split)?;
    let cond_a1 = eigen::symmetric_part_condition(&p.a1).unwrap_or(f64::INFINITY);
    let (cond_a4s, score) = match p.schur_complement() {
        Ok(a4s) => {
            let c = eigen::symmetric_part_condition(&a4s).unwrap_or(f64::INFINITY);
            let n = a.rows() as f64;
            let imbalance = ((2 * split) as f64 - n).abs() / n;
            let penalty = 1.0 + opts.imbalance_weight * imbalance;
            (c, cond_a1.max(c) * penalty)
        }
        Err(_) => (f64::INFINITY, f64::INFINITY),
    };
    Ok(SplitScore {
        split,
        cond_a1,
        cond_a4s,
        score,
    })
}

/// Scores every candidate and returns them sorted best-first.
///
/// # Errors
///
/// * [`BlockAmcError::ShapeMismatch`] for a non-square matrix.
/// * [`BlockAmcError::InvalidConfig`] if `candidates` is empty or contains
///   an out-of-range split.
pub fn rank_splits(
    a: &Matrix,
    candidates: &[usize],
    opts: &SplitSearchOptions,
) -> Result<Vec<SplitScore>> {
    if !a.is_square() {
        return Err(BlockAmcError::ShapeMismatch {
            op: "split search",
            expected: a.rows(),
            got: a.cols(),
        });
    }
    if candidates.is_empty() {
        return Err(BlockAmcError::config("no candidate splits supplied"));
    }
    let mut scores = Vec::with_capacity(candidates.len());
    for &s in candidates {
        scores.push(score_split(a, s, opts)?);
    }
    scores.sort_by(|x, y| {
        x.score
            .partial_cmp(&y.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(scores)
}

/// Convenience for the recursive solvers: runs [`best_split`] and
/// partitions the matrix at the winner (used by
/// [`crate::multi_stage::SplitRule::Searched`]).
///
/// # Errors
///
/// Propagates [`best_split`] and partitioning failures.
pub fn best_partition(a: &Matrix, opts: &SplitSearchOptions) -> Result<BlockPartition> {
    let score = best_split(a, opts)?;
    BlockPartition::new(a, score.split)
}

/// Picks the best split among a default candidate set (quartile points
/// plus the midpoint).
///
/// # Errors
///
/// Propagates [`rank_splits`] failures; requires `n >= 4`.
pub fn best_split(a: &Matrix, opts: &SplitSearchOptions) -> Result<SplitScore> {
    let n = a.rows();
    if n < 4 {
        return Err(BlockAmcError::config(format!(
            "split search requires n >= 4, got {n}"
        )));
    }
    let mut candidates: Vec<usize> = vec![n / 4, n / 2, (3 * n) / 4];
    candidates.retain(|&s| s > 0 && s < n);
    candidates.dedup();
    let ranked = rank_splits(a, &candidates, opts)?;
    Ok(ranked.into_iter().next().expect("candidates are non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn midpoint_wins_on_homogeneous_matrices() {
        // For a Wishart matrix all splits are statistically alike, so the
        // imbalance penalty should steer the choice to n/2.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = generate::wishart_default(16, &mut rng).unwrap();
        let best = best_split(&a, &SplitSearchOptions::default()).unwrap();
        assert_eq!(best.split, 8);
    }

    #[test]
    fn search_avoids_splitting_through_an_ill_conditioned_block() {
        // Construct a block-diagonal matrix whose leading 4x4 is nearly
        // singular when truncated at split 2 but fine at split 4.
        let mut a = Matrix::identity(8);
        // Leading 4x4: well-conditioned as a whole, but its leading 2x2
        // principal submatrix is nearly singular.
        a[(0, 0)] = 1e-6;
        a[(0, 1)] = 0.0;
        a[(1, 0)] = 0.0;
        a[(1, 1)] = 1e-6;
        a[(2, 2)] = 1e-6;
        a[(3, 3)] = 1e-6;
        // split=2 -> A1 = diag(1e-6, 1e-6), fine alone… make it bad by
        // mixing scales inside A1 instead:
        a[(0, 0)] = 1.0;
        let opts = SplitSearchOptions {
            imbalance_weight: 0.0,
        };
        let s2 = score_split(&a, 2, &opts).unwrap();
        let s4 = score_split(&a, 4, &opts).unwrap();
        // split=2 puts {1, 1e-6} inside A1 (κ=1e6); split=4 groups the
        // small scales {1e-6 x3, 1} -> same κ for A1 but A4s is identity.
        assert!(s2.cond_a1 > 1e5);
        assert!(s4.cond_a4s < 10.0);
        let ranked = rank_splits(&a, &[2, 4, 6], &opts).unwrap();
        assert!(ranked[0].score <= ranked[1].score);
    }

    #[test]
    fn singular_a1_gets_infinite_score_not_error() {
        let mut a = Matrix::identity(6);
        a[(0, 0)] = 0.0; // split=1 -> A1 = [0], singular.
        let s = score_split(&a, 1, &SplitSearchOptions::default()).unwrap();
        assert_eq!(s.score, f64::INFINITY);
    }

    #[test]
    fn validation() {
        let a = Matrix::identity(8);
        assert!(rank_splits(&a, &[], &SplitSearchOptions::default()).is_err());
        assert!(rank_splits(&Matrix::zeros(2, 3), &[1], &SplitSearchOptions::default()).is_err());
        assert!(best_split(&Matrix::identity(2), &SplitSearchOptions::default()).is_err());
        // Out-of-range candidate propagates the partition error.
        assert!(rank_splits(&a, &[0], &SplitSearchOptions::default()).is_err());
        assert!(rank_splits(&a, &[8], &SplitSearchOptions::default()).is_err());
    }

    #[test]
    fn imbalance_penalty_is_monotone() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = generate::wishart_default(16, &mut rng).unwrap();
        let no_penalty = SplitSearchOptions {
            imbalance_weight: 0.0,
        };
        let with_penalty = SplitSearchOptions {
            imbalance_weight: 10.0,
        };
        let edge_free = score_split(&a, 2, &no_penalty).unwrap().score;
        let edge_pen = score_split(&a, 2, &with_penalty).unwrap().score;
        assert!(edge_pen > edge_free);
        // The midpoint is unaffected by the penalty.
        let mid_free = score_split(&a, 8, &no_penalty).unwrap().score;
        let mid_pen = score_split(&a, 8, &with_penalty).unwrap().score;
        assert!((mid_free - mid_pen).abs() < 1e-12);
    }

    #[test]
    fn chosen_split_actually_solves_well() {
        use crate::converter::IoConfig;
        use crate::engine::NumericEngine;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = generate::wishart_default(12, &mut rng).unwrap();
        let b = generate::random_vector(12, &mut rng);
        let best = best_split(&a, &SplitSearchOptions::default()).unwrap();
        let p = BlockPartition::new(&a, best.split).unwrap();
        let mut engine = NumericEngine::new();
        let mut prep = crate::one_stage::prepare(&mut engine, &p).unwrap();
        let sol = crate::one_stage::solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = amc_linalg::lu::solve(&a, &b).unwrap();
        assert!(amc_linalg::metrics::relative_error(&x_ref, &sol.x) < 1e-8);
    }
}

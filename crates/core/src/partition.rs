//! Block partitioning and Schur-complement pre-processing.
//!
//! The original matrix `A` (n×n) is split into four blocks around a split
//! index `s` (paper Fig. 2; `s = n/2` by default, but "the size of A1 can
//! be arbitrarily selected, only requiring that it is square"):
//!
//! ```text
//! A = [ A1 (s×s)      A2 (s×(n−s)) ]
//!     [ A3 ((n−s)×s)  A4 ((n−s)×(n−s)) ]
//! ```
//!
//! The INV steps operate on `A1` and on the Schur complement
//! `A4s = A4 − A3·A1⁻¹·A2`, which is computed *digitally in advance* and
//! stored in a crossbar (the paper's acknowledged pre-processing
//! overhead). When `A2` or `A3` is a zero block, `A4s = A4` and the
//! pre-processing is free — [`BlockPartition::schur_complement`]
//! implements that shortcut.
//!
//! Partitioning is applied recursively by [`crate::multi_stage`]; the
//! split index per node is either the midpoint or chosen by
//! [`crate::split_search`] (see `SplitRule`).

use amc_linalg::{lu::LuFactor, sparse::CsrMatrix, Matrix};

use crate::{BlockAmcError, Result};

/// Coupling-block density at or below which
/// [`BlockPartition::schur_complement`] routes through the sparse
/// kernel. Grounded Laplacians and PDN grids partition into
/// off-diagonal blocks carrying only the edges that cross the split —
/// a few percent dense — while random dense families sit near 100 %.
const SPARSE_SCHUR_MAX_DENSITY: f64 = 0.10;

/// A 2×2 block view of a square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPartition {
    /// Upper-left block `A1` (square, `split x split`).
    pub a1: Matrix,
    /// Upper-right block `A2` (`split x (n-split)`).
    pub a2: Matrix,
    /// Lower-left block `A3` (`(n-split) x split`).
    pub a3: Matrix,
    /// Lower-right block `A4` (`(n-split) x (n-split)`).
    pub a4: Matrix,
    /// The split index (size of `A1`).
    pub split: usize,
}

impl BlockPartition {
    /// Partitions a square matrix at `split` (the size of `A1`).
    ///
    /// # Errors
    ///
    /// * [`BlockAmcError::ShapeMismatch`] if `a` is not square.
    /// * [`BlockAmcError::InvalidConfig`] if `split` is 0 or ≥ n (both
    ///   halves must be non-empty).
    pub fn new(a: &Matrix, split: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(BlockAmcError::ShapeMismatch {
                op: "partition (square matrix required)",
                expected: a.rows(),
                got: a.cols(),
            });
        }
        let n = a.rows();
        if split == 0 || split >= n {
            return Err(BlockAmcError::config(format!(
                "split must satisfy 0 < split < n, got split={split}, n={n}"
            )));
        }
        Ok(BlockPartition {
            a1: a.block(0, 0, split, split)?,
            a2: a.block(0, split, split, n - split)?,
            a3: a.block(split, 0, n - split, split)?,
            a4: a.block(split, split, n - split, n - split)?,
            split,
        })
    }

    /// Partitions at the paper's default split `⌈n/2⌉` (the `(n+1)/2`
    /// choice for odd `n` described in §III.A).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockPartition::new`]; requires `n >= 2`.
    pub fn halves(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if n < 2 {
            return Err(BlockAmcError::config(format!(
                "cannot partition a {n}x{n} matrix into four blocks"
            )));
        }
        Self::new(a, n.div_ceil(2))
    }

    /// Total size `n` of the original matrix.
    pub fn size(&self) -> usize {
        self.split + self.a4.rows()
    }

    /// Computes the Schur complement `A4s = A4 − A3·A1⁻¹·A2`
    /// (paper eq. 3), with the zero-block shortcut: if `A2` or `A3` is a
    /// zero matrix, `A4s = A4` and no digital inversion is needed.
    ///
    /// The update kernel is chosen by the coupling blocks' measured
    /// density: sparse couplings (grounded Laplacians, PDN grids — see
    /// [`BlockPartition::coupling_density`]) stream through the CSR
    /// kernel, which skips zero columns outright; everything else runs
    /// the dense fused kernel. Both agree to within signed zeros.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`amc_linalg::LinalgError::Singular`] if `A1` is
    /// singular (the algorithm requires an invertible `A1`; choose a
    /// different split in that case).
    pub fn schur_complement(&self) -> Result<Matrix> {
        if self.a2.is_zero() || self.a3.is_zero() {
            return Ok(self.a4.clone());
        }
        if self.coupling_density() <= SPARSE_SCHUR_MAX_DENSITY {
            return self.schur_complement_sparse();
        }
        self.schur_complement_dense()
    }

    /// Fraction of structurally nonzero entries across the coupling
    /// blocks `A2` and `A3` — the routing signal of
    /// [`BlockPartition::schur_complement`].
    pub fn coupling_density(&self) -> f64 {
        let nnz = |m: &Matrix| m.as_slice().iter().filter(|&&v| v != 0.0).count();
        let stored = nnz(&self.a2) + nnz(&self.a3);
        let total = self.a2.as_slice().len() + self.a3.as_slice().len();
        stored as f64 / total.max(1) as f64
    }

    /// The dense fused Schur kernel: streams `A1⁻¹·A2` one column at a
    /// time into the `A4` copy instead of materializing two intermediate
    /// matrices (see [`LuFactor::schur_update_into`]). Public so the
    /// repro harness can time it against the sparse path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockPartition::schur_complement`].
    pub fn schur_complement_dense(&self) -> Result<Matrix> {
        let lu = LuFactor::new_auto(&self.a1)?;
        let mut a4s = self.a4.clone();
        lu.schur_update_into(&self.a2, &self.a3, &mut a4s)?;
        Ok(a4s)
    }

    /// The sparse Schur kernel: converts the coupling blocks to CSR and
    /// runs [`LuFactor::schur_update_sparse_into`], skipping the zero
    /// columns that dominate Laplacian/PDN partitions. Public so the
    /// repro harness can time it against the dense path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockPartition::schur_complement`].
    pub fn schur_complement_sparse(&self) -> Result<Matrix> {
        let lu = LuFactor::new_auto(&self.a1)?;
        let mut a4s = self.a4.clone();
        lu.schur_update_sparse_into(
            &CsrMatrix::from_dense(&self.a2),
            &CsrMatrix::from_dense(&self.a3),
            &mut a4s,
        )?;
        Ok(a4s)
    }

    /// Splits a right-hand-side vector into `(f, g)` — the upper `split`
    /// entries and the rest (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`BlockAmcError::ShapeMismatch`] if `b.len() != n`.
    pub fn split_vector(&self, b: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        if b.len() != self.size() {
            return Err(BlockAmcError::ShapeMismatch {
                op: "split_vector",
                expected: self.size(),
                got: b.len(),
            });
        }
        Ok((b[..self.split].to_vec(), b[self.split..].to_vec()))
    }

    /// Reassembles the original matrix from the four blocks (inverse of
    /// [`BlockPartition::new`]).
    pub fn recompose(&self) -> Matrix {
        Matrix::from_blocks(&self.a1, &self.a2, &self.a3, &self.a4)
            .expect("blocks tile by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::{generate, lu};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample(n: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate::diagonally_dominant(n, 1.0, &mut rng).unwrap()
    }

    #[test]
    fn partition_roundtrip_even() {
        let a = sample(8, 1);
        let p = BlockPartition::halves(&a).unwrap();
        assert_eq!(p.split, 4);
        assert_eq!(p.a1.shape(), (4, 4));
        assert_eq!(p.a4.shape(), (4, 4));
        assert_eq!(p.recompose(), a);
        assert_eq!(p.size(), 8);
    }

    #[test]
    fn partition_roundtrip_odd() {
        // Odd n: A1 is (n+1)/2 per the paper.
        let a = sample(7, 2);
        let p = BlockPartition::halves(&a).unwrap();
        assert_eq!(p.split, 4);
        assert_eq!(p.a1.shape(), (4, 4));
        assert_eq!(p.a2.shape(), (4, 3));
        assert_eq!(p.a3.shape(), (3, 4));
        assert_eq!(p.a4.shape(), (3, 3));
        assert_eq!(p.recompose(), a);
    }

    #[test]
    fn arbitrary_split_supported() {
        let a = sample(10, 3);
        for split in 1..10 {
            let p = BlockPartition::new(&a, split).unwrap();
            assert_eq!(p.a1.shape(), (split, split));
            assert_eq!(p.recompose(), a);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = sample(6, 4);
        assert!(BlockPartition::new(&a, 0).is_err());
        assert!(BlockPartition::new(&a, 6).is_err());
        assert!(BlockPartition::new(&Matrix::zeros(2, 3), 1).is_err());
        assert!(BlockPartition::halves(&Matrix::identity(1)).is_err());
    }

    #[test]
    fn schur_complement_matches_definition() {
        let a = sample(6, 5);
        let p = BlockPartition::halves(&a).unwrap();
        let s = p.schur_complement().unwrap();
        let a1_inv = lu::inverse(&p.a1).unwrap();
        let expect =
            p.a4.sub_matrix(&p.a3.matmul(&a1_inv).unwrap().matmul(&p.a2).unwrap())
                .unwrap();
        assert!(s.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn sparse_and_dense_schur_agree_on_structured_matrices() {
        // A grounded path Laplacian partitions into coupling blocks with
        // a single entry each: firmly on the sparse route.
        let a = generate::path_laplacian(12, 0.05).unwrap();
        let p = BlockPartition::halves(&a).unwrap();
        assert!(p.coupling_density() <= 0.10, "{}", p.coupling_density());
        let sparse = p.schur_complement().unwrap();
        let dense = p.schur_complement_dense().unwrap();
        assert!(sparse.approx_eq(&dense, 1e-13));
        // A dense sample routes through the dense kernel and both
        // explicit paths still agree.
        let a = sample(10, 9);
        let p = BlockPartition::halves(&a).unwrap();
        assert!(p.coupling_density() > 0.10);
        assert!(p
            .schur_complement_sparse()
            .unwrap()
            .approx_eq(&p.schur_complement().unwrap(), 1e-12));
    }

    #[test]
    fn schur_shortcut_for_zero_blocks() {
        // Block lower-triangular: A2 = 0 -> A4s = A4.
        let a1 = Matrix::identity(2);
        let a2 = Matrix::zeros(2, 2);
        let a3 = Matrix::filled(2, 2, 0.5);
        let a4 = Matrix::from_diag(&[3.0, 4.0]);
        let a = Matrix::from_blocks(&a1, &a2, &a3, &a4).unwrap();
        let p = BlockPartition::halves(&a).unwrap();
        assert_eq!(p.schur_complement().unwrap(), a4);
    }

    #[test]
    fn schur_detects_singular_a1() {
        let a1 = Matrix::zeros(2, 2);
        let rest = Matrix::identity(2);
        let a2 = Matrix::filled(2, 2, 1.0);
        let a = Matrix::from_blocks(&a1, &a2, &a2, &rest).unwrap();
        let p = BlockPartition::halves(&a).unwrap();
        assert!(p.schur_complement().is_err());
    }

    #[test]
    fn vector_splitting() {
        let a = sample(5, 6);
        let p = BlockPartition::halves(&a).unwrap(); // split = 3
        let (f, g) = p.split_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(f, vec![1.0, 2.0, 3.0]);
        assert_eq!(g, vec![4.0, 5.0]);
        assert!(p.split_vector(&[1.0]).is_err());
    }

    #[test]
    fn block_inverse_identity_via_schur() {
        // The block-inverse identity: for x = A⁻¹b,
        // x_bot = A4s⁻¹(g − A3·A1⁻¹·f) must hold.
        let a = sample(8, 7);
        let b: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = lu::solve(&a, &b).unwrap();
        let p = BlockPartition::halves(&a).unwrap();
        let (f, g) = p.split_vector(&b).unwrap();
        let a4s = p.schur_complement().unwrap();
        let yt = lu::solve(&p.a1, &f).unwrap();
        let gt = p.a3.matvec(&yt).unwrap();
        let gs = amc_linalg::vector::sub(&g, &gt);
        let z = lu::solve(&a4s, &gs).unwrap();
        assert!(amc_linalg::vector::approx_eq(&z, &x[4..], 1e-10));
    }
}

//! Pipelined batch solving.
//!
//! The macro's two S&H banks exist so that "the pipelining of the
//! algorithm … improv\[es\] the throughput of the system" (paper §III.B):
//! while problem *k* drains through steps 3–5, problem *k+1* can already
//! occupy the earlier phases. This module solves a batch of right-hand
//! sides against one prepared facade solver (arrays programmed once —
//! matrices are nonvolatile) and reports both the solutions and the
//! pipelined/unpipelined timing derived from the macro model.
//!
//! Batches run through [`crate::solver::PreparedSolver::solve_batch`],
//! so any architecture and per-level signal plan the facade supports can
//! be batched; sharding a batch across *multiple* independently-prepared
//! solvers is a ROADMAP item the prepared facade now enables.

use amc_circuit::opamp::OpAmpSpec;
use amc_circuit::timing;
use amc_linalg::Matrix;

use crate::engine::AmcEngine;
use crate::macro_model::MacroTiming;
use crate::solver::BlockAmcSolver;
use crate::Result;

/// Result of a batch solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSolution {
    /// One solution per right-hand side, in input order.
    pub solutions: Vec<Vec<f64>>,
    /// Macro timing (per-phase settle times fed by the circuit model).
    pub timing: MacroTiming,
    /// Total batch latency with pipelining: the first solve pays the full
    /// 5-phase latency, each subsequent one only a cycle.
    pub batch_time_pipelined_s: f64,
    /// Total batch latency without pipelining (solves strictly serialize).
    pub batch_time_unpipelined_s: f64,
}

impl BatchSolution {
    /// Throughput speedup delivered by the S&H double-buffering for this
    /// batch.
    pub fn pipeline_speedup(&self) -> f64 {
        if self.batch_time_pipelined_s == 0.0 {
            1.0
        } else {
            self.batch_time_unpipelined_s / self.batch_time_pipelined_s
        }
    }
}

/// Estimates the five per-phase settle times of a one-stage macro for the
/// partitioned matrix `a` (INV phases from the block eigenvalues, MVM
/// phases from row-conductance sums).
///
/// # Errors
///
/// Propagates timing-model failures (e.g. a singular block).
pub fn phase_settle_times(a: &Matrix, opamp: &OpAmpSpec) -> Result<[f64; 5]> {
    let p = crate::partition::BlockPartition::halves(a)?;
    let a4s = p.schur_complement()?;
    let eps = timing::DEFAULT_SETTLE_EPSILON;
    let norm = |m: &Matrix| m.scaled(1.0 / m.max_abs().max(f64::MIN_POSITIVE));
    let inv1 = timing::inv_settle_time(&norm(&p.a1), opamp, eps)?;
    let inv3 = timing::inv_settle_time(&norm(&a4s), opamp, eps)?;
    // MVM phases: row-sum-based (normalized matrices have max element 1).
    let mvm_row = |m: &Matrix| {
        let nm = norm(m);
        nm.norm_inf()
    };
    let mvm2 = timing::mvm_settle_time(mvm_row(&p.a3), opamp, eps)?;
    let mvm4 = timing::mvm_settle_time(mvm_row(&p.a2), opamp, eps)?;
    Ok([inv1, mvm2, inv3, mvm4, inv1])
}

/// Prepares `a` once on the facade solver, solves every right-hand side
/// of `batch` against the programmed arrays, and derives the pipeline
/// timing; `conversion_s` is the DAC/ADC conversion time.
///
/// The timing model describes the one-stage macro's five phases (the
/// midpoint partition of `a`), matching the paper's pipelining analysis;
/// the solutions honour whatever architecture and signal plan `solver`
/// is configured with.
///
/// # Errors
///
/// * [`crate::BlockAmcError::InvalidConfig`] for an empty batch.
/// * Preparation, shape, and engine failures per solve.
pub fn solve_batch<E: AmcEngine>(
    solver: &mut BlockAmcSolver<E>,
    a: &Matrix,
    batch: &[Vec<f64>],
    opamp: &OpAmpSpec,
    conversion_s: f64,
) -> Result<BatchSolution> {
    // Reject before programming: a failed call must not consume the
    // engine's variation stream or pollute its stats.
    if batch.is_empty() {
        return Err(crate::BlockAmcError::config(
            "batch must contain at least one RHS",
        ));
    }
    let solutions = solver.prepare(a)?.solve_batch(batch)?;
    let phases = phase_settle_times(a, opamp)?;
    let timing = MacroTiming::from_phase_times(phases, conversion_s)?;
    let k = batch.len() as f64;
    // Pipelined: fill the 5-stage pipe once, then one result per cycle.
    let batch_time_pipelined_s = timing.latency_s + (k - 1.0) * timing.cycle_s;
    let batch_time_unpipelined_s = k * timing.latency_s;
    Ok(BatchSolution {
        solutions,
        timing,
        batch_time_pipelined_s,
        batch_time_unpipelined_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NumericEngine;
    use crate::solver::Stages;
    use amc_linalg::{generate, lu, vector};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize) -> (Matrix, Vec<Vec<f64>>) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let batch = (0..4)
            .map(|_| generate::random_vector(n, &mut rng))
            .collect();
        (a, batch)
    }

    fn one_stage_solver() -> BlockAmcSolver<NumericEngine> {
        BlockAmcSolver::new(NumericEngine::new(), Stages::One)
    }

    #[test]
    fn batch_solutions_match_individual_solves() {
        let (a, batch) = setup(12);
        let mut solver = one_stage_solver();
        let out = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 1e-7).unwrap();
        assert_eq!(out.solutions.len(), 4);
        for (b, x) in batch.iter().zip(&out.solutions) {
            let x_ref = lu::solve(&a, b).unwrap();
            assert!(vector::approx_eq(x, &x_ref, 1e-8));
        }
    }

    #[test]
    fn arrays_programmed_once_for_the_whole_batch() {
        let (a, batch) = setup(8);
        let mut solver = one_stage_solver();
        let _ = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap();
        assert_eq!(solver.engine().stats().program_ops, 4); // A1, A2, A3, A4s once
        assert_eq!(solver.engine().stats().inv_ops, 3 * 4); // 3 INVs per solve
    }

    #[test]
    fn batch_runs_any_architecture() {
        // The pre-redesign API could only batch the one-stage module
        // path; the facade routing batches deeper cascades too.
        let (a, batch) = setup(16);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::Two);
        let out = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap();
        for (b, x) in batch.iter().zip(&out.solutions) {
            let x_ref = lu::solve(&a, b).unwrap();
            assert!(vector::approx_eq(x, &x_ref, 1e-8));
        }
        // 16 quarter-size arrays, programmed once for the whole batch.
        assert_eq!(solver.engine().stats().program_ops, 16);
    }

    #[test]
    fn pipelining_approaches_5x_for_long_batches() {
        let (a, _) = setup(8);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch: Vec<Vec<f64>> = (0..50)
            .map(|_| generate::random_vector(8, &mut rng))
            .collect();
        let mut solver = one_stage_solver();
        let out = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap();
        let speedup = out.pipeline_speedup();
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(speedup <= 5.0 + 1e-9);
    }

    #[test]
    fn phase_times_are_positive_and_inv_phases_match() {
        let (a, _) = setup(10);
        let phases = phase_settle_times(&a, &OpAmpSpec::ideal()).unwrap();
        assert!(phases.iter().all(|&t| t > 0.0));
        assert_eq!(phases[0], phases[4], "steps 1 and 5 share the A1 array");
    }

    #[test]
    fn empty_batch_rejected_before_any_programming() {
        let (a, _) = setup(8);
        let mut solver = one_stage_solver();
        assert!(solve_batch(&mut solver, &a, &[], &OpAmpSpec::ideal(), 0.0).is_err());
        // Validation precedes side effects: no arrays were programmed.
        assert_eq!(solver.engine().stats().program_ops, 0);
    }
}

//! Pipelined batch solving.
//!
//! The macro's two S&H banks exist so that "the pipelining of the
//! algorithm … improv\[es\] the throughput of the system" (paper §III.B):
//! while problem *k* drains through steps 3–5, problem *k+1* can already
//! occupy the earlier phases. This module solves a batch of right-hand
//! sides against one prepared macro (arrays programmed once — matrices
//! are nonvolatile) and reports both the solutions and the
//! pipelined/unpipelined timing derived from the macro model.
//!
//! Each solve runs through the shared recursive cascade core (see
//! [`crate::multi_stage`]); sharding a batch across *multiple*
//! independently-programmed macros is a ROADMAP item the unified core
//! now enables.

use amc_circuit::opamp::OpAmpSpec;
use amc_circuit::timing;
use amc_linalg::Matrix;

use crate::converter::IoConfig;
use crate::engine::AmcEngine;
use crate::macro_model::MacroTiming;
use crate::one_stage::{self, PreparedOneStage};
use crate::{BlockAmcError, Result};

/// Result of a batch solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSolution {
    /// One solution per right-hand side, in input order.
    pub solutions: Vec<Vec<f64>>,
    /// Macro timing (per-phase settle times fed by the circuit model).
    pub timing: MacroTiming,
    /// Total batch latency with pipelining: the first solve pays the full
    /// 5-phase latency, each subsequent one only a cycle.
    pub batch_time_pipelined_s: f64,
    /// Total batch latency without pipelining (solves strictly serialize).
    pub batch_time_unpipelined_s: f64,
}

impl BatchSolution {
    /// Throughput speedup delivered by the S&H double-buffering for this
    /// batch.
    pub fn pipeline_speedup(&self) -> f64 {
        if self.batch_time_pipelined_s == 0.0 {
            1.0
        } else {
            self.batch_time_unpipelined_s / self.batch_time_pipelined_s
        }
    }
}

/// Estimates the five per-phase settle times of a one-stage macro for the
/// partitioned matrix `a` (INV phases from the block eigenvalues, MVM
/// phases from row-conductance sums).
///
/// # Errors
///
/// Propagates timing-model failures (e.g. a singular block).
pub fn phase_settle_times(a: &Matrix, opamp: &OpAmpSpec) -> Result<[f64; 5]> {
    let p = crate::partition::BlockPartition::halves(a)?;
    let a4s = p.schur_complement()?;
    let eps = timing::DEFAULT_SETTLE_EPSILON;
    let norm = |m: &Matrix| m.scaled(1.0 / m.max_abs().max(f64::MIN_POSITIVE));
    let inv1 = timing::inv_settle_time(&norm(&p.a1), opamp, eps)?;
    let inv3 = timing::inv_settle_time(&norm(&a4s), opamp, eps)?;
    // MVM phases: row-sum-based (normalized matrices have max element 1).
    let mvm_row = |m: &Matrix| {
        let nm = norm(m);
        nm.norm_inf()
    };
    let mvm2 = timing::mvm_settle_time(mvm_row(&p.a3), opamp, eps)?;
    let mvm4 = timing::mvm_settle_time(mvm_row(&p.a2), opamp, eps)?;
    Ok([inv1, mvm2, inv3, mvm4, inv1])
}

/// Solves a batch of right-hand sides against one prepared one-stage
/// macro and derives the pipeline timing.
///
/// `a` must be the matrix `prepared` was built from (used only for the
/// timing estimate); `conversion_s` is the DAC/ADC conversion time.
///
/// # Errors
///
/// * [`BlockAmcError::InvalidConfig`] for an empty batch.
/// * Shape and engine failures per solve.
pub fn solve_batch<E: AmcEngine + ?Sized>(
    engine: &mut E,
    prepared: &mut PreparedOneStage,
    a: &Matrix,
    batch: &[Vec<f64>],
    io: &IoConfig,
    opamp: &OpAmpSpec,
    conversion_s: f64,
) -> Result<BatchSolution> {
    if batch.is_empty() {
        return Err(BlockAmcError::config("batch must contain at least one RHS"));
    }
    let mut solutions = Vec::with_capacity(batch.len());
    for b in batch {
        solutions.push(one_stage::solve(engine, prepared, b, io)?.x);
    }
    let phases = phase_settle_times(a, opamp)?;
    let timing = MacroTiming::from_phase_times(phases, conversion_s)?;
    let k = batch.len() as f64;
    // Pipelined: fill the 5-stage pipe once, then one result per cycle.
    let batch_time_pipelined_s = timing.latency_s + (k - 1.0) * timing.cycle_s;
    let batch_time_unpipelined_s = k * timing.latency_s;
    Ok(BatchSolution {
        solutions,
        timing,
        batch_time_pipelined_s,
        batch_time_unpipelined_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NumericEngine;
    use amc_linalg::{generate, lu, vector};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize) -> (Matrix, Vec<Vec<f64>>) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let batch = (0..4)
            .map(|_| generate::random_vector(n, &mut rng))
            .collect();
        (a, batch)
    }

    #[test]
    fn batch_solutions_match_individual_solves() {
        let (a, batch) = setup(12);
        let mut engine = NumericEngine::new();
        let mut prep = one_stage::prepare_matrix(&mut engine, &a).unwrap();
        let out = solve_batch(
            &mut engine,
            &mut prep,
            &a,
            &batch,
            &IoConfig::ideal(),
            &OpAmpSpec::ideal(),
            1e-7,
        )
        .unwrap();
        assert_eq!(out.solutions.len(), 4);
        for (b, x) in batch.iter().zip(&out.solutions) {
            let x_ref = lu::solve(&a, b).unwrap();
            assert!(vector::approx_eq(x, &x_ref, 1e-8));
        }
    }

    #[test]
    fn arrays_programmed_once_for_the_whole_batch() {
        let (a, batch) = setup(8);
        let mut engine = NumericEngine::new();
        let mut prep = one_stage::prepare_matrix(&mut engine, &a).unwrap();
        let _ = solve_batch(
            &mut engine,
            &mut prep,
            &a,
            &batch,
            &IoConfig::ideal(),
            &OpAmpSpec::ideal(),
            0.0,
        )
        .unwrap();
        assert_eq!(engine.stats().program_ops, 4); // A1, A2, A3, A4s once
        assert_eq!(engine.stats().inv_ops, 3 * 4); // 3 INVs per solve
    }

    #[test]
    fn pipelining_approaches_5x_for_long_batches() {
        let (a, _) = setup(8);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch: Vec<Vec<f64>> = (0..50)
            .map(|_| generate::random_vector(8, &mut rng))
            .collect();
        let mut engine = NumericEngine::new();
        let mut prep = one_stage::prepare_matrix(&mut engine, &a).unwrap();
        let out = solve_batch(
            &mut engine,
            &mut prep,
            &a,
            &batch,
            &IoConfig::ideal(),
            &OpAmpSpec::ideal(),
            0.0,
        )
        .unwrap();
        let speedup = out.pipeline_speedup();
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(speedup <= 5.0 + 1e-9);
    }

    #[test]
    fn phase_times_are_positive_and_inv_phases_match() {
        let (a, _) = setup(10);
        let phases = phase_settle_times(&a, &OpAmpSpec::ideal()).unwrap();
        assert!(phases.iter().all(|&t| t > 0.0));
        assert_eq!(phases[0], phases[4], "steps 1 and 5 share the A1 array");
    }

    #[test]
    fn empty_batch_rejected() {
        let (a, _) = setup(8);
        let mut engine = NumericEngine::new();
        let mut prep = one_stage::prepare_matrix(&mut engine, &a).unwrap();
        assert!(solve_batch(
            &mut engine,
            &mut prep,
            &a,
            &[],
            &IoConfig::ideal(),
            &OpAmpSpec::ideal(),
            0.0
        )
        .is_err());
    }
}

//! Pipelined batch solving.
//!
//! The macro's two S&H banks exist so that "the pipelining of the
//! algorithm … improv\[es\] the throughput of the system" (paper §III.B):
//! while problem *k* drains through steps 3–5, problem *k+1* can already
//! occupy the earlier phases. This module solves a batch of right-hand
//! sides against one prepared facade solver (arrays programmed once —
//! matrices are nonvolatile) and reports both the solutions and the
//! pipelined/unpipelined timing derived from the macro model.
//!
//! Batches run through [`crate::solver::PreparedSolver::solve_batch`],
//! so any architecture and per-level signal plan the facade supports can
//! be batched; sharding a batch across *multiple* independently-prepared
//! solvers is a ROADMAP item the prepared facade now enables.

use amc_circuit::opamp::OpAmpSpec;
use amc_circuit::timing;
use amc_linalg::Matrix;

use crate::engine::{AmcEngine, EngineStats};
use crate::macro_model::MacroTiming;
use crate::solver::BlockAmcSolver;
use crate::Result;

/// Result of a batch solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSolution {
    /// One solution per right-hand side, in input order.
    pub solutions: Vec<Vec<f64>>,
    /// Macro timing (per-phase settle times fed by the circuit model).
    pub timing: MacroTiming,
    /// Total batch latency with pipelining: the first solve pays the full
    /// 5-phase latency, each subsequent one only a cycle.
    pub batch_time_pipelined_s: f64,
    /// Total batch latency without pipelining (solves strictly serialize).
    pub batch_time_unpipelined_s: f64,
    /// Engine cost of the whole batch call — the one preparation plus
    /// every solve, summed over *all* workers for the parallel path
    /// (each replica's counters are folded in, so nothing executed on a
    /// stolen shard goes missing). Identical at every worker count.
    pub stats: EngineStats,
}

impl BatchSolution {
    /// Throughput speedup delivered by the S&H double-buffering for this
    /// batch.
    pub fn pipeline_speedup(&self) -> f64 {
        if self.batch_time_pipelined_s == 0.0 {
            1.0
        } else {
            self.batch_time_unpipelined_s / self.batch_time_pipelined_s
        }
    }

    /// Total batch latency when the batch is sharded across `workers`
    /// independently-programmed macro instances, each pipelining its own
    /// shard — the multi-macro extension of the paper's §III.B timing
    /// model.
    ///
    /// The `k` right-hand sides are dealt as evenly as possible, so the
    /// slowest macro processes `⌈k/workers⌉` of them: it fills its
    /// five-phase pipe once (`latency_s`) and then retires one solution
    /// per `cycle_s`. `workers` is clamped to at least 1; with more
    /// workers than right-hand sides every macro solves at most one RHS
    /// and the batch takes a single pipeline latency.
    pub fn batch_time_parallel_s(&self, workers: usize) -> f64 {
        let k = self.solutions.len();
        if k == 0 {
            return 0.0;
        }
        let per_macro = k.div_ceil(workers.max(1)) as f64;
        self.timing.latency_s + (per_macro - 1.0) * self.timing.cycle_s
    }
}

/// Estimates the five per-phase settle times of a one-stage macro for the
/// partitioned matrix `a` (INV phases from the block eigenvalues, MVM
/// phases from row-conductance sums).
///
/// # Errors
///
/// Propagates timing-model failures (e.g. a singular block).
pub fn phase_settle_times(a: &Matrix, opamp: &OpAmpSpec) -> Result<[f64; 5]> {
    let p = crate::partition::BlockPartition::halves(a)?;
    let a4s = p.schur_complement()?;
    let eps = timing::DEFAULT_SETTLE_EPSILON;
    let norm = |m: &Matrix| m.scaled(1.0 / m.max_abs().max(f64::MIN_POSITIVE));
    let inv1 = timing::inv_settle_time(&norm(&p.a1), opamp, eps)?;
    let inv3 = timing::inv_settle_time(&norm(&a4s), opamp, eps)?;
    // MVM phases: row-sum-based (normalized matrices have max element 1).
    let mvm_row = |m: &Matrix| {
        let nm = norm(m);
        nm.norm_inf()
    };
    let mvm2 = timing::mvm_settle_time(mvm_row(&p.a3), opamp, eps)?;
    let mvm4 = timing::mvm_settle_time(mvm_row(&p.a2), opamp, eps)?;
    Ok([inv1, mvm2, inv3, mvm4, inv1])
}

/// Prepares `a` once on the facade solver, solves every right-hand side
/// of `batch` against the programmed arrays, and derives the pipeline
/// timing; `conversion_s` is the DAC/ADC conversion time.
///
/// The timing model describes the one-stage macro's five phases (the
/// midpoint partition of `a`), matching the paper's pipelining analysis;
/// the solutions honour whatever architecture and signal plan `solver`
/// is configured with.
///
/// # Errors
///
/// * [`crate::BlockAmcError::InvalidConfig`] for an empty batch.
/// * Preparation, shape, and engine failures per solve.
pub fn solve_batch<E: AmcEngine>(
    solver: &mut BlockAmcSolver<E>,
    a: &Matrix,
    batch: &[Vec<f64>],
    opamp: &OpAmpSpec,
    conversion_s: f64,
) -> Result<BatchSolution> {
    // Reject before programming: a failed call must not consume the
    // engine's variation stream or pollute its stats.
    if batch.is_empty() {
        return Err(crate::BlockAmcError::config(
            "batch must contain at least one RHS",
        ));
    }
    let before = solver.engine().stats();
    let span = solver.recorder_mut().enter("batch");
    let solutions = solver.prepare(a)?.solve_batch(batch)?;
    let rhs = batch.len() as f64;
    solver.recorder_mut().exit_with(span, &[("rhs", rhs)]);
    let stats = solver.engine().stats() - before;
    assemble_solution(solutions, stats, a, batch.len(), opamp, conversion_s)
}

/// Derives the pipeline timing and packs a [`BatchSolution`].
fn assemble_solution(
    solutions: Vec<Vec<f64>>,
    stats: EngineStats,
    a: &Matrix,
    k: usize,
    opamp: &OpAmpSpec,
    conversion_s: f64,
) -> Result<BatchSolution> {
    let phases = phase_settle_times(a, opamp)?;
    let timing = MacroTiming::from_phase_times(phases, conversion_s)?;
    let k = k as f64;
    // Pipelined: fill the 5-stage pipe once, then one result per cycle.
    let batch_time_pipelined_s = timing.latency_s + (k - 1.0) * timing.cycle_s;
    let batch_time_unpipelined_s = k * timing.latency_s;
    Ok(BatchSolution {
        solutions,
        timing,
        batch_time_pipelined_s,
        batch_time_unpipelined_s,
        stats,
    })
}

/// Number of shards dealt per worker: a few more shards than workers
/// keeps the stealing pool balanced when solve times vary (deeper
/// recursion on some shards, OS jitter) without shrinking shards into
/// scheduling noise.
const SHARDS_PER_WORKER: usize = 4;

/// Parallel [`solve_batch`]: prepares `a` once, replicates the prepared
/// solver across `workers` independently-owned macro instances
/// ([`crate::solver::PreparedSolver::replicate`]), and shards the
/// right-hand sides over a work-stealing pool (`amc_par`).
///
/// **Bit-identical to the serial path at every worker count.** Each
/// replica carries a bitwise copy of the arrays programmed by the one
/// `prepare` call — the same effective conductances, hence the same
/// variation draw — so a right-hand side produces the same solution no
/// matter which worker solves it, and the merged output (always in
/// input order) equals `solve_batch`'s exactly. `workers == 1` runs
/// the serial path itself.
///
/// Worker 0 drives the original prepared arrays directly, so only
/// `workers − 1` replicas are cloned. As a consequence `solver`'s
/// engine counters reflect the preparation plus whatever shards worker
/// 0 happened to execute — a scheduling-dependent *count*; the
/// solutions themselves are scheduling-independent. The replicas'
/// counters are not lost: every worker's delta is summed into
/// [`BatchSolution::stats`], which therefore reports the full batch
/// cost (one preparation + all solves) at every worker count.
///
/// # Errors
///
/// * [`crate::BlockAmcError::InvalidConfig`] for an empty batch or
///   `workers == 0`.
/// * Preparation, shape, and engine failures per solve.
pub fn solve_batch_parallel<E: AmcEngine + Clone + Send>(
    solver: &mut BlockAmcSolver<E>,
    a: &Matrix,
    batch: &[Vec<f64>],
    opamp: &OpAmpSpec,
    conversion_s: f64,
    workers: usize,
) -> Result<BatchSolution> {
    if batch.is_empty() {
        return Err(crate::BlockAmcError::config(
            "batch must contain at least one RHS",
        ));
    }
    if workers == 0 {
        return Err(crate::BlockAmcError::config(
            "parallel batch needs at least one worker",
        ));
    }
    let before = solver.engine().stats();
    let mut prepared = solver.prepare(a)?;
    if workers == 1 {
        let solutions = prepared.solve_batch(batch)?;
        let stats = prepared.engine().stats() - before;
        return assemble_solution(solutions, stats, a, batch.len(), opamp, conversion_s);
    }
    // Replicas clone the engine *after* preparation, so their counters
    // start at this baseline; only what they solve on top is theirs.
    let replica_base = prepared.engine().stats();
    // Worker 0 owns the original programmed arrays; workers 1.. own
    // bitwise replicas — `workers` solving instances, `workers − 1`
    // copies.
    let replicas = prepared.replicate(workers - 1);
    let mut states: Vec<ShardWorker<'_, '_, E>> = Vec::with_capacity(workers);
    states.push(ShardWorker::Original(&mut prepared));
    states.extend(
        replicas
            .into_iter()
            .map(|r| ShardWorker::Replica(Box::new(r))),
    );
    // Contiguous shards, several per worker; input order is restored by
    // the index-preserving pool merge.
    let shard_len = batch.len().div_ceil(workers * SHARDS_PER_WORKER).max(1);
    let shards: Vec<&[Vec<f64>]> = batch.chunks(shard_len).collect();
    let sharded = amc_par::map_with_states(&mut states, shards, |worker, _, shard| {
        shard
            .iter()
            .map(|b| worker.solve_x(b))
            .collect::<Result<Vec<_>>>()
    });
    let mut solutions = Vec::with_capacity(batch.len());
    for shard in sharded {
        solutions.extend(shard?);
    }
    // Aggregate the per-worker counters: worker 0's delta (preparation
    // plus its shards) plus each replica's solves-only delta.
    let mut stats = EngineStats::default();
    for state in &states {
        stats += match state {
            ShardWorker::Original(prepared) => prepared.engine().stats() - before,
            ShardWorker::Replica(replica) => replica.engine().stats() - replica_base,
        };
    }
    assemble_solution(solutions, stats, a, batch.len(), opamp, conversion_s)
}

/// A shard worker's solving instance: the caller's prepared solver
/// (worker 0) or an owned replica (the rest). Either way the programmed
/// array values are identical, which is what keeps sharding invisible
/// in the output.
enum ShardWorker<'p, 'e, E: AmcEngine> {
    Original(&'p mut crate::solver::PreparedSolver<'e, E>),
    /// Boxed: a replica owns engine + config + tree, far larger than
    /// the borrow in [`ShardWorker::Original`].
    Replica(Box<crate::solver::SolverReplica<E>>),
}

impl<E: AmcEngine> ShardWorker<'_, '_, E> {
    fn solve_x(&mut self, b: &[f64]) -> Result<Vec<f64>> {
        match self {
            ShardWorker::Original(prepared) => prepared.solve(b).map(|r| r.x),
            ShardWorker::Replica(replica) => replica.solve(b).map(|r| r.x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NumericEngine;
    use crate::solver::Stages;
    use amc_linalg::{generate, lu, vector};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize) -> (Matrix, Vec<Vec<f64>>) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let batch = (0..4)
            .map(|_| generate::random_vector(n, &mut rng))
            .collect();
        (a, batch)
    }

    fn one_stage_solver() -> BlockAmcSolver<NumericEngine> {
        BlockAmcSolver::new(NumericEngine::new(), Stages::One)
    }

    #[test]
    fn batch_solutions_match_individual_solves() {
        let (a, batch) = setup(12);
        let mut solver = one_stage_solver();
        let out = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 1e-7).unwrap();
        assert_eq!(out.solutions.len(), 4);
        for (b, x) in batch.iter().zip(&out.solutions) {
            let x_ref = lu::solve(&a, b).unwrap();
            assert!(vector::approx_eq(x, &x_ref, 1e-8));
        }
    }

    #[test]
    fn arrays_programmed_once_for_the_whole_batch() {
        let (a, batch) = setup(8);
        let mut solver = one_stage_solver();
        let _ = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap();
        assert_eq!(solver.engine().stats().program_ops, 4); // A1, A2, A3, A4s once
        assert_eq!(solver.engine().stats().inv_ops, 3 * 4); // 3 INVs per solve
    }

    #[test]
    fn batch_runs_any_architecture() {
        // The pre-redesign API could only batch the one-stage module
        // path; the facade routing batches deeper cascades too.
        let (a, batch) = setup(16);
        let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::Two);
        let out = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap();
        for (b, x) in batch.iter().zip(&out.solutions) {
            let x_ref = lu::solve(&a, b).unwrap();
            assert!(vector::approx_eq(x, &x_ref, 1e-8));
        }
        // 16 quarter-size arrays, programmed once for the whole batch.
        assert_eq!(solver.engine().stats().program_ops, 16);
    }

    #[test]
    fn pipelining_approaches_5x_for_long_batches() {
        let (a, _) = setup(8);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch: Vec<Vec<f64>> = (0..50)
            .map(|_| generate::random_vector(8, &mut rng))
            .collect();
        let mut solver = one_stage_solver();
        let out = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap();
        let speedup = out.pipeline_speedup();
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(speedup <= 5.0 + 1e-9);
    }

    #[test]
    fn phase_times_are_positive_and_inv_phases_match() {
        let (a, _) = setup(10);
        let phases = phase_settle_times(&a, &OpAmpSpec::ideal()).unwrap();
        assert!(phases.iter().all(|&t| t > 0.0));
        assert_eq!(phases[0], phases[4], "steps 1 and 5 share the A1 array");
    }

    #[test]
    fn empty_batch_rejected_before_any_programming() {
        let (a, _) = setup(8);
        let mut solver = one_stage_solver();
        assert!(solve_batch(&mut solver, &a, &[], &OpAmpSpec::ideal(), 0.0).is_err());
        // Validation precedes side effects: no arrays were programmed.
        assert_eq!(solver.engine().stats().program_ops, 0);
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_serial() {
        use crate::engine::{CircuitEngine, CircuitEngineConfig};
        let (a, _) = setup(16);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let batch: Vec<Vec<f64>> = (0..13)
            .map(|_| generate::random_vector(16, &mut rng))
            .collect();
        // Variation makes solutions draw-dependent: identity across
        // worker counts then proves the replicas share the draw.
        let serial = {
            let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 7);
            let mut solver = BlockAmcSolver::new(engine, Stages::One);
            solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap()
        };
        for workers in [1usize, 2, 4] {
            let engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 7);
            let mut solver = BlockAmcSolver::new(engine, Stages::One);
            let out =
                solve_batch_parallel(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0, workers)
                    .unwrap();
            assert_eq!(out.solutions, serial.solutions, "workers={workers}");
            assert_eq!(out.timing, serial.timing);
        }
    }

    #[test]
    fn parallel_batch_aggregates_stats_across_workers() {
        // Replica counters must be folded in, not dropped: the batch
        // stats report one preparation plus every solve, identically at
        // 1, 2, and 4 workers.
        let (a, _) = setup(16);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let batch: Vec<Vec<f64>> = (0..13)
            .map(|_| generate::random_vector(16, &mut rng))
            .collect();
        let mut expected = None;
        for workers in [1usize, 2, 4] {
            let mut solver = one_stage_solver();
            let out =
                solve_batch_parallel(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0, workers)
                    .unwrap();
            // One-stage tree: 4 arrays once, 3 INV + 2 MVM per solve.
            assert_eq!(out.stats.program_ops, 4, "workers={workers}");
            assert_eq!(out.stats.inv_ops, 3 * 13, "workers={workers}");
            assert_eq!(out.stats.mvm_ops, 2 * 13, "workers={workers}");
            match &expected {
                None => expected = Some(out.stats),
                Some(first) => assert_eq!(&out.stats, first, "workers={workers}"),
            }
        }
        // The serial convenience path reports the same totals.
        let mut solver = one_stage_solver();
        let serial = solve_batch(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0).unwrap();
        assert_eq!(Some(serial.stats), expected);
    }

    #[test]
    fn parallel_batch_validates_inputs() {
        let (a, batch) = setup(8);
        let mut solver = one_stage_solver();
        assert!(
            solve_batch_parallel(&mut solver, &a, &batch, &OpAmpSpec::ideal(), 0.0, 0).is_err()
        );
        assert!(solve_batch_parallel(&mut solver, &a, &[], &OpAmpSpec::ideal(), 0.0, 2).is_err());
    }

    #[test]
    fn parallel_timing_model_matches_hand_computation() {
        let timing = MacroTiming::from_phase_times([1e-6; 5], 1e-6).unwrap();
        let k = 10;
        let sol = BatchSolution {
            solutions: vec![vec![0.0]; k],
            timing,
            batch_time_pipelined_s: timing.latency_s + 9.0 * timing.cycle_s,
            batch_time_unpipelined_s: 10.0 * timing.latency_s,
            stats: EngineStats::default(),
        };
        let (lat, cyc) = (timing.latency_s, timing.cycle_s);
        // One macro: the pipelined time itself.
        assert_eq!(sol.batch_time_parallel_s(1), sol.batch_time_pipelined_s);
        // Two macros: slowest shard has ⌈10/2⌉ = 5 solves.
        assert_eq!(sol.batch_time_parallel_s(2), lat + 4.0 * cyc);
        // Three macros: ⌈10/3⌉ = 4 solves on the slowest.
        assert_eq!(sol.batch_time_parallel_s(3), lat + 3.0 * cyc);
        // More macros than RHS: a single pipeline latency.
        assert_eq!(sol.batch_time_parallel_s(16), lat);
        // workers = 0 is clamped to one macro.
        assert_eq!(sol.batch_time_parallel_s(0), sol.batch_time_pipelined_s);
    }
}

//! Lifetime aging of prepared solvers: drift, stuck cells, health
//! probes, and repair scheduling.
//!
//! The paper's yield number is a static snapshot; this module provides
//! the production view. An [`AgedSolver`] owns a programmed partition
//! tree plus a virtual clock. Each tick it applies
//! [`DriftModel::apply`] conductance decay and [`FaultModel`] stuck-at
//! failures to every array — deterministically, from seeded streams —
//! and re-installs the degraded state through the engine, so every
//! subsequent solve runs against the aged hardware. A cheap health
//! probe ([`AgedSolver::health`]) solves a fixed sentinel RHS and
//! measures its relative residual via [`crate::refine::seed_quality`].
//!
//! A [`RepairScheduler`] drives the serving loop: per tick it chooses
//! between serving degraded, recovering accuracy digitally with
//! [`crate::refine::refine_with_cg`], or paying [`ProgramCostModel`]
//! write-and-verify energy to reprogram arrays (the worst few, or all
//! of them). The per-policy decision rules are documented on
//! [`RepairPolicy`].
//!
//! # Determinism
//!
//! Every random draw comes from a `ChaCha8Rng` seeded purely from the
//! solver's base seed plus structural indices (stream tag, array
//! index, reprogram generation, tick number). Drift draws are keyed on
//! `(array, generation)` — *not* on the tick — so each cell's drift
//! exponent is fixed between reprograms and its decay is monotone in
//! age. Fault draws are keyed on `(array, tick)` and accumulate into a
//! persistent overlay: a stuck cell stays stuck, even across
//! reprogramming (write-and-verify cannot fix a stuck device). Replays
//! with the same seed are bit-identical, which is what lets the
//! `amc-scenario` lifetime campaign shard traces over workers without
//! changing the report.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use amc_device::faults::FaultState;
use amc_device::program_cost::program_cost;
use amc_linalg::Matrix;

// Re-exported so downstream crates (e.g. the serving layer) can
// configure an [`AgingModel`] without depending on `amc-device`.
pub use amc_device::drift::DriftModel;
pub use amc_device::faults::FaultModel;
pub use amc_device::program_cost::ProgramCostModel;

use crate::engine::AmcEngine;
use crate::error::BlockAmcError;
use crate::refine;
use crate::solver::{SolveReport, SolverReplica};
use crate::Result;

/// Stream tags keeping the independent random streams disjoint.
const DRIFT_STREAM: u64 = 1;
const FAULT_STREAM: u64 = 2;
const SENTINEL_STREAM: u64 = 3;

/// Derives a per-(stream, array, epoch) seed from the base seed with
/// the same splitmix-style hash the campaign layers use, so distinct
/// coordinates land in statistically independent streams.
fn stream_seed(base: u64, stream: u64, array: u64, epoch: u64) -> u64 {
    let mut h = base ^ 0x517C_C1B7_2722_0A95;
    for v in [stream, array.wrapping_add(1), epoch.wrapping_add(1)] {
        h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
    h
}

/// The full lifetime model an [`AgedSolver`] ages under.
///
/// All parameters are validated up front by [`AgingModel::validate`]
/// (called from [`AgedSolver::new`] and the scenario campaign builder),
/// never per-tick deep inside a trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// Conductance relaxation over time.
    pub drift: DriftModel,
    /// Per-tick stuck-at hazard. `p_stuck_on`/`p_stuck_off` are the
    /// per-cell probabilities of getting stuck *during one tick*;
    /// `g_on`/`g_off` are the forced magnitudes in **matrix-value
    /// units** (the stuck value keeps the pristine cell's sign).
    pub faults: FaultModel,
    /// Write-and-verify cost charged for every reprogram.
    pub cost: ProgramCostModel,
    /// Virtual wall-clock seconds per tick.
    pub tick_s: f64,
    /// Relative per-cell accuracy the write-and-verify loop targets on
    /// reprogram (feeds [`ProgramCostModel::pulses_per_cell`]).
    pub program_accuracy: f64,
    /// The serving SLO: a tick whose served answers have mean relative
    /// residual above this bound counts as unavailable.
    pub slo_residual: f64,
}

impl AgingModel {
    /// A typical-RRAM lifetime model: the device crate's drift and
    /// programming-cost defaults, no stuck-at hazard, one-minute ticks,
    /// 1% programming accuracy, and a 1e-3 residual SLO.
    pub fn typical_rram() -> Self {
        AgingModel {
            drift: DriftModel::typical_rram(),
            faults: FaultModel::none(),
            cost: ProgramCostModel::typical_rram(),
            tick_s: 60.0,
            program_accuracy: 0.01,
            slo_residual: 1e-3,
        }
    }

    /// Validates every sub-model and the scheduler parameters.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] naming the offending parameter
    /// — including the device-model validation failures, re-wrapped so
    /// callers see one error type at build time.
    pub fn validate(&self) -> Result<()> {
        self.drift
            .validate()
            .map_err(|e| BlockAmcError::config(format!("aging drift model: {e}")))?;
        self.faults
            .validate()
            .map_err(|e| BlockAmcError::config(format!("aging fault model: {e}")))?;
        self.cost
            .validate()
            .map_err(|e| BlockAmcError::config(format!("aging program-cost model: {e}")))?;
        if !(self.tick_s.is_finite() && self.tick_s > 0.0) {
            return Err(BlockAmcError::config(format!(
                "aging tick_s must be positive and finite, got {}",
                self.tick_s
            )));
        }
        if !(self.program_accuracy.is_finite()
            && self.program_accuracy > 0.0
            && self.program_accuracy < 1.0)
        {
            return Err(BlockAmcError::config(format!(
                "aging program_accuracy must lie in (0, 1), got {}",
                self.program_accuracy
            )));
        }
        if !(self.slo_residual.is_finite() && self.slo_residual > 0.0) {
            return Err(BlockAmcError::config(format!(
                "aging slo_residual must be positive and finite, got {}",
                self.slo_residual
            )));
        }
        Ok(())
    }
}

/// When and how an aged solver gets repaired.
///
/// Each variant is a complete per-tick decision rule over the health
/// probe's relative residual `r` (measured on the sentinel RHS after
/// the tick's aging step):
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairPolicy {
    /// **Serve degraded, always.** No refinement, no reprogramming:
    /// zero repair energy and zero downtime, but accuracy collapses as
    /// the arrays drift — the lower frontier anchor.
    Never,
    /// **Full reprogram, every tick**, regardless of `r`. Accuracy and
    /// availability stay near-perfect (modulo stuck cells), but
    /// write-and-verify energy grows linearly with uptime — the upper
    /// frontier anchor.
    Always,
    /// **Repair only when the probe crosses a threshold.** If
    /// `r > reprogram_above`: reprogram every array. Else if
    /// `r > refine_above`: serve each answer through
    /// [`crate::refine::refine_with_cg`] (digital cleanup, zero
    /// programming energy). Else: serve degraded as-is. Requires
    /// `0 < refine_above <= reprogram_above`.
    ResidualThreshold {
        /// Probe residual above which served answers are CG-refined.
        refine_above: f64,
        /// Probe residual above which the solver is fully reprogrammed.
        reprogram_above: f64,
    },
    /// **Threshold repair under a finite energy budget.** If
    /// `r > reprogram_above`, reprogram the `arrays_per_repair` arrays
    /// whose current state deviates most from pristine (relative
    /// Frobenius deviation) — but only while the cumulative
    /// write-and-verify energy of this scheduler stays within
    /// `energy_budget_j`; once a repair would overrun the budget, fall
    /// back to CG refinement for the rest of the solver's life. Below
    /// the threshold: serve degraded.
    Budgeted {
        /// Total programming energy this scheduler may ever spend.
        energy_budget_j: f64,
        /// Probe residual above which a partial reprogram is attempted.
        reprogram_above: f64,
        /// How many worst arrays each partial reprogram rewrites.
        arrays_per_repair: usize,
    },
}

impl RepairPolicy {
    /// A short stable label for reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            RepairPolicy::Never => "never",
            RepairPolicy::Always => "always",
            RepairPolicy::ResidualThreshold { .. } => "residual-threshold",
            RepairPolicy::Budgeted { .. } => "budgeted",
        }
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] for non-finite or non-positive
    /// thresholds, `refine_above > reprogram_above`, a non-positive
    /// energy budget, or `arrays_per_repair == 0`.
    pub fn validate(&self) -> Result<()> {
        let threshold_ok = |t: f64| t.is_finite() && t > 0.0;
        match *self {
            RepairPolicy::Never | RepairPolicy::Always => Ok(()),
            RepairPolicy::ResidualThreshold {
                refine_above,
                reprogram_above,
            } => {
                if !threshold_ok(refine_above) || !threshold_ok(reprogram_above) {
                    return Err(BlockAmcError::config(format!(
                        "residual-threshold policy thresholds must be positive and finite, \
                         got refine_above={refine_above}, reprogram_above={reprogram_above}"
                    )));
                }
                if refine_above > reprogram_above {
                    return Err(BlockAmcError::config(format!(
                        "residual-threshold policy needs refine_above <= reprogram_above, \
                         got refine_above={refine_above} > reprogram_above={reprogram_above}"
                    )));
                }
                Ok(())
            }
            RepairPolicy::Budgeted {
                energy_budget_j,
                reprogram_above,
                arrays_per_repair,
            } => {
                if !threshold_ok(energy_budget_j) {
                    return Err(BlockAmcError::config(format!(
                        "budgeted policy energy_budget_j must be positive and finite, \
                         got {energy_budget_j}"
                    )));
                }
                if !threshold_ok(reprogram_above) {
                    return Err(BlockAmcError::config(format!(
                        "budgeted policy reprogram_above must be positive and finite, \
                         got {reprogram_above}"
                    )));
                }
                if arrays_per_repair == 0 {
                    return Err(BlockAmcError::config(
                        "budgeted policy needs arrays_per_repair >= 1",
                    ));
                }
                Ok(())
            }
        }
    }
}

/// What the scheduler did on one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// Served the degraded solver untouched.
    Serve,
    /// Served through digital CG refinement.
    Refine,
    /// Reprogrammed a subset of arrays (the count), then served.
    ReprogramPartial(usize),
    /// Reprogrammed every array, then served.
    ReprogramFull,
}

impl RepairAction {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RepairAction::Serve => "serve",
            RepairAction::Refine => "refine",
            RepairAction::ReprogramPartial(_) => "reprogram-partial",
            RepairAction::ReprogramFull => "reprogram-full",
        }
    }
}

/// A [`RepairPolicy`] plus its running energy ledger.
///
/// Built fail-fast: [`RepairScheduler::new`] validates the policy
/// before any tick runs.
#[derive(Debug, Clone)]
pub struct RepairScheduler {
    policy: RepairPolicy,
    spent_energy_j: f64,
}

impl RepairScheduler {
    /// Creates a scheduler, validating the policy parameters up front.
    ///
    /// # Errors
    ///
    /// The [`RepairPolicy::validate`] conditions.
    pub fn new(policy: RepairPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(RepairScheduler {
            policy,
            spent_energy_j: 0.0,
        })
    }

    /// The policy this scheduler enforces.
    pub fn policy(&self) -> RepairPolicy {
        self.policy
    }

    /// Total write-and-verify energy spent so far.
    pub fn spent_energy_j(&self) -> f64 {
        self.spent_energy_j
    }
}

/// One tick of a lifetime trace: what the solver looked like, what the
/// scheduler did, and what serving cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// Tick number (1-based; tick `t` covers virtual time `(t−1)·tick_s
    /// → t·tick_s`).
    pub tick: u64,
    /// Health-probe relative residual after aging, before any repair.
    pub health: f64,
    /// The action the scheduler took.
    pub action: RepairAction,
    /// Arrays reprogrammed this tick.
    pub arrays_reprogrammed: u64,
    /// Write-and-verify energy paid this tick (J).
    pub energy_j: f64,
    /// Row-parallel write-and-verify downtime this tick (s).
    pub repair_time_s: f64,
    /// Total CG iterations spent refining served answers.
    pub refine_iterations: u64,
    /// CG iterations saved by warm-starting from the degraded answers
    /// (versus cold starts); 0 when nothing was refined.
    pub iterations_saved: i64,
    /// Mean relative residual of the served answers.
    pub accuracy: f64,
    /// SLO availability: `max(0, 1 − repair_time/tick_s)` when
    /// `accuracy <= slo_residual`, else `0.0`.
    pub availability: f64,
}

/// A prepared solver aging under an [`AgingModel`].
///
/// Owns a [`SolverReplica`] (engine + programmed tree), the pristine
/// system matrix, and per-array state: the pristine effective matrix
/// snapshotted at construction, the accumulated stuck-cell overlay,
/// the age since last reprogram, and the reprogram generation.
#[derive(Debug, Clone)]
pub struct AgedSolver<E: AmcEngine> {
    replica: SolverReplica<E>,
    matrix: Matrix,
    model: AgingModel,
    seed: u64,
    /// Per-array effective matrices snapshotted right after prepare —
    /// the write-and-verify targets a reprogram restores.
    pristine: Vec<Matrix>,
    /// Persistent stuck cells per array: `(row, col, forced value)`.
    stuck: Vec<Vec<(usize, usize, f64)>>,
    /// Ticks since each array was last (re)programmed.
    age_ticks: Vec<u64>,
    /// Reprogram count per array; keys the drift stream so a fresh
    /// write draws fresh per-cell drift exponents.
    generation: Vec<u64>,
    tick: u64,
    sentinel: Vec<f64>,
}

impl<E: AmcEngine> AgedSolver<E> {
    /// Wraps a freshly prepared replica in the aging layer.
    ///
    /// `matrix` is the pristine system matrix `A` (used by the health
    /// probe and refinement); `seed` keys every random stream.
    ///
    /// # Errors
    ///
    /// [`BlockAmcError::InvalidConfig`] from [`AgingModel::validate`]
    /// (fail-fast: nothing ages under an invalid model) or
    /// [`BlockAmcError::ShapeMismatch`] when `matrix` does not match
    /// the replica's size.
    pub fn new(
        mut replica: SolverReplica<E>,
        matrix: Matrix,
        model: AgingModel,
        seed: u64,
    ) -> Result<Self> {
        model.validate()?;
        let n = replica.size();
        if matrix.rows() != n || matrix.cols() != n {
            return Err(BlockAmcError::ShapeMismatch {
                op: "aged solver matrix",
                expected: n,
                got: matrix.rows().max(matrix.cols()),
            });
        }
        let mut pristine = Vec::new();
        {
            let (_, _, tree) = replica.parts_mut();
            tree.for_each_operand(&mut |_, op| pristine.push(op.effective_matrix()));
        }
        let arrays = pristine.len();
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(seed, SENTINEL_STREAM, 0, 0));
        let sentinel: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        Ok(AgedSolver {
            replica,
            matrix,
            model,
            seed,
            pristine,
            stuck: vec![Vec::new(); arrays],
            age_ticks: vec![0; arrays],
            generation: vec![0; arrays],
            tick: 0,
            sentinel,
        })
    }

    /// Problem size `n`.
    pub fn size(&self) -> usize {
        self.replica.size()
    }

    /// Number of programmed arrays aging independently.
    pub fn array_count(&self) -> usize {
        self.pristine.len()
    }

    /// Global tick counter (0 = freshly prepared).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The lifetime model.
    pub fn model(&self) -> &AgingModel {
        &self.model
    }

    /// The pristine system matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Total stuck cells accumulated across all arrays.
    pub fn stuck_cells(&self) -> usize {
        self.stuck.iter().map(Vec::len).sum()
    }

    /// Borrows the (possibly degraded) inner replica — e.g. to clone it
    /// for off-thread serving.
    pub fn replica(&self) -> &SolverReplica<E> {
        &self.replica
    }

    /// Solves against the current (aged) array state.
    ///
    /// At tick 0 this is bit-identical to solving on the replica before
    /// it was wrapped: construction only reads the programmed state.
    ///
    /// # Errors
    ///
    /// Shape mismatches and engine failures.
    pub fn solve(&mut self, b: &[f64]) -> Result<SolveReport> {
        self.replica.solve(b)
    }

    /// The health probe: solves the fixed sentinel RHS against the aged
    /// arrays and returns its relative residual against the pristine
    /// matrix (via [`refine::seed_quality`]). Cheap — one solve plus
    /// one mat-vec.
    ///
    /// # Errors
    ///
    /// Engine failures during the sentinel solve.
    pub fn health(&mut self) -> Result<f64> {
        let sentinel = self.sentinel.clone();
        let span = self.replica.recorder_mut().enter("aging.probe");
        let report = self.replica.solve(&sentinel)?;
        let quality = refine::seed_quality(&self.matrix, &sentinel, &report.x)?;
        self.replica.recorder_mut().exit(span);
        Ok(quality)
    }

    /// Attaches a span [`amc_obs::Recorder`] to the underlying replica:
    /// subsequent probe/repair/serve ticks record `aging.*` spans on it
    /// (read-only instrumentation; results are unchanged).
    pub fn set_recorder(&mut self, recorder: amc_obs::Recorder) {
        self.replica.set_recorder(recorder);
    }

    /// The current degraded target matrix of array `idx`: pristine
    /// state decayed by the array's age, with the stuck overlay forced
    /// on top.
    fn degraded_matrix(&self, idx: usize) -> Result<Matrix> {
        let age_s = self.age_ticks[idx] as f64 * self.model.tick_s;
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(
            self.seed,
            DRIFT_STREAM,
            idx as u64,
            self.generation[idx],
        ));
        let mut m = self
            .model
            .drift
            .apply(&self.pristine[idx], age_s, &mut rng)?;
        for &(r, c, v) in &self.stuck[idx] {
            m.set(r, c, v);
        }
        Ok(m)
    }

    /// Draws this tick's new stuck-at failures for every array and
    /// appends them to the persistent overlay. Zero cells are skipped:
    /// they are never programmed (the cost model treats them as free),
    /// so they have no device to get stuck.
    fn draw_faults(&mut self) {
        if self.model.faults.is_none() {
            return;
        }
        for idx in 0..self.pristine.len() {
            let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(
                self.seed,
                FAULT_STREAM,
                idx as u64,
                self.tick,
            ));
            let (rows, cols) = (self.pristine[idx].rows(), self.pristine[idx].cols());
            for r in 0..rows {
                for c in 0..cols {
                    let target = self.pristine[idx].get(r, c).unwrap_or(0.0);
                    if target == 0.0 {
                        continue;
                    }
                    let state = self.model.faults.draw(&mut rng);
                    if state == FaultState::Healthy
                        || self.stuck[idx]
                            .iter()
                            .any(|&(sr, sc, _)| sr == r && sc == c)
                    {
                        continue;
                    }
                    let magnitude = match state {
                        FaultState::StuckOn => self.model.faults.g_on,
                        FaultState::StuckOff => self.model.faults.g_off,
                        FaultState::Healthy => unreachable!(),
                    };
                    self.stuck[idx].push((r, c, magnitude.copysign(target)));
                }
            }
        }
    }

    /// Recomputes every array's degraded matrix and installs it through
    /// the engine, in canonical program order.
    fn install_all(&mut self) -> Result<()> {
        let degraded: Vec<Matrix> = (0..self.pristine.len())
            .map(|i| self.degraded_matrix(i))
            .collect::<Result<_>>()?;
        let (engine, _, tree) = self.replica.parts_mut();
        tree.for_each_operand_mut(&mut |idx, op| {
            *op = engine.program(&degraded[idx])?;
            Ok(())
        })
    }

    /// Advances the virtual clock by `ticks`, aging every array: drift
    /// deepens with age, new stuck cells are drawn per tick, and the
    /// degraded state is installed on the arrays.
    ///
    /// # Errors
    ///
    /// Drift-model application and engine programming failures.
    pub fn advance(&mut self, ticks: u64) -> Result<()> {
        for _ in 0..ticks {
            self.tick += 1;
            for age in &mut self.age_ticks {
                *age += 1;
            }
            self.draw_faults();
        }
        if ticks > 0 {
            self.install_all()?;
        }
        Ok(())
    }

    /// Reprograms the given arrays back to their pristine targets:
    /// resets their age, bumps their generation (fresh drift draws),
    /// charges [`ProgramCostModel`] energy/time, and reinstalls the
    /// tree. Stuck cells persist — write-and-verify cannot fix them.
    ///
    /// Returns `(energy_j, row_parallel_time_s)`.
    fn reprogram_arrays(&mut self, idxs: &[usize]) -> Result<(f64, f64)> {
        let span = self.replica.recorder_mut().enter("aging.reprogram");
        let mut energy = 0.0;
        let mut time = 0.0;
        for &i in idxs {
            let cost = program_cost(
                &self.pristine[i],
                self.model.program_accuracy,
                &self.model.cost,
            )
            .map_err(BlockAmcError::from)?;
            energy += cost.energy_j;
            time += cost.time_row_parallel_s;
            self.age_ticks[i] = 0;
            self.generation[i] += 1;
        }
        self.install_all()?;
        let arrays = idxs.len() as f64;
        self.replica
            .recorder_mut()
            .exit_with(span, &[("arrays", arrays)]);
        Ok((energy, time))
    }

    /// The `k` arrays whose current state deviates most from pristine
    /// (relative Frobenius deviation), worst first.
    fn worst_arrays(&self, k: usize) -> Result<Vec<usize>> {
        let mut scored: Vec<(usize, f64)> = Vec::with_capacity(self.pristine.len());
        for i in 0..self.pristine.len() {
            let deviation = self
                .degraded_matrix(i)?
                .sub_matrix(&self.pristine[i])?
                .frobenius_norm();
            let scale = self.pristine[i].frobenius_norm();
            scored.push((
                i,
                if scale > 0.0 {
                    deviation / scale
                } else {
                    deviation
                },
            ));
        }
        // Stable worst-first order with the array index as tie-break,
        // so the selection is deterministic.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        Ok(scored.into_iter().take(k).map(|(i, _)| i).collect())
    }

    /// Runs one full scheduler tick: age one tick, probe health, let
    /// the policy act (see [`RepairPolicy`]), serve every RHS in `rhs`,
    /// and return the tick's [`TickRecord`].
    ///
    /// # Errors
    ///
    /// Aging, engine, programming-cost, and CG-refinement failures
    /// (refinement requires the system matrix to be SPD).
    pub fn run_tick(
        &mut self,
        scheduler: &mut RepairScheduler,
        rhs: &[Vec<f64>],
    ) -> Result<TickRecord> {
        let tick_span = self.replica.recorder_mut().enter("aging.tick");
        self.advance(1)?;
        let health = self.health()?;

        let mut action = RepairAction::Serve;
        let mut energy_j = 0.0;
        let mut repair_time_s = 0.0;
        let mut arrays_reprogrammed = 0u64;
        match scheduler.policy {
            RepairPolicy::Never => {}
            RepairPolicy::Always => {
                let all: Vec<usize> = (0..self.pristine.len()).collect();
                let (e, t) = self.reprogram_arrays(&all)?;
                energy_j = e;
                repair_time_s = t;
                arrays_reprogrammed = all.len() as u64;
                action = RepairAction::ReprogramFull;
            }
            RepairPolicy::ResidualThreshold {
                refine_above,
                reprogram_above,
            } => {
                if health > reprogram_above {
                    let all: Vec<usize> = (0..self.pristine.len()).collect();
                    let (e, t) = self.reprogram_arrays(&all)?;
                    energy_j = e;
                    repair_time_s = t;
                    arrays_reprogrammed = all.len() as u64;
                    action = RepairAction::ReprogramFull;
                } else if health > refine_above {
                    action = RepairAction::Refine;
                }
            }
            RepairPolicy::Budgeted {
                energy_budget_j,
                reprogram_above,
                arrays_per_repair,
            } => {
                if health > reprogram_above {
                    let idxs = self.worst_arrays(arrays_per_repair)?;
                    let estimate: f64 = idxs
                        .iter()
                        .map(|&i| {
                            program_cost(
                                &self.pristine[i],
                                self.model.program_accuracy,
                                &self.model.cost,
                            )
                            .map(|c| c.energy_j)
                            .map_err(BlockAmcError::from)
                        })
                        .sum::<Result<f64>>()?;
                    if scheduler.spent_energy_j + estimate <= energy_budget_j {
                        let (e, t) = self.reprogram_arrays(&idxs)?;
                        energy_j = e;
                        repair_time_s = t;
                        arrays_reprogrammed = idxs.len() as u64;
                        action = RepairAction::ReprogramPartial(idxs.len());
                    } else {
                        action = RepairAction::Refine;
                    }
                }
            }
        }
        scheduler.spent_energy_j += energy_j;

        // Serve the tick's request batch against whatever state the
        // policy left behind, refining digitally when it asked for it.
        let refine = action == RepairAction::Refine;
        let mut residual_sum = 0.0;
        let mut refine_iterations = 0u64;
        let mut iterations_saved = 0i64;
        for b in rhs {
            let degraded = self.replica.solve(b)?.x;
            let x = if refine {
                let tolerance = (self.model.slo_residual * 0.1).max(1e-14);
                let max_iterations = 20 * self.size() + 100;
                let span = self.replica.recorder_mut().enter("aging.refine");
                let outcome =
                    refine::refine_with_cg(&self.matrix, b, &degraded, tolerance, max_iterations)?;
                let iters = outcome.iterations_with_seed as f64;
                self.replica
                    .recorder_mut()
                    .exit_with(span, &[("iterations", iters)]);
                refine_iterations += outcome.iterations_with_seed as u64;
                iterations_saved += outcome.iterations_saved() as i64;
                outcome.x
            } else {
                degraded
            };
            residual_sum += refine::seed_quality(&self.matrix, b, &x)?;
        }
        let accuracy = if rhs.is_empty() {
            health
        } else {
            residual_sum / rhs.len() as f64
        };
        let availability = if accuracy <= self.model.slo_residual {
            (1.0 - repair_time_s / self.model.tick_s).max(0.0)
        } else {
            0.0
        };

        self.replica
            .recorder_mut()
            .exit_with(tick_span, &[("health", health)]);
        Ok(TickRecord {
            tick: self.tick,
            health,
            action,
            arrays_reprogrammed,
            energy_j,
            repair_time_s,
            refine_iterations,
            iterations_saved,
            accuracy,
            availability,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{BlockAmcSolver, SolverConfig};
    use amc_linalg::Matrix;

    fn spd_matrix(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + i as f64 * 0.1
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        })
    }

    fn aged(n: usize, model: AgingModel, seed: u64) -> AgedSolver<crate::engine::NumericEngine> {
        let a = spd_matrix(n);
        let config = SolverConfig::builder().finish().unwrap();
        let mut solver = BlockAmcSolver::from_config(crate::engine::NumericEngine::new(), config);
        let replica = solver.prepare(&a).unwrap().replicate(1).remove(0);
        AgedSolver::new(replica, a, model, seed).unwrap()
    }

    fn accelerated_model() -> AgingModel {
        AgingModel {
            drift: DriftModel {
                nu: 0.05,
                nu_sigma: 0.01,
                t0_s: 1.0,
            },
            tick_s: 100.0,
            ..AgingModel::typical_rram()
        }
    }

    #[test]
    fn fresh_solver_is_bit_identical_to_unwrapped_replica() {
        let a = spd_matrix(8);
        let config = SolverConfig::builder().finish().unwrap();
        let mut solver = BlockAmcSolver::from_config(crate::engine::NumericEngine::new(), config);
        let mut replicas = solver.prepare(&a).unwrap().replicate(2);
        let mut direct = replicas.pop().unwrap();
        let mut aged =
            AgedSolver::new(replicas.pop().unwrap(), a, AgingModel::typical_rram(), 7).unwrap();
        let b = vec![1.0; 8];
        assert_eq!(direct.solve(&b).unwrap().x, aged.solve(&b).unwrap().x);
    }

    #[test]
    fn health_degrades_monotonically_under_drift() {
        let mut aged = aged(8, accelerated_model(), 11);
        let h0 = aged.health().unwrap();
        assert!(h0 < 1e-10, "fresh health {h0}");
        let mut last = h0;
        for _ in 0..5 {
            aged.advance(3).unwrap();
            let h = aged.health().unwrap();
            assert!(
                h >= last,
                "health must not improve while aging: {h} < {last}"
            );
            last = h;
        }
        assert!(last > 1e-4, "drift should be visible, got {last}");
    }

    #[test]
    fn aging_replay_is_deterministic() {
        let run = || {
            let mut aged = aged(8, accelerated_model(), 23);
            let mut sched = RepairScheduler::new(RepairPolicy::ResidualThreshold {
                refine_above: 1e-6,
                reprogram_above: 1e-2,
            })
            .unwrap();
            let rhs = vec![vec![1.0; 8], vec![0.5; 8]];
            (0..6)
                .map(|_| aged.run_tick(&mut sched, &rhs).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reprogram_restores_health_and_charges_energy() {
        let mut aged = aged(8, accelerated_model(), 31);
        let mut sched = RepairScheduler::new(RepairPolicy::Always).unwrap();
        aged.advance(10).unwrap();
        let degraded = aged.health().unwrap();
        assert!(degraded > 1e-6);
        let rec = aged.run_tick(&mut sched, &[vec![1.0; 8]]).unwrap();
        assert_eq!(rec.action, RepairAction::ReprogramFull);
        assert!(rec.energy_j > 0.0);
        assert!(sched.spent_energy_j() > 0.0);
        let healed = aged.health().unwrap();
        assert!(healed < degraded * 1e-2, "reprogram should heal: {healed}");
    }

    #[test]
    fn stuck_cells_survive_reprogramming() {
        let mut model = accelerated_model();
        model.faults = FaultModel {
            p_stuck_on: 0.05,
            p_stuck_off: 0.05,
            g_on: 1.0,
            g_off: 0.0,
        };
        let mut aged = aged(8, model, 5);
        aged.advance(10).unwrap();
        let stuck = aged.stuck_cells();
        assert!(stuck > 0, "hazard of 10% over 10 ticks should stick cells");
        let mut sched = RepairScheduler::new(RepairPolicy::Always).unwrap();
        aged.run_tick(&mut sched, &[]).unwrap();
        assert!(aged.stuck_cells() >= stuck);
    }

    #[test]
    fn budgeted_policy_stops_spending_at_the_budget() {
        let mut aged = aged(8, accelerated_model(), 13);
        let probe_cost = program_cost(&aged.pristine[0], 0.01, &aged.model.cost)
            .unwrap()
            .energy_j;
        let mut sched = RepairScheduler::new(RepairPolicy::Budgeted {
            energy_budget_j: probe_cost * 1.5,
            reprogram_above: 1e-9,
            arrays_per_repair: 1,
        })
        .unwrap();
        let mut repairs = 0;
        for _ in 0..8 {
            let rec = aged.run_tick(&mut sched, &[vec![1.0; 8]]).unwrap();
            repairs += rec.arrays_reprogrammed;
        }
        assert!(repairs >= 1, "budget allows at least one repair");
        assert!(
            sched.spent_energy_j() <= probe_cost * 1.5,
            "budget must bound spending"
        );
    }

    #[test]
    fn invalid_configs_fail_fast() {
        let a = spd_matrix(4);
        let config = SolverConfig::builder().finish().unwrap();
        let mut solver = BlockAmcSolver::from_config(crate::engine::NumericEngine::new(), config);
        let replica = solver.prepare(&a).unwrap().replicate(1).remove(0);
        let mut model = AgingModel::typical_rram();
        model.tick_s = 0.0;
        assert!(matches!(
            AgedSolver::new(replica, a, model, 1),
            Err(BlockAmcError::InvalidConfig { .. })
        ));
        assert!(RepairScheduler::new(RepairPolicy::ResidualThreshold {
            refine_above: 1e-2,
            reprogram_above: 1e-4,
        })
        .is_err());
        assert!(RepairScheduler::new(RepairPolicy::Budgeted {
            energy_budget_j: 0.0,
            reprogram_above: 1e-3,
            arrays_per_repair: 1,
        })
        .is_err());
        assert!(RepairScheduler::new(RepairPolicy::Budgeted {
            energy_budget_j: 1.0,
            reprogram_above: 1e-3,
            arrays_per_repair: 0,
        })
        .is_err());
    }
}

//! AMC as a seed / preconditioner for digital iterative solvers.
//!
//! The paper positions AMC pragmatically: "AMC is hard to achieve high
//! precision, rather it is positioned to provide a seed solution (or
//! equivalently as a preconditioner) for digital computers, to speed up
//! the convergence of iterative algorithms" (§IV). This module quantifies
//! that claim: take an analog solution, use it to warm-start a digital
//! conjugate-gradient solve, and count the iterations saved.

use amc_linalg::iterative::{conjugate_gradient, IterOptions, JacobiPrecond};
use amc_linalg::sparse::CsrMatrix;
use amc_linalg::{vector, Matrix};

use crate::Result;

/// Relative residual `‖b − A·x‖₂ / ‖b‖₂` of a candidate solution — the
/// "quality" of an analog seed.
///
/// # Errors
///
/// Propagates shape mismatches from the matrix-vector product.
pub fn seed_quality(a: &Matrix, b: &[f64], x: &[f64]) -> Result<f64> {
    let r = vector::sub(b, &a.matvec(x)?);
    let nb = vector::norm2(b);
    Ok(if nb == 0.0 {
        vector::norm2(&r)
    } else {
        vector::norm2(&r) / nb
    })
}

/// Outcome of a warm-started digital refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementOutcome {
    /// The refined solution.
    pub x: Vec<f64>,
    /// CG iterations with the analog seed.
    pub iterations_with_seed: usize,
    /// CG iterations from a zero initial guess (the digital-only
    /// baseline).
    pub iterations_cold: usize,
    /// Final relative residual.
    pub residual: f64,
}

impl RefinementOutcome {
    /// Iterations saved by the analog seed.
    pub fn iterations_saved(&self) -> isize {
        self.iterations_cold as isize - self.iterations_with_seed as isize
    }
}

/// Refines an analog seed with Jacobi-preconditioned conjugate gradients
/// and reports the iteration count against a cold-started baseline.
///
/// `a` must be symmetric positive definite (the CG requirement; Wishart
/// workloads qualify). Tolerance is the relative residual.
///
/// # Errors
///
/// * Shape mismatches.
/// * [`amc_linalg::LinalgError::ConvergenceFailure`] (wrapped) if CG does
///   not converge within `max_iterations`.
pub fn refine_with_cg(
    a: &Matrix,
    b: &[f64],
    seed: &[f64],
    tolerance: f64,
    max_iterations: usize,
) -> Result<RefinementOutcome> {
    let sparse = CsrMatrix::from_dense(a);
    let precond = JacobiPrecond::new(&sparse)?;
    let opts = IterOptions {
        max_iterations,
        tolerance,
    };
    let warm = conjugate_gradient(&sparse, b, Some(seed), &precond, opts)?;
    let cold = conjugate_gradient(&sparse, b, None, &precond, opts)?;
    let nb = vector::norm2(b).max(f64::MIN_POSITIVE);
    Ok(RefinementOutcome {
        residual: warm.residual / nb,
        x: warm.x,
        iterations_with_seed: warm.iterations,
        iterations_cold: cold.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::{generate, lu};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spd_workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn seed_quality_is_zero_for_exact_solution() {
        let (a, b) = spd_workload(8, 1);
        let x = lu::solve(&a, &b).unwrap();
        assert!(seed_quality(&a, &b, &x).unwrap() < 1e-12);
        assert!(seed_quality(&a, &b, &[0.0; 8]).unwrap() > 0.99);
    }

    #[test]
    fn good_seed_saves_iterations() {
        let (a, b) = spd_workload(24, 2);
        let x_exact = lu::solve(&a, &b).unwrap();
        // A 1%-accurate analog-style seed (element-wise perturbation).
        let seed: Vec<f64> = x_exact
            .iter()
            .enumerate()
            .map(|(i, v)| v * (1.0 + 0.01 * ((i as f64).sin())))
            .collect();
        let out = refine_with_cg(&a, &b, &seed, 1e-10, 10_000).unwrap();
        assert!(
            out.iterations_with_seed < out.iterations_cold,
            "warm {} vs cold {}",
            out.iterations_with_seed,
            out.iterations_cold
        );
        assert!(out.iterations_saved() > 0);
        assert!(out.residual <= 1e-10);
        assert!(vector::approx_eq(&out.x, &x_exact, 1e-6));
    }

    #[test]
    fn zero_seed_equals_cold_start() {
        let (a, b) = spd_workload(12, 3);
        let out = refine_with_cg(&a, &b, &[0.0; 12], 1e-8, 10_000).unwrap();
        assert_eq!(out.iterations_with_seed, out.iterations_cold);
        assert_eq!(out.iterations_saved(), 0);
    }

    #[test]
    fn shape_mismatch_propagates() {
        let (a, b) = spd_workload(8, 4);
        assert!(seed_quality(&a, &b, &[0.0; 3]).is_err());
        assert!(refine_with_cg(&a, &b, &[0.0; 3], 1e-8, 100).is_err());
    }
}

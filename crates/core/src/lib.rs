//! # BlockAMC — scalable in-memory analog matrix computing
//!
//! Reproduction of *"BlockAMC: Scalable In-Memory Analog Matrix Computing
//! for Solving Linear Systems"* (Pan, Zuo, Luo, Sun, Huang — DATE 2024).
//!
//! A single in-memory INV circuit solves `A·x = b` in one step, but does
//! not scale past the manufacturable crossbar size. BlockAMC partitions
//!
//! ```text
//! A = [ A1  A2 ]      b = [ f ]
//!     [ A3  A4 ]          [ g ]
//! ```
//!
//! pre-computes the Schur complement `A4s = A4 − A3·A1⁻¹·A2` digitally,
//! and recovers the full solution with five cascaded analog operations
//! (3×INV + 2×MVM) on half-size arrays — see [`one_stage`]. Recursion
//! yields the [`two_stage`] solver on quarter-size arrays, and
//! [`multi_stage`] generalizes to arbitrary depth.
//!
//! All three are faces of **one recursive execution core**: the
//! five-step cascade is implemented exactly once (in [`multi_stage`]),
//! and the one-/two-stage solvers are depth-1/depth-2 trees with the
//! macro and bus signal paths layered on — bit-identical to their
//! multi-stage counterparts by property test.
//!
//! The algorithm is written once against the object-safe
//! [`engine::AmcEngine`] trait, and the set of backends is **open**:
//! each backend owns its programmed state ([`engine::OperandState`]),
//! is selectable as data through a serializable [`engine::EngineSpec`]
//! or a name in the [`engine::EngineRegistry`], and drives the whole
//! stack through `Box<dyn AmcEngine>` bit-identically to the concrete
//! type. The shipped backends range from the exact digital reference
//! through cache-blocked and `b`-bit fixed-point digital solvers to the
//! full analog device + circuit stack — see
//! [`engine::EngineRegistry::builtin`] for the authoritative list.
//!
//! [`solver::BlockAmcSolver`] is the high-level facade, configured
//! through [`solver::SolverConfig::builder`]: pick an architecture
//! ([`solver::Stages`]), a per-level signal-path plan
//! ([`solver::SignalPlan`]), and a split rule ([`solver::SplitRule`]),
//! then [`solver::BlockAmcSolver::prepare`] programs every array once
//! and the returned [`solver::PreparedSolver`] amortizes that
//! programming over any number of right-hand sides (§III.B).
//! [`macro_model`] describes the reconfigurable hardware macro (clock
//! phases S0–S4, transmission-gate topologies, S&H pipelining) and its
//! timing.
//!
//! Multi-RHS and Monte-Carlo workloads parallelize across worker
//! threads: [`batch::solve_batch_parallel`] shards a batch over
//! replicated macro instances ([`solver::PreparedSolver::replicate`])
//! and [`montecarlo::yield_analysis_parallel`] farms out variation
//! trials, both over the `amc_par` work-stealing pool and both
//! **bit-identical to their serial counterparts at every worker
//! count** (replicas inherit the prepare-time variation draw; trials
//! own per-trial RNG streams).
//!
//! # Quickstart
//!
//! ```
//! use blockamc::engine::NumericEngine;
//! use blockamc::solver::{SolverConfig, Stages};
//! use amc_linalg::{generate, Matrix};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), blockamc::BlockAmcError> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let a = generate::wishart_default(8, &mut rng)?;
//! let b = generate::random_vector(8, &mut rng);
//!
//! let mut solver = SolverConfig::builder()
//!     .stages(Stages::One)
//!     .build(NumericEngine::new())?;
//!
//! // Program the arrays once, then solve any number of right-hand sides.
//! let mut prepared = solver.prepare(&a)?;
//! let report = prepared.solve(&b)?;
//! let residual = amc_linalg::vector::sub(&a.matvec(&report.x)?, &b);
//! assert!(amc_linalg::vector::norm2(&residual) < 1e-9);
//! assert_eq!(report.stats_delta.program_ops, 0); // arrays were reused
//! # Ok(())
//! # }
//! ```
//!
//! # Migrating from the module-level APIs
//!
//! The [`one_stage`] and [`two_stage`] modules remain available as the
//! low-level execution layer (and as the reference the facade is pinned
//! bit-identical to, see `tests/solver_equivalence.rs`), but new code
//! should drive the facade instead — it subsumes them:
//!
//! | legacy call | builder equivalent |
//! |-------------|--------------------|
//! | `one_stage::prepare_matrix` + `one_stage::solve(.., io)` | `SolverConfig::builder().stages(Stages::One).io(io)` → `prepare` → `solve` |
//! | `two_stage::prepare` + `two_stage::solve(.., io)` | `SolverConfig::builder().stages(Stages::Two).io(io)` → `prepare` → `solve` |
//! | `multi_stage::prepare(depth)` + `multi_stage::solve` | `SolverConfig::builder().stages(Stages::Multi(depth))` → `prepare` → `solve` |
//!
//! The facade adds what the modules hard-wired: per-level signal plans
//! ([`solver::SignalPlan`]), searched splits
//! ([`solver::SplitRule::Searched`]), trace-capture control, and the
//! prepare/solve split for multi-RHS workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod batch;
pub mod converter;
pub mod engine;
mod error;
pub mod macro_model;
pub mod montecarlo;
pub mod multi_stage;
pub mod one_stage;
pub mod partition;
pub mod refine;
pub mod solver;
pub mod split_search;
pub mod two_stage;

pub use error::BlockAmcError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, BlockAmcError>;

//! # BlockAMC — scalable in-memory analog matrix computing
//!
//! Reproduction of *"BlockAMC: Scalable In-Memory Analog Matrix Computing
//! for Solving Linear Systems"* (Pan, Zuo, Luo, Sun, Huang — DATE 2024).
//!
//! A single in-memory INV circuit solves `A·x = b` in one step, but does
//! not scale past the manufacturable crossbar size. BlockAMC partitions
//!
//! ```text
//! A = [ A1  A2 ]      b = [ f ]
//!     [ A3  A4 ]          [ g ]
//! ```
//!
//! pre-computes the Schur complement `A4s = A4 − A3·A1⁻¹·A2` digitally,
//! and recovers the full solution with five cascaded analog operations
//! (3×INV + 2×MVM) on half-size arrays — see [`one_stage`]. Recursion
//! yields the [`two_stage`] solver on quarter-size arrays, and
//! [`multi_stage`] generalizes to arbitrary depth.
//!
//! All three are faces of **one recursive execution core**: the
//! five-step cascade is implemented exactly once (in [`multi_stage`]),
//! and the one-/two-stage solvers are depth-1/depth-2 trees with the
//! macro and bus signal paths layered on — bit-identical to their
//! multi-stage counterparts by property test.
//!
//! The algorithm is written once against the [`engine::AmcEngine`] trait:
//!
//! * [`engine::NumericEngine`] — exact digital solves (the paper's
//!   "numerical solver" reference),
//! * [`engine::CircuitEngine`] — every INV/MVM runs through the full
//!   device + circuit stack (`amc-device`, `amc-circuit`): conductance
//!   mapping, programming variation, wire resistance, finite op-amp gain,
//!   and optional DAC/ADC quantization.
//!
//! [`solver::BlockAmcSolver`] is the high-level facade; [`macro_model`]
//! describes the reconfigurable hardware macro (clock phases S0–S4,
//! transmission-gate topologies, S&H pipelining) and its timing.
//!
//! # Quickstart
//!
//! ```
//! use blockamc::engine::NumericEngine;
//! use blockamc::solver::{BlockAmcSolver, Stages};
//! use amc_linalg::{generate, Matrix};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), blockamc::BlockAmcError> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let a = generate::wishart_default(8, &mut rng)?;
//! let b = generate::random_vector(8, &mut rng);
//!
//! let mut solver = BlockAmcSolver::new(NumericEngine::new(), Stages::One);
//! let report = solver.solve(&a, &b)?;
//! let residual = amc_linalg::vector::sub(&a.matvec(&report.x)?, &b);
//! assert!(amc_linalg::vector::norm2(&residual) < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod converter;
pub mod engine;
mod error;
pub mod macro_model;
pub mod montecarlo;
pub mod multi_stage;
pub mod one_stage;
pub mod partition;
pub mod refine;
pub mod solver;
pub mod split_search;
pub mod two_stage;

pub use error::BlockAmcError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, BlockAmcError>;

use std::fmt;

/// Error type for all fallible operations in `blockamc`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BlockAmcError {
    /// Invalid solver/partition configuration.
    InvalidConfig {
        /// Explanation of what was wrong.
        message: String,
    },
    /// Input shapes disagree (matrix not square, `b` wrong length, …).
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Expected size.
        expected: usize,
        /// Provided size.
        got: usize,
    },
    /// An engine was handed an operand programmed by a different engine
    /// kind (e.g. a numeric operand passed to the circuit engine).
    OperandMismatch {
        /// The engine that rejected the operand.
        engine: &'static str,
    },
    /// A name was looked up in an [`crate::engine::EngineRegistry`]
    /// that has no backend registered under it.
    UnknownEngine {
        /// The unregistered name.
        name: String,
        /// Comma-separated names the registry does know.
        known: String,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(amc_linalg::LinalgError),
    /// An underlying device-model operation failed.
    Device(amc_device::DeviceError),
    /// An underlying circuit-simulation operation failed.
    Circuit(amc_circuit::CircuitError),
}

impl BlockAmcError {
    /// Shorthand constructor for [`BlockAmcError::InvalidConfig`].
    pub fn config(message: impl Into<String>) -> Self {
        BlockAmcError::InvalidConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for BlockAmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockAmcError::InvalidConfig { message } => {
                write!(f, "invalid solver configuration: {message}")
            }
            BlockAmcError::ShapeMismatch { op, expected, got } => {
                write!(f, "shape mismatch in {op}: expected {expected}, got {got}")
            }
            BlockAmcError::OperandMismatch { engine } => {
                write!(
                    f,
                    "operand was programmed by a different engine kind than {engine}"
                )
            }
            BlockAmcError::UnknownEngine { name, known } => {
                write!(
                    f,
                    "no engine backend registered under '{name}' (known: {known})"
                )
            }
            BlockAmcError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            BlockAmcError::Device(e) => write!(f, "device error: {e}"),
            BlockAmcError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl std::error::Error for BlockAmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockAmcError::Linalg(e) => Some(e),
            BlockAmcError::Device(e) => Some(e),
            BlockAmcError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amc_linalg::LinalgError> for BlockAmcError {
    fn from(e: amc_linalg::LinalgError) -> Self {
        BlockAmcError::Linalg(e)
    }
}

impl From<amc_device::DeviceError> for BlockAmcError {
    fn from(e: amc_device::DeviceError) -> Self {
        BlockAmcError::Device(e)
    }
}

impl From<amc_circuit::CircuitError> for BlockAmcError {
    fn from(e: amc_circuit::CircuitError) -> Self {
        BlockAmcError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BlockAmcError::config("split too large")
            .to_string()
            .contains("split too large"));
        assert!(BlockAmcError::ShapeMismatch {
            op: "solve",
            expected: 8,
            got: 4
        }
        .to_string()
        .contains("solve"));
        assert!(BlockAmcError::OperandMismatch { engine: "numeric" }
            .to_string()
            .contains("numeric"));
    }

    #[test]
    fn wraps_all_sources() {
        use std::error::Error;
        assert!(
            BlockAmcError::from(amc_linalg::LinalgError::Singular { pivot: 0 })
                .source()
                .is_some()
        );
        assert!(BlockAmcError::from(amc_device::DeviceError::config("x"))
            .source()
            .is_some());
        assert!(BlockAmcError::from(amc_circuit::CircuitError::config("y"))
            .source()
            .is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BlockAmcError>();
    }
}

//! The two-stage BlockAMC solver (paper §III.C, Fig. 5).
//!
//! When `n/2` still exceeds the manufacturable array size, the first-stage
//! blocks are partitioned again: the INV operations on `A1` and `A4s` are
//! themselves solved by one-stage BlockAMC macros on `n/4` arrays, and the
//! first-stage MVM operations on `A2`/`A3` are tiled into four partial
//! MVMs whose results are recombined.
//!
//! In the paper's architecture the four one-stage macros communicate
//! through the data bus: each macro's output is "converted and stored in
//! the main memory, which in turn will be converted back as analog input
//! voltages for the following BlockAMC macro". The inter-macro hops
//! therefore pass through the ADC/DAC pair (quantized when an
//! [`IoConfig`] with converters is supplied), unlike the intra-macro S&H
//! cascades.
//!
//! **Migration note:** this module is the low-level execution layer.
//! Prefer the builder facade —
//! `SolverConfig::builder().stages(Stages::Two).io(io)` followed by
//! [`crate::solver::BlockAmcSolver::prepare`] — which is pinned
//! bit-identical to these functions and adds searched splits, per-level
//! signal plans, and multi-RHS batching (see the crate-level migration
//! table).

use amc_linalg::{vector, Matrix};

use crate::converter::IoConfig;
use crate::engine::{AmcEngine, Operand};
use crate::multi_stage::{run_cascade, LevelIo, MvmExec, SignalPath, TraceLog};
use crate::one_stage::{self, PreparedOneStage};
use crate::partition::BlockPartition;
use crate::{BlockAmcError, Result};

/// A rectangular matrix programmed as four quadrant tiles for partial
/// MVM (the "divide and recover" scheme the paper cites for forward
/// operations).
#[derive(Debug, Clone)]
pub struct TiledMvm {
    rows: usize,
    cols: usize,
    row_split: usize,
    col_split: usize,
    /// Quadrants in row-major order: `[top-left, top-right, bottom-left,
    /// bottom-right]`; `None` marks a zero tile (no array needed).
    tiles: [Option<Operand>; 4],
}

impl TiledMvm {
    /// Partitions `m` at half rows/columns and programs the non-zero
    /// quadrants.
    ///
    /// # Errors
    ///
    /// * [`BlockAmcError::InvalidConfig`] if either dimension is < 2.
    /// * Programming failures.
    pub fn prepare<E: AmcEngine + ?Sized>(engine: &mut E, m: &Matrix) -> Result<Self> {
        let (rows, cols) = m.shape();
        if rows < 2 || cols < 2 {
            return Err(BlockAmcError::config(format!(
                "tiled MVM requires at least 2x2, got {rows}x{cols}"
            )));
        }
        let row_split = rows.div_ceil(2);
        let col_split = cols.div_ceil(2);
        let quadrants = [
            m.block(0, 0, row_split, col_split)?,
            m.block(0, col_split, row_split, cols - col_split)?,
            m.block(row_split, 0, rows - row_split, col_split)?,
            m.block(row_split, col_split, rows - row_split, cols - col_split)?,
        ];
        let mut tiles: [Option<Operand>; 4] = [None, None, None, None];
        for (slot, q) in tiles.iter_mut().zip(quadrants.iter()) {
            if !q.is_zero() {
                *slot = Some(engine.program(q)?);
            }
        }
        Ok(TiledMvm {
            rows,
            cols,
            row_split,
            col_split,
            tiles,
        })
    }

    /// Computes `−M·x` from four partial MVMs: each half of the output is
    /// the (analog) sum of two quadrant results.
    ///
    /// # Errors
    ///
    /// Shape mismatches and engine failures.
    pub fn mvm<E: AmcEngine + ?Sized>(&mut self, engine: &mut E, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(BlockAmcError::ShapeMismatch {
                op: "tiled_mvm",
                expected: self.cols,
                got: x.len(),
            });
        }
        let (xt, xb) = (&x[..self.col_split], &x[self.col_split..]);
        let mut top = vec![0.0; self.row_split];
        let mut bottom = vec![0.0; self.rows - self.row_split];
        // Engine MVM returns −(tile·part); summing negatives yields the
        // negative of the summed products, preserving the AMC sign.
        if let Some(t) = self.tiles[0].as_mut() {
            vector::axpy(1.0, &engine.mvm(t, xt)?, &mut top);
        }
        if let Some(t) = self.tiles[1].as_mut() {
            vector::axpy(1.0, &engine.mvm(t, xb)?, &mut top);
        }
        if let Some(t) = self.tiles[2].as_mut() {
            vector::axpy(1.0, &engine.mvm(t, xt)?, &mut bottom);
        }
        if let Some(t) = self.tiles[3].as_mut() {
            vector::axpy(1.0, &engine.mvm(t, xb)?, &mut bottom);
        }
        Ok(vector::concat(&top, &bottom))
    }

    /// Number of programmed (non-zero) tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.iter().filter(|t| t.is_some()).count()
    }
}

// A tiled matrix is an MVM executor for the recursive cascade core.
impl<E: AmcEngine + ?Sized> MvmExec<E> for TiledMvm {
    fn mvm_signed(&mut self, engine: &mut E, x: &[f64]) -> Result<Vec<f64>> {
        self.mvm(engine, x)
    }
}

/// A fully prepared two-stage solver: inner one-stage macros for the INV
/// blocks, tiled arrays for the MVM blocks.
#[derive(Debug, Clone)]
pub struct PreparedTwoStage {
    split: usize,
    n: usize,
    /// Inner one-stage macro solving with `A1` (used twice).
    a1: PreparedOneStage,
    /// Inner one-stage macro solving with `A4s`.
    a4s: PreparedOneStage,
    /// Tiled `A2` (`None` for a zero block).
    a2: Option<TiledMvm>,
    /// Tiled `A3` (`None` for a zero block).
    a3: Option<TiledMvm>,
}

impl PreparedTwoStage {
    /// The first-stage split index.
    pub fn split(&self) -> usize {
        self.split
    }

    /// Full problem size `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Borrows the inner one-stage macro for `A1` (diagnostics).
    pub fn a1_macro(&self) -> &PreparedOneStage {
        &self.a1
    }

    /// Borrows the inner one-stage macro for `A4s` (diagnostics).
    pub fn a4s_macro(&self) -> &PreparedOneStage {
        &self.a4s
    }
}

/// Result of a two-stage solve.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageSolution {
    /// The recovered solution of `A·x = b`.
    pub x: Vec<f64>,
    /// Traces of the two inner INV solves of step 3 (`A4s`) and step 5
    /// (`A1`) — the signals Fig. 8(a)/(b) plot.
    pub inner_traces: Vec<(String, Vec<one_stage::StepRecord>)>,
}

/// Partitions twice and programs everything.
///
/// Requires `n >= 4` so that the second-stage blocks are non-empty.
///
/// # Errors
///
/// Partitioning, Schur, and programming failures.
pub fn prepare<E: AmcEngine + ?Sized>(engine: &mut E, a: &Matrix) -> Result<PreparedTwoStage> {
    if a.rows() < 4 {
        return Err(BlockAmcError::config(format!(
            "two-stage solver requires n >= 4, got {}",
            a.rows()
        )));
    }
    let p = BlockPartition::halves(a)?;
    let a4s = p.schur_complement()?;
    // Programming follows the canonical recursive order (A1, A2, A3,
    // A4s) used by one_stage::prepare and the multi-stage tree, so the
    // engine's variation stream is consumed identically to an
    // equivalent depth-2 paper-layout tree — see
    // tests/solver_equivalence.rs.
    // Second stage: the INV blocks become one-stage macros; the MVM
    // blocks are tiled.
    let a1_inner = one_stage::prepare_matrix(engine, &p.a1)?;
    let a2 = if p.a2.is_zero() {
        None
    } else {
        Some(TiledMvm::prepare(engine, &p.a2)?)
    };
    let a3 = if p.a3.is_zero() {
        None
    } else {
        Some(TiledMvm::prepare(engine, &p.a3)?)
    };
    let a4s_inner = one_stage::prepare_matrix(engine, &a4s)?;
    Ok(PreparedTwoStage {
        split: p.split,
        n: p.size(),
        a1: a1_inner,
        a4s: a4s_inner,
        a2,
        a3,
    })
}

/// Executes the two-stage algorithm for one right-hand side.
///
/// The five first-stage steps are the same as [`one_stage::solve`], but
/// the INV operations are delegated to inner one-stage macros and the MVM
/// operations to tiled arrays. Inter-macro values cross the digital
/// boundary (ADC then DAC) as in the paper's bus-connected architecture.
///
/// # Errors
///
/// Shape mismatches and engine failures.
pub fn solve<E: AmcEngine + ?Sized>(
    engine: &mut E,
    prepared: &mut PreparedTwoStage,
    b: &[f64],
    io: &IoConfig,
) -> Result<TwoStageSolution> {
    io.validate()?;
    if b.len() != prepared.n {
        return Err(BlockAmcError::ShapeMismatch {
            op: "two_stage_solve",
            expected: prepared.n,
            got: b.len(),
        });
    }
    // The five steps live in the recursive execution core; `Bus` policy
    // inserts the ADC→DAC hop on every inter-macro value and captures
    // the step-3/step-5 inner-macro traces.
    let mut log = TraceLog::enabled();
    let levels = [LevelIo::Bus(*io), LevelIo::Macro(*io)];
    let neg_x = run_cascade(
        engine,
        prepared.split,
        &mut prepared.a1,
        &mut prepared.a4s,
        prepared.a2.as_mut(),
        prepared.a3.as_mut(),
        b,
        SignalPath::new(&levels),
        &mut log,
        &mut amc_obs::Recorder::disabled(),
    )?;
    Ok(TwoStageSolution {
        x: vector::neg(&neg_x),
        inner_traces: log.inner,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CircuitEngine, CircuitEngineConfig, NumericEngine};
    use amc_linalg::{generate, lu, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn workload(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn numeric_two_stage_recovers_exact_solution() {
        let (a, b) = workload(16, 1);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&sol.x, &x_ref, 1e-8));
    }

    #[test]
    fn odd_and_non_power_of_two_sizes() {
        for (n, seed) in [(9usize, 2u64), (12, 3), (15, 4)] {
            let (a, b) = workload(n, seed);
            let mut engine = NumericEngine::new();
            let mut prep = prepare(&mut engine, &a).unwrap();
            let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
            let x_ref = lu::solve(&a, &b).unwrap();
            assert!(
                metrics::relative_error(&x_ref, &sol.x) < 1e-8,
                "n={n} diverged"
            );
        }
    }

    #[test]
    fn too_small_matrix_rejected() {
        let (a, _) = workload(3, 5);
        let mut engine = NumericEngine::new();
        assert!(prepare(&mut engine, &a).is_err());
    }

    #[test]
    fn tiled_mvm_matches_direct_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let m = generate::gaussian(6, 5, &mut rng);
        let x = generate::random_vector(5, &mut rng);
        let mut engine = NumericEngine::new();
        let mut tiled = TiledMvm::prepare(&mut engine, &m).unwrap();
        let got = tiled.mvm(&mut engine, &x).unwrap();
        let expect = vector::neg(&m.matvec(&x).unwrap());
        assert!(vector::approx_eq(&got, &expect, 1e-12));
        assert_eq!(tiled.tile_count(), 4);
    }

    #[test]
    fn tiled_mvm_skips_zero_quadrants() {
        let mut m = Matrix::zeros(4, 4);
        m.set_block(0, 0, &Matrix::identity(2)).unwrap();
        let mut engine = NumericEngine::new();
        let mut tiled = TiledMvm::prepare(&mut engine, &m).unwrap();
        assert_eq!(tiled.tile_count(), 1);
        let got = tiled.mvm(&mut engine, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(vector::approx_eq(&got, &[-1.0, -2.0, 0.0, 0.0], 1e-12));
        assert!(tiled.mvm(&mut engine, &[1.0]).is_err());
    }

    #[test]
    fn inner_traces_cover_steps_3_and_5() {
        let (a, b) = workload(8, 7);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        assert_eq!(sol.inner_traces.len(), 2);
        assert_eq!(sol.inner_traces[0].0, "A4s");
        assert_eq!(sol.inner_traces[1].0, "A1");
        assert!(!sol.inner_traces[0].1.is_empty());
    }

    #[test]
    fn circuit_engine_two_stage_with_variation_is_accurate_enough() {
        let (a, b) = workload(16, 8);
        let mut engine = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 21);
        let mut prep = prepare(&mut engine, &a).unwrap();
        let sol = solve(&mut engine, &mut prep, &b, &IoConfig::ideal()).unwrap();
        let x_ref = lu::solve(&a, &b).unwrap();
        let err = metrics::relative_error(&x_ref, &sol.x);
        assert!(err > 1e-6, "variation must perturb (err={err})");
        assert!(err < 1.0, "error should stay bounded (err={err})");
    }

    #[test]
    fn sixteen_quarter_size_arrays_for_dense_matrix() {
        // The paper: a 256x256 Wishart matrix becomes 16 64x64 blocks.
        // At n=16: inner macros hold 4 blocks each (A1, A2, A3, A4s) and
        // each MVM block is 4 tiles -> 16 programmed arrays total.
        let (a, _) = workload(16, 9);
        let mut engine = NumericEngine::new();
        let prep = prepare(&mut engine, &a).unwrap();
        assert_eq!(engine.stats().program_ops, 16);
        assert_eq!(prep.size(), 16);
        assert_eq!(prep.split(), 8);
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let (a, _) = workload(8, 10);
        let mut engine = NumericEngine::new();
        let mut prep = prepare(&mut engine, &a).unwrap();
        assert!(solve(&mut engine, &mut prep, &[0.0; 3], &IoConfig::ideal()).is_err());
    }
}

//! Monte-Carlo yield analysis.
//!
//! The paper's accuracy figures are 40-trial Monte-Carlo averages. For a
//! hardware designer the more actionable statistic is *yield*: across
//! device-variation draws (i.e. across manufactured parts), what fraction
//! of solvers meets an accuracy specification? This module runs that
//! analysis for any facade [`SolverConfig`] — architecture, per-level
//! signal plan, and split rule included.
//!
//! All configurations execute on the unified recursive cascade core
//! ([`crate::multi_stage`]), so yield differences measured here isolate
//! array count, size, and signal path — not implementation drift.

use amc_linalg::{lu, metrics, Matrix};

use crate::engine::EngineSpec;
use crate::multi_stage;
use crate::solver::{SolverConfig, Stages};
use crate::{BlockAmcError, Result};

/// Result of a yield run.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// Number of variation draws simulated.
    pub trials: usize,
    /// Draws whose solve completed (no singular operating point).
    pub completed: usize,
    /// Draws meeting the accuracy specification.
    pub passing: usize,
    /// The accuracy specification (paper eq. 6 relative error).
    pub spec: f64,
    /// Error statistics over the completed draws.
    pub errors: metrics::ErrorStats,
}

impl YieldReport {
    /// Fraction of draws meeting the spec (completed and accurate).
    pub fn yield_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.passing as f64 / self.trials as f64
        }
    }
}

/// Runs `trials` independent variation draws of one solver
/// configuration on a fixed workload and reports the pass fraction
/// against `spec`.
///
/// The backend is selected as data: each trial builds a fresh engine —
/// a new "manufactured part" — from `engine` ([`EngineSpec::build`])
/// with the seed `engine_seed + trial`, and the whole cascade runs
/// through the resulting `Box<dyn AmcEngine>`. Results are reproducible
/// and independent of *where* a trial runs, which is what
/// [`yield_analysis_parallel`] exploits. (Digital backends draw
/// nothing, so their "yield" is simply whether the deterministic error
/// meets the spec.)
///
/// Configuration validation, the reference solution, and partition
/// planning are hoisted out of the trial loop: each trial pays only for
/// what a new manufactured part pays for — programming its arrays and
/// running the cascade.
///
/// # Errors
///
/// * [`BlockAmcError::InvalidConfig`] if `trials == 0`, `spec` is not
///   positive, `solver` is invalid for the workload size, or `engine`
///   cannot be built (checked once up front — a misconfigured spec
///   fails loudly instead of reporting 0% yield).
/// * Propagates reference-solution failures (a singular workload matrix).
///   Per-trial analog failures are *counted*, not propagated.
pub fn yield_analysis(
    a: &Matrix,
    b: &[f64],
    solver: &SolverConfig,
    engine: &EngineSpec,
    spec: f64,
    trials: usize,
    engine_seed: u64,
) -> Result<YieldReport> {
    yield_analysis_parallel(a, b, solver, engine, spec, trials, engine_seed, 1)
}

/// [`yield_analysis`] with the trials farmed out across `workers`
/// work-stealing threads (`amc_par`).
///
/// **The report is bit-identical at every worker count**: trial `t`
/// draws its part from the dedicated ChaCha8 stream `engine_seed + t`
/// regardless of which worker executes it, and the per-trial errors are
/// merged back in trial order before any statistic is computed.
/// `workers == 1` runs inline on the calling thread.
///
/// # Errors
///
/// Same conditions as [`yield_analysis`], plus
/// [`BlockAmcError::InvalidConfig`] for `workers == 0`.
#[allow(clippy::too_many_arguments)] // mirrors yield_analysis + workers
pub fn yield_analysis_parallel(
    a: &Matrix,
    b: &[f64],
    solver: &SolverConfig,
    engine: &EngineSpec,
    spec: f64,
    trials: usize,
    engine_seed: u64,
    workers: usize,
) -> Result<YieldReport> {
    if trials == 0 {
        return Err(BlockAmcError::config(
            "yield analysis needs at least 1 trial",
        ));
    }
    if workers == 0 {
        return Err(BlockAmcError::config(
            "yield analysis needs at least 1 worker",
        ));
    }
    if !(spec > 0.0 && spec.is_finite()) {
        return Err(BlockAmcError::config("spec must be positive and finite"));
    }
    if b.len() != a.rows() {
        return Err(BlockAmcError::ShapeMismatch {
            op: "yield_analysis",
            expected: a.rows(),
            got: b.len(),
        });
    }
    solver.validate_for_size(a.rows())?;
    // An unbuildable spec (zero panel width, out-of-range bits) is a
    // configuration error, not N failed trials: surface it up front
    // instead of letting every trial swallow it into a 0% yield.
    drop(engine.build(engine_seed)?);
    let x_ref = lu::solve(a, b)?;
    // Hoisted per-run state: the partition plan and signal plan are
    // trial-invariant; only array programming and the cascade run per
    // trial.
    let plan = solver.partition_plan();
    let signal = solver.signal_plan();
    let run_trial = |t: usize| -> Option<f64> {
        let mut engine = engine.build(engine_seed.wrapping_add(t as u64)).ok()?;
        let mut tree = multi_stage::prepare_plan(&mut engine, a, &plan).ok()?;
        let (x, _) = multi_stage::solve_with_signal(
            &mut engine,
            &mut tree,
            b,
            signal,
            false,
            &mut amc_obs::Recorder::disabled(),
        )
        .ok()?;
        let err = metrics::relative_error(&x_ref, &x);
        err.is_finite().then_some(err)
    };
    let per_trial: Vec<Option<f64>> =
        amc_par::map_indexed(workers, (0..trials).collect(), |_, t| run_trial(t));
    let errors: Vec<f64> = per_trial.into_iter().flatten().collect();
    let passing = errors.iter().filter(|&&e| e <= spec).count();
    Ok(YieldReport {
        trials,
        completed: errors.len(),
        passing,
        spec,
        errors: metrics::ErrorStats::from_samples(&errors),
    })
}

/// Convenience: yields of all three architectures on one workload with
/// default configurations, in the paper's comparison order (original,
/// one-stage, two-stage).
///
/// # Errors
///
/// Same conditions as [`yield_analysis`].
pub fn compare_yields(
    a: &Matrix,
    b: &[f64],
    engine: &EngineSpec,
    spec: f64,
    trials: usize,
    engine_seed: u64,
) -> Result<[YieldReport; 3]> {
    let run = |stages: Stages| -> Result<YieldReport> {
        let solver = SolverConfig::builder().stages(stages).finish()?;
        yield_analysis(a, b, &solver, engine, spec, trials, engine_seed)
    };
    Ok([run(Stages::Original)?, run(Stages::One)?, run(Stages::Two)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CircuitEngineConfig;
    use amc_linalg::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn workload(n: usize) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        let b = generate::random_vector(n, &mut rng);
        (a, b)
    }

    fn one_stage() -> SolverConfig {
        SolverConfig::builder()
            .stages(Stages::One)
            .finish()
            .unwrap()
    }

    #[test]
    fn ideal_stack_yields_100_percent() {
        let (a, b) = workload(12);
        let r = yield_analysis(
            &a,
            &b,
            &one_stage(),
            &EngineSpec::Circuit(CircuitEngineConfig::ideal()),
            1e-6,
            5,
            0,
        )
        .unwrap();
        assert_eq!(r.passing, 5);
        assert_eq!(r.completed, 5);
        assert!((r.yield_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_spec_fails_noisy_parts() {
        let (a, b) = workload(16);
        let r = yield_analysis(
            &a,
            &b,
            &one_stage(),
            &EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
            1e-6, // far below the 5%-variation error floor
            6,
            0,
        )
        .unwrap();
        assert_eq!(r.passing, 0);
        assert!(r.errors.mean > 1e-3);
    }

    #[test]
    fn loose_spec_passes_noisy_parts() {
        let (a, b) = workload(16);
        let r = yield_analysis(
            &a,
            &b,
            &one_stage(),
            &EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
            0.5,
            6,
            0,
        )
        .unwrap();
        assert!(r.yield_fraction() > 0.5, "yield {}", r.yield_fraction());
    }

    #[test]
    fn yield_is_monotone_in_spec() {
        let (a, b) = workload(16);
        let run = |spec: f64| {
            yield_analysis(
                &a,
                &b,
                &one_stage(),
                &EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
                spec,
                8,
                3,
            )
            .unwrap()
            .passing
        };
        let loose = run(0.5);
        let mid = run(0.08);
        let tight = run(0.001);
        assert!(loose >= mid && mid >= tight, "{loose} >= {mid} >= {tight}");
    }

    #[test]
    fn compare_yields_orders_architectures() {
        let (a, b) = workload(16);
        let reports = compare_yields(
            &a,
            &b,
            &EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
            0.1,
            6,
            1,
        )
        .unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.trials, 6);
        }
    }

    #[test]
    fn validation() {
        let (a, b) = workload(8);
        assert!(yield_analysis(
            &a,
            &b,
            &one_stage(),
            &EngineSpec::Circuit(CircuitEngineConfig::ideal()),
            0.1,
            0,
            0
        )
        .is_err());
        assert!(yield_analysis(
            &a,
            &b,
            &one_stage(),
            &EngineSpec::Circuit(CircuitEngineConfig::ideal()),
            0.0,
            3,
            0
        )
        .is_err());
        // An unbuildable engine spec is a loud error, not a 0% yield.
        assert!(yield_analysis(
            &a,
            &b,
            &one_stage(),
            &EngineSpec::FixedPoint { bits: 60 },
            0.1,
            3,
            0
        )
        .is_err());
        // An invalid solver config is rejected before any trial runs.
        let bad = SolverConfig::builder()
            .stages(Stages::Multi(5))
            .finish()
            .unwrap();
        assert!(
            yield_analysis(
                &a,
                &b,
                &bad,
                &EngineSpec::Circuit(CircuitEngineConfig::ideal()),
                0.1,
                3,
                0
            )
            .is_err(),
            "depth 5 must be rejected on an 8x8 workload"
        );
    }

    #[test]
    fn parallel_report_is_identical_at_any_worker_count() {
        let (a, b) = workload(12);
        let run = |workers: usize| {
            yield_analysis_parallel(
                &a,
                &b,
                &one_stage(),
                &EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
                0.1,
                6,
                17,
                workers,
            )
            .unwrap()
        };
        let serial = run(1);
        for workers in [2usize, 3, 4] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
        assert!(yield_analysis_parallel(
            &a,
            &b,
            &one_stage(),
            &EngineSpec::Circuit(CircuitEngineConfig::ideal()),
            0.1,
            3,
            0,
            0
        )
        .is_err());
    }

    #[test]
    fn reproducible_with_same_seed() {
        let (a, b) = workload(12);
        let run = || {
            yield_analysis(
                &a,
                &b,
                &one_stage(),
                &EngineSpec::Circuit(CircuitEngineConfig::paper_variation()),
                0.1,
                4,
                9,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}

//! Execution engines for the AMC primitives.
//!
//! The BlockAMC algorithm (Fig. 2 / Algorithm 1 of the paper) is a fixed
//! cascade of INV and MVM operations. [`AmcEngine`] abstracts who executes
//! those primitives:
//!
//! * [`NumericEngine`] — exact digital LU solves; the paper's "numerical
//!   solver" reference curve.
//! * [`CircuitEngine`] — each primitive runs through the full analog
//!   stack: matrix → conductance mapping, programming variation / faults /
//!   quantization ([`amc_device`]), then the circuit equilibrium with
//!   finite op-amp gain and wire resistance ([`amc_circuit`]).
//!
//! Both engines honour the AMC *sign convention*: the negative-feedback
//! circuits produce `−A⁻¹·b` (INV) and `−A·x` (MVM). The five-step
//! algorithm is formulated directly on those signed quantities, exactly as
//! the paper's flow chart.
//!
//! Matrices are programmed once via [`AmcEngine::program`] and the
//! returned [`Operand`] is reused across steps — this matters physically:
//! block `A1` is used twice (steps 1 and 5) *on the same array*, so both
//! steps must see the same variation draw.

use amc_circuit::sim::{AnalogSimulator, SimConfig};
use amc_device::array::ProgrammedMatrix;
use amc_device::mapping::MappingConfig;
use amc_device::variation::VariationModel;
use amc_linalg::{lu::LuFactor, Matrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{BlockAmcError, Result};

/// A matrix prepared for repeated AMC operations by a specific engine.
///
/// Obtained from [`AmcEngine::program`]; opaque to callers.
#[derive(Debug, Clone)]
pub struct Operand {
    inner: OperandInner,
}

#[derive(Debug, Clone)]
enum OperandInner {
    /// Exact matrix with a cached LU factorization (built lazily on the
    /// first INV).
    Numeric { a: Matrix, lu: Option<LuFactor> },
    /// Conductance-programmed crossbar pair.
    Circuit(ProgrammedMatrix),
}

impl Operand {
    /// Shape `(rows, cols)` of the represented matrix.
    pub fn shape(&self) -> (usize, usize) {
        match &self.inner {
            OperandInner::Numeric { a, .. } => a.shape(),
            OperandInner::Circuit(p) => p.shape(),
        }
    }

    /// The *effective* matrix this operand computes with — exact for
    /// numeric operands, the programmed (noisy) matrix for circuit
    /// operands. Useful for diagnostics.
    pub fn effective_matrix(&self) -> Matrix {
        match &self.inner {
            OperandInner::Numeric { a, .. } => a.clone(),
            OperandInner::Circuit(p) => p.effective_matrix(),
        }
    }
}

/// Cumulative cost counters of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Number of matrices programmed.
    pub program_ops: usize,
    /// Number of INV operations executed.
    pub inv_ops: usize,
    /// Number of MVM operations executed.
    pub mvm_ops: usize,
    /// Total estimated analog settling time, in seconds (circuit engine
    /// only).
    pub analog_time_s: f64,
    /// Total estimated analog energy, in joules (circuit engine only).
    pub analog_energy_j: f64,
}

/// An executor of the two AMC primitives.
///
/// Implementations return results with the AMC minus sign:
/// [`AmcEngine::inv`] yields `−A⁻¹·b` and [`AmcEngine::mvm`] yields
/// `−A·x`.
pub trait AmcEngine {
    /// Prepares a matrix for repeated operations (factorization for the
    /// numeric engine; conductance mapping + programming for the circuit
    /// engine — variation is drawn here, once per array, as in hardware).
    ///
    /// # Errors
    ///
    /// Propagates mapping/factorization failures.
    fn program(&mut self, a: &Matrix) -> Result<Operand>;

    /// Executes an INV operation: returns `−A⁻¹·b`.
    ///
    /// # Errors
    ///
    /// Shape mismatches, operand-kind mismatches, and solver failures.
    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>>;

    /// Executes an MVM operation: returns `−A·x`.
    ///
    /// # Errors
    ///
    /// Shape mismatches, operand-kind mismatches, and solver failures.
    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>>;

    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Cumulative cost counters.
    fn stats(&self) -> EngineStats;
}

// A programmed operand is the leaf executor of the recursive cascade
// core: its INV/MVM are the engine primitives themselves.
impl<E: AmcEngine + ?Sized> crate::multi_stage::InvExec<E> for Operand {
    fn inv_signed(
        &mut self,
        engine: &mut E,
        b: &[f64],
        _path: crate::multi_stage::SignalPath<'_>,
        _log: &mut crate::multi_stage::TraceLog,
    ) -> Result<Vec<f64>> {
        engine.inv(self, b)
    }
}

impl<E: AmcEngine + ?Sized> crate::multi_stage::MvmExec<E> for Operand {
    fn mvm_signed(&mut self, engine: &mut E, x: &[f64]) -> Result<Vec<f64>> {
        engine.mvm(self, x)
    }
}

/// Exact digital engine (LU-based).
///
/// # Example
///
/// ```
/// use blockamc::engine::{AmcEngine, NumericEngine};
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), blockamc::BlockAmcError> {
/// let mut e = NumericEngine::new();
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]])?;
/// let mut op = e.program(&a)?;
/// assert_eq!(e.inv(&mut op, &[2.0, 4.0])?, vec![-1.0, -1.0]); // −A⁻¹b
/// assert_eq!(e.mvm(&mut op, &[1.0, 1.0])?, vec![-2.0, -4.0]); // −A·x
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NumericEngine {
    stats: EngineStats,
}

impl NumericEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AmcEngine for NumericEngine {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        self.stats.program_ops += 1;
        Ok(Operand {
            inner: OperandInner::Numeric {
                a: a.clone(),
                lu: None,
            },
        })
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        let OperandInner::Numeric { a, lu } = &mut operand.inner else {
            return Err(BlockAmcError::OperandMismatch { engine: "numeric" });
        };
        if lu.is_none() {
            *lu = Some(LuFactor::new(a)?);
        }
        let mut x = lu
            .as_ref()
            .expect("factorization was just installed")
            .solve(b)?;
        // Negate in place: the solve already handed us an owned vector.
        amc_linalg::vector::neg_in_place(&mut x);
        self.stats.inv_ops += 1;
        Ok(x)
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        let OperandInner::Numeric { a, .. } = &operand.inner else {
            return Err(BlockAmcError::OperandMismatch { engine: "numeric" });
        };
        let mut y = a.matvec(x)?;
        amc_linalg::vector::neg_in_place(&mut y);
        self.stats.mvm_ops += 1;
        Ok(y)
    }

    fn name(&self) -> &'static str {
        "numeric"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// Configuration of the analog [`CircuitEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitEngineConfig {
    /// Matrix → conductance mapping (G₀, device window, quantization,
    /// faults).
    pub mapping: MappingConfig,
    /// Conductance programming variation.
    pub variation: VariationModel,
    /// Circuit-level simulation configuration (op-amp gain, interconnect,
    /// saturation checking).
    pub sim: SimConfig,
}

impl CircuitEngineConfig {
    /// Fully ideal analog stack — reproduces the numeric engine exactly
    /// (a self-check configuration). The device window is widened to a
    /// mathematical idealization so that no matrix element is clamped or
    /// deselected; the `paper_*` configurations keep the realistic window.
    pub fn ideal() -> Self {
        let mut mapping = MappingConfig::paper_default();
        mapping.g_min = 1e-15;
        mapping.g_max = 1.0;
        CircuitEngineConfig {
            mapping,
            variation: VariationModel::None,
            sim: SimConfig::ideal(),
        }
    }

    /// Finite-gain op-amps, ideal devices and wires — the paper's "ideal
    /// mapping" Fig. 6 configuration.
    pub fn ideal_mapping() -> Self {
        CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::None,
            sim: SimConfig::finite_gain_only(),
        }
    }

    /// Device variation at the paper's 5% level with an otherwise ideal
    /// circuit — the Fig. 7 configuration.
    ///
    /// Interpretation note: the paper states "a standard deviation of
    /// 0.05·G₀, which is achievable by using the write&verify algorithm".
    /// Taken as *full-scale additive* noise on every one of the n² cells,
    /// the induced matrix perturbation has spectral norm `≈ 0.1·√n·G₀`,
    /// which exceeds the smallest eigenvalue of any of the benchmark
    /// matrices beyond n ≈ 128 and makes every solver diverge — far from
    /// the ≤ 0.4 relative errors Fig. 7 reports. The only reading
    /// consistent with those magnitudes is *per-device relative* accuracy
    /// (a write-and-verify loop verifies each cell to within a fraction
    /// of its target), so this configuration uses
    /// [`VariationModel::Proportional`] with `sigma_rel = 0.05`. The
    /// literal full-scale reading remains available as
    /// [`CircuitEngineConfig::absolute_variation`] for the ablation bench.
    pub fn paper_variation() -> Self {
        CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::Proportional { sigma_rel: 0.05 },
            sim: SimConfig::ideal(),
        }
    }

    /// The literal full-scale-additive reading of the paper's variation
    /// (`σ = 0.05·G₀` on every programmed cell). Kept for the noise-model
    /// ablation; see [`CircuitEngineConfig::paper_variation`].
    pub fn absolute_variation() -> Self {
        let mapping = MappingConfig::paper_default();
        CircuitEngineConfig {
            mapping,
            variation: VariationModel::paper_default(mapping.g0),
            sim: SimConfig::ideal(),
        }
    }

    /// Device variation + 1 Ω/segment interconnect — the paper's Fig. 9
    /// configuration (same variation interpretation as
    /// [`CircuitEngineConfig::paper_variation`]).
    pub fn paper_full() -> Self {
        CircuitEngineConfig {
            mapping: MappingConfig::paper_default(),
            variation: VariationModel::Proportional { sigma_rel: 0.05 },
            sim: SimConfig {
                opamp: amc_circuit::opamp::OpAmpSpec::ideal(),
                interconnect: amc_circuit::interconnect::InterconnectModel::paper_default(),
                check_saturation: false,
                settle_epsilon: amc_circuit::timing::DEFAULT_SETTLE_EPSILON,
            },
        }
    }
}

/// Analog engine: every primitive runs through the device + circuit stack.
#[derive(Debug, Clone)]
pub struct CircuitEngine {
    config: CircuitEngineConfig,
    sim: AnalogSimulator,
    rng: ChaCha8Rng,
    stats: EngineStats,
}

impl CircuitEngine {
    /// Creates the engine with a deterministic RNG seed (used for
    /// variation and fault draws).
    pub fn new(config: CircuitEngineConfig, seed: u64) -> Self {
        CircuitEngine {
            config,
            sim: AnalogSimulator::new(config.sim),
            rng: ChaCha8Rng::seed_from_u64(seed),
            stats: EngineStats::default(),
        }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &CircuitEngineConfig {
        &self.config
    }
}

impl AmcEngine for CircuitEngine {
    fn program(&mut self, a: &Matrix) -> Result<Operand> {
        let programmed = ProgrammedMatrix::program(
            a,
            &self.config.mapping,
            &self.config.variation,
            &mut self.rng,
        )?;
        self.stats.program_ops += 1;
        Ok(Operand {
            inner: OperandInner::Circuit(programmed),
        })
    }

    fn inv(&mut self, operand: &mut Operand, b: &[f64]) -> Result<Vec<f64>> {
        let OperandInner::Circuit(p) = &operand.inner else {
            return Err(BlockAmcError::OperandMismatch { engine: "circuit" });
        };
        let out = self.sim.inv(p, b)?;
        self.stats.inv_ops += 1;
        self.stats.analog_time_s += out.settle_time_s;
        self.stats.analog_energy_j += out.settle_time_s * out.power_w;
        Ok(out.values)
    }

    fn mvm(&mut self, operand: &mut Operand, x: &[f64]) -> Result<Vec<f64>> {
        let OperandInner::Circuit(p) = &operand.inner else {
            return Err(BlockAmcError::OperandMismatch { engine: "circuit" });
        };
        let out = self.sim.mvm(p, x)?;
        self.stats.mvm_ops += 1;
        self.stats.analog_time_s += out.settle_time_s;
        self.stats.analog_energy_j += out.settle_time_s * out.power_w;
        Ok(out.values)
    }

    fn name(&self) -> &'static str {
        "circuit"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::vector;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap()
    }

    #[test]
    fn numeric_engine_signs() {
        let mut e = NumericEngine::new();
        let a = sample();
        let mut op = e.program(&a).unwrap();
        let b = [0.5, 0.25];
        let neg_x = e.inv(&mut op, &b).unwrap();
        // A·(−neg_x) = b
        let back = a.matvec(&vector::neg(&neg_x)).unwrap();
        assert!(vector::approx_eq(&back, &b, 1e-12));
        let neg_y = e.mvm(&mut op, &[1.0, 1.0]).unwrap();
        assert!(vector::approx_eq(&neg_y, &[-2.5, -2.0], 1e-12));
    }

    #[test]
    fn numeric_engine_caches_factorization() {
        let mut e = NumericEngine::new();
        let mut op = e.program(&sample()).unwrap();
        let _ = e.inv(&mut op, &[1.0, 0.0]).unwrap();
        let _ = e.inv(&mut op, &[0.0, 1.0]).unwrap();
        assert_eq!(e.stats().inv_ops, 2);
        assert_eq!(e.stats().program_ops, 1);
    }

    #[test]
    fn ideal_circuit_engine_matches_numeric() {
        let a = sample();
        let b = [0.3, -0.2];
        let mut num = NumericEngine::new();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::ideal(), 1);
        let mut opn = num.program(&a).unwrap();
        let mut opc = cir.program(&a).unwrap();
        let xn = num.inv(&mut opn, &b).unwrap();
        let xc = cir.inv(&mut opc, &b).unwrap();
        assert!(vector::approx_eq(&xn, &xc, 1e-9));
        let yn = num.mvm(&mut opn, &b).unwrap();
        let yc = cir.mvm(&mut opc, &b).unwrap();
        assert!(vector::approx_eq(&yn, &yc, 1e-9));
    }

    #[test]
    fn circuit_engine_tracks_time_and_energy() {
        let mut cir = CircuitEngine::new(CircuitEngineConfig::ideal(), 2);
        let mut op = cir.program(&sample()).unwrap();
        let _ = cir.inv(&mut op, &[0.1, 0.1]).unwrap();
        let s = cir.stats();
        assert_eq!(s.inv_ops, 1);
        assert!(s.analog_time_s > 0.0);
        assert!(s.analog_energy_j > 0.0);
    }

    #[test]
    fn variation_makes_engines_differ() {
        let a = sample();
        let b = [0.3, -0.2];
        let mut num = NumericEngine::new();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 3);
        let mut opn = num.program(&a).unwrap();
        let mut opc = cir.program(&a).unwrap();
        let xn = num.inv(&mut opn, &b).unwrap();
        let xc = cir.inv(&mut opc, &b).unwrap();
        let err = amc_linalg::metrics::relative_error(&xn, &xc);
        assert!(err > 1e-4, "variation should perturb, err={err}");
        assert!(err < 0.5, "perturbation should be moderate, err={err}");
    }

    #[test]
    fn operands_persist_their_variation_draw() {
        // The same operand used twice sees the same noisy matrix; two
        // separately programmed operands see different draws.
        let a = sample();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::paper_variation(), 4);
        let mut op1 = cir.program(&a).unwrap();
        let mut op2 = cir.program(&a).unwrap();
        let b = [0.2, 0.1];
        let x1a = cir.inv(&mut op1, &b).unwrap();
        let x1b = cir.inv(&mut op1, &b).unwrap();
        let x2 = cir.inv(&mut op2, &b).unwrap();
        assert_eq!(x1a, x1b, "same array => identical results");
        assert_ne!(x1a, x2, "different arrays => different draws");
    }

    #[test]
    fn operand_kind_mismatch_detected() {
        let mut num = NumericEngine::new();
        let mut cir = CircuitEngine::new(CircuitEngineConfig::ideal(), 5);
        let mut opn = num.program(&sample()).unwrap();
        let mut opc = cir.program(&sample()).unwrap();
        assert!(matches!(
            cir.inv(&mut opn, &[0.1, 0.1]),
            Err(BlockAmcError::OperandMismatch { .. })
        ));
        assert!(matches!(
            num.mvm(&mut opc, &[0.1, 0.1]),
            Err(BlockAmcError::OperandMismatch { .. })
        ));
    }

    #[test]
    fn operand_reports_shape_and_effective_matrix() {
        let mut e = NumericEngine::new();
        let op = e.program(&sample()).unwrap();
        assert_eq!(op.shape(), (2, 2));
        assert!(op.effective_matrix().approx_eq(&sample(), 0.0));
    }

    #[test]
    fn engine_names() {
        assert_eq!(NumericEngine::new().name(), "numeric");
        assert_eq!(
            CircuitEngine::new(CircuitEngineConfig::ideal(), 0).name(),
            "circuit"
        );
    }
}

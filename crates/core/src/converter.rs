//! DAC / ADC interfaces and the sample-and-hold path.
//!
//! The BlockAMC macro talks to the digital domain through a DAC (known
//! vector `b` in steps 1 and 3) and an ADC (solution parts in steps 3 and
//! 5) — see Fig. 3/4 of the paper. Intermediate cascades stay analog in
//! sample-and-hold (S&H) buffers. These converters quantize the signals
//! crossing the boundary; the S&H hop can optionally model droop.

use crate::{BlockAmcError, Result};

/// A uniform signed converter (used for both DAC and ADC): `2^bits` levels
/// spanning `[-v_range, +v_range]`, mid-rise, clipping outside the range.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Converter {
    bits: u32,
    v_range: f64,
}

impl Converter {
    /// Creates a converter with the given resolution and full-scale range.
    ///
    /// # Errors
    ///
    /// Returns [`BlockAmcError::InvalidConfig`] if `bits` is 0 or > 24, or
    /// `v_range` is not strictly positive and finite.
    pub fn new(bits: u32, v_range: f64) -> Result<Self> {
        if bits == 0 || bits > 24 {
            return Err(BlockAmcError::config(format!(
                "converter resolution must be 1..=24 bits, got {bits}"
            )));
        }
        if !(v_range > 0.0 && v_range.is_finite()) {
            return Err(BlockAmcError::config(
                "converter range must be positive and finite",
            ));
        }
        Ok(Converter { bits, v_range })
    }

    /// An 8-bit, ±1 V converter — the RePAST-class interface assumed by
    /// the paper's area/power analysis.
    pub fn default_8bit() -> Self {
        Converter {
            bits: 8,
            v_range: 1.0,
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale range (the converter spans `±v_range`).
    pub fn v_range(&self) -> f64 {
        self.v_range
    }

    /// Step between adjacent codes.
    pub fn lsb(&self) -> f64 {
        2.0 * self.v_range / ((1u64 << self.bits) - 1) as f64
    }

    /// Quantizes one value (clipping outside `±v_range`).
    pub fn quantize(&self, v: f64) -> f64 {
        let clipped = v.clamp(-self.v_range, self.v_range);
        let lsb = self.lsb();
        // Mid-rise rounding can land half an LSB beyond the rail; clamp
        // back so the output range is exactly ±v_range.
        ((clipped / lsb).round() * lsb).clamp(-self.v_range, self.v_range)
    }

    /// Quantizes a vector.
    pub fn quantize_vec(&self, v: &[f64]) -> Vec<f64> {
        v.iter().map(|&x| self.quantize(x)).collect()
    }
}

/// Signal-path configuration for a BlockAMC solve: converters at the
/// digital boundary and the analog S&H cascade.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IoConfig {
    /// DAC applied to externally supplied inputs (steps 1 and 3).
    /// `None` = ideal input path.
    pub dac: Option<Converter>,
    /// ADC applied to the solution outputs (steps 3 and 5).
    /// `None` = ideal output path.
    pub adc: Option<Converter>,
    /// Fractional sample-and-hold droop per buffered hop (0.0 = ideal).
    /// Each analog cascade multiplies the held value by `1 − sh_droop`.
    pub sh_droop: f64,
}

impl IoConfig {
    /// Ideal signal path: no quantization, no droop.
    pub fn ideal() -> Self {
        IoConfig::default()
    }

    /// 8-bit DAC and ADC with an ideal S&H — a realistic digital boundary.
    pub fn default_8bit() -> Self {
        IoConfig {
            dac: Some(Converter::default_8bit()),
            adc: Some(Converter::default_8bit()),
            sh_droop: 0.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BlockAmcError::InvalidConfig`] if the droop is outside
    /// `[0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if !(self.sh_droop >= 0.0 && self.sh_droop < 1.0) {
            return Err(BlockAmcError::config(format!(
                "S&H droop must lie in [0, 1), got {}",
                self.sh_droop
            )));
        }
        Ok(())
    }

    /// Applies the DAC (if any) to an external input vector.
    pub fn apply_dac(&self, v: &[f64]) -> Vec<f64> {
        match &self.dac {
            Some(c) => c.quantize_vec(v),
            None => v.to_vec(),
        }
    }

    /// Applies the ADC (if any) to a solution output vector.
    pub fn apply_adc(&self, v: &[f64]) -> Vec<f64> {
        match &self.adc {
            Some(c) => c.quantize_vec(v),
            None => v.to_vec(),
        }
    }

    /// Applies one S&H hop to an analog intermediate.
    pub fn apply_sh(&self, v: &[f64]) -> Vec<f64> {
        if self.sh_droop == 0.0 {
            v.to_vec()
        } else {
            let k = 1.0 - self.sh_droop;
            v.iter().map(|&x| x * k).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Converter::new(8, 1.0).is_ok());
        assert!(Converter::new(0, 1.0).is_err());
        assert!(Converter::new(25, 1.0).is_err());
        assert!(Converter::new(8, 0.0).is_err());
        assert!(Converter::new(8, f64::NAN).is_err());
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let c = Converter::new(8, 1.0).unwrap();
        for i in 0..1000 {
            let v = -1.0 + 2.0 * i as f64 / 999.0;
            let q = c.quantize(v);
            assert!((q - v).abs() <= c.lsb() / 2.0 + 1e-15, "v={v}");
        }
    }

    #[test]
    fn clipping_outside_range() {
        let c = Converter::new(8, 0.5).unwrap();
        assert_eq!(c.quantize(2.0), 0.5);
        assert_eq!(c.quantize(-3.0), -0.5);
    }

    #[test]
    fn high_resolution_is_nearly_transparent() {
        let c = Converter::new(20, 1.0).unwrap();
        assert!((c.quantize(0.123456789) - 0.123456789).abs() < 1e-5);
    }

    #[test]
    fn io_config_paths() {
        let io = IoConfig::default_8bit();
        assert!(io.validate().is_ok());
        let v = [0.1234, -0.5678];
        let d = io.apply_dac(&v);
        assert_ne!(d, v.to_vec());
        assert!((d[0] - v[0]).abs() < 0.01);

        let ideal = IoConfig::ideal();
        assert_eq!(ideal.apply_dac(&v), v.to_vec());
        assert_eq!(ideal.apply_adc(&v), v.to_vec());
        assert_eq!(ideal.apply_sh(&v), v.to_vec());
    }

    #[test]
    fn sh_droop_attenuates() {
        let io = IoConfig {
            sh_droop: 0.01,
            ..IoConfig::ideal()
        };
        assert!(io.validate().is_ok());
        let out = io.apply_sh(&[1.0, -2.0]);
        assert!((out[0] - 0.99).abs() < 1e-15);
        assert!((out[1] + 1.98).abs() < 1e-15);

        let bad = IoConfig {
            sh_droop: 1.5,
            ..IoConfig::ideal()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn zero_maps_to_zero() {
        let c = Converter::default_8bit();
        assert_eq!(c.quantize(0.0), 0.0);
        assert_eq!(c.bits(), 8);
        assert_eq!(c.v_range(), 1.0);
    }
}

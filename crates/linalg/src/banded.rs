//! Banded matrices and solvers.
//!
//! Two of this workspace's workload families are banded: the 1-D Poisson
//! matrix (tridiagonal) and the SPD autocorrelation Toeplitz family
//! (bandwidth = kernel length). A banded solver turns their `O(n³)` dense
//! solves into `O(n·b²)`, which matters for the digital *reference*
//! solutions inside large Monte-Carlo sweeps, and demonstrates the cost
//! the analog solver is competing against on structured problems.

use crate::{LinalgError, Matrix, Result};

/// A square banded matrix with `lower` sub-diagonals and `upper`
/// super-diagonals, stored band-by-band (LAPACK-style band storage).
///
/// # Example
///
/// ```
/// use amc_linalg::banded::BandedMatrix;
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// // Tridiagonal Poisson matrix.
/// let mut m = BandedMatrix::zeros(4, 1, 1)?;
/// for i in 0..4 {
///     m.set(i, i, 2.0)?;
///     if i > 0 { m.set(i, i - 1, -1.0)?; }
///     if i < 3 { m.set(i, i + 1, -1.0)?; }
/// }
/// let x = m.solve_no_pivot(&[1.0, 0.0, 0.0, 1.0])?;
/// let back = m.matvec(&x)?;
/// assert!((back[0] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    lower: usize,
    upper: usize,
    /// Row-major `(lower + upper + 1) x n` band storage: band `d` (0 =
    /// outermost super-diagonal) holds element `(i, j)` with
    /// `d = upper + i - j` at column index `j`.
    data: Vec<f64>,
}

impl BandedMatrix {
    /// Creates a zero banded matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `n == 0` or a bandwidth
    /// reaches `n`.
    pub fn zeros(n: usize, lower: usize, upper: usize) -> Result<Self> {
        if n == 0 {
            return Err(LinalgError::invalid("banded matrix must be non-empty"));
        }
        if lower >= n || upper >= n {
            return Err(LinalgError::invalid(format!(
                "bandwidths ({lower}, {upper}) must be < n = {n}"
            )));
        }
        Ok(BandedMatrix {
            n,
            lower,
            upper,
            data: vec![0.0; (lower + upper + 1) * n],
        })
    }

    /// Extracts the band structure of a dense matrix, verifying that all
    /// elements outside the declared band are zero.
    ///
    /// # Errors
    ///
    /// * Shape/bandwidth validation as in [`BandedMatrix::zeros`].
    /// * [`LinalgError::InvalidArgument`] if a non-zero element lies
    ///   outside the band.
    pub fn from_dense(a: &Matrix, lower: usize, upper: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NonSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut m = BandedMatrix::zeros(a.rows(), lower, upper)?;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let v = a[(i, j)];
                if v != 0.0 {
                    if Self::in_band_static(i, j, lower, upper) {
                        m.set(i, j, v)?;
                    } else {
                        return Err(LinalgError::invalid(format!(
                            "element ({i},{j}) = {v} lies outside the ({lower},{upper}) band"
                        )));
                    }
                }
            }
        }
        Ok(m)
    }

    /// Infers the minimal bandwidths of a dense matrix and converts it.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonSquare`] for a rectangular input.
    pub fn from_dense_auto(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NonSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut lower = 0usize;
        let mut upper = 0usize;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                if a[(i, j)] != 0.0 {
                    if i > j {
                        lower = lower.max(i - j);
                    } else {
                        upper = upper.max(j - i);
                    }
                }
            }
        }
        Self::from_dense(a, lower, upper)
    }

    fn in_band_static(i: usize, j: usize, lower: usize, upper: usize) -> bool {
        (j <= i + upper) && (i <= j + lower)
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        let band = self.upper + i - j;
        band * self.n + j
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `(lower, upper)` bandwidths.
    pub fn bandwidths(&self) -> (usize, usize) {
        (self.lower, self.upper)
    }

    /// Returns element `(i, j)` (zero outside the band).
    ///
    /// # Panics
    ///
    /// Panics if the indices exceed the dimension.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if Self::in_band_static(i, j, self.lower, self.upper) {
            self.data[self.idx(i, j)]
        } else {
            0.0
        }
    }

    /// Sets element `(i, j)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `(i, j)` lies outside
    /// the band or the matrix.
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> Result<()> {
        if i >= self.n || j >= self.n {
            return Err(LinalgError::invalid(format!(
                "index ({i},{j}) out of bounds for n = {}",
                self.n
            )));
        }
        if !Self::in_band_static(i, j, self.lower, self.upper) {
            return Err(LinalgError::invalid(format!(
                "index ({i},{j}) lies outside the ({}, {}) band",
                self.lower, self.upper
            )));
        }
        let idx = self.idx(i, j);
        self.data[idx] = v;
        Ok(())
    }

    /// Banded matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != n`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "banded_matvec",
                lhs: (self.n, self.n),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let j_lo = i.saturating_sub(self.lower);
            let j_hi = (i + self.upper).min(self.n - 1);
            let mut s = 0.0;
            for (j, &xj) in x.iter().enumerate().take(j_hi + 1).skip(j_lo) {
                s += self.data[self.idx(i, j)] * xj;
            }
            *yi = s;
        }
        Ok(y)
    }

    /// Converts back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Solves `A·x = b` with banded LU **without pivoting** in
    /// `O(n·(lower+upper)²)`.
    ///
    /// No pivoting means this is only stable for diagonally dominant or
    /// SPD matrices — which covers every banded workload in this
    /// workspace (Poisson, autocorrelation Toeplitz). A vanishing pivot
    /// is reported as [`LinalgError::Singular`].
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != n`.
    /// * [`LinalgError::Singular`] on pivot breakdown.
    pub fn solve_no_pivot(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "banded_solve",
                lhs: (self.n, self.n),
                rhs: (b.len(), 1),
            });
        }
        let n = self.n;
        let mut work = self.clone();
        let mut x = b.to_vec();
        let scale = self
            .data
            .iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1.0);
        // Elimination.
        for k in 0..n {
            let pivot = work.data[work.idx(k, k)];
            if pivot.abs() <= 1e-300 * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            let i_hi = (k + self.lower).min(n - 1);
            for i in (k + 1)..=i_hi {
                let factor = work.data[work.idx(i, k)] / pivot;
                if factor != 0.0 {
                    let j_hi = (k + self.upper).min(n - 1);
                    for j in k..=j_hi {
                        let above = work.data[work.idx(k, j)];
                        let idx = work.idx(i, j);
                        work.data[idx] -= factor * above;
                    }
                    x[i] -= factor * x[k];
                }
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let j_hi = (i + self.upper).min(n - 1);
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(j_hi + 1).skip(i + 1) {
                s -= work.data[work.idx(i, j)] * xj;
            }
            x[i] = s / work.data[work.idx(i, i)];
        }
        Ok(x)
    }
}

/// Solves a tridiagonal system with the Thomas algorithm in `O(n)`.
///
/// `sub`, `diag`, `sup` are the sub-/main/super-diagonals with
/// `sub.len() == sup.len() == diag.len() - 1`. Stable for diagonally
/// dominant or SPD tridiagonal systems.
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] for inconsistent lengths.
/// * [`LinalgError::Singular`] on pivot breakdown.
///
/// # Example
///
/// ```
/// use amc_linalg::banded::thomas_solve;
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// // 2x - y = 1 ; -x + 2y = 1  ->  x = y = 1.
/// let x = thomas_solve(&[-1.0], &[2.0, 2.0], &[-1.0], &[1.0, 1.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn thomas_solve(sub: &[f64], diag: &[f64], sup: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    let n = diag.len();
    if n == 0 {
        return Err(LinalgError::invalid("empty tridiagonal system"));
    }
    if sub.len() != n - 1 || sup.len() != n - 1 || b.len() != n {
        return Err(LinalgError::invalid(
            "tridiagonal bands must have length n-1 and rhs length n",
        ));
    }
    let scale = diag
        .iter()
        .chain(sub)
        .chain(sup)
        .fold(0.0_f64, |m, v| m.max(v.abs()))
        .max(1.0);
    if n == 1 {
        if diag[0].abs() <= 1e-300 * scale {
            return Err(LinalgError::Singular { pivot: 0 });
        }
        return Ok(vec![b[0] / diag[0]]);
    }
    let mut c = vec![0.0; n - 1];
    let mut d = vec![0.0; n];
    // Forward sweep.
    if diag[0].abs() <= 1e-300 * scale {
        return Err(LinalgError::Singular { pivot: 0 });
    }
    c[0] = sup[0] / diag[0];
    d[0] = b[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i - 1] * c[i - 1];
        if denom.abs() <= 1e-300 * scale {
            return Err(LinalgError::Singular { pivot: i });
        }
        if i < n - 1 {
            c[i] = sup[i] / denom;
        }
        d[i] = (b[i] - sub[i - 1] * d[i - 1]) / denom;
    }
    // Back substitution.
    let mut x = d;
    for i in (0..n - 1).rev() {
        let xi1 = x[i + 1];
        x[i] -= c[i] * xi1;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, lu, vector};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_access() {
        let mut m = BandedMatrix::zeros(4, 1, 2).unwrap();
        m.set(0, 0, 1.0).unwrap();
        m.set(0, 2, 3.0).unwrap();
        m.set(1, 0, -1.0).unwrap();
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(0, 3), 0.0); // outside band
        assert!(m.set(0, 3, 1.0).is_err());
        assert!(m.set(9, 0, 1.0).is_err());
        assert_eq!(m.bandwidths(), (1, 2));
        assert!(BandedMatrix::zeros(0, 0, 0).is_err());
        assert!(BandedMatrix::zeros(3, 3, 0).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let p = generate::poisson_1d(6).unwrap();
        let b = BandedMatrix::from_dense(&p, 1, 1).unwrap();
        assert_eq!(b.to_dense(), p);
        let auto = BandedMatrix::from_dense_auto(&p).unwrap();
        assert_eq!(auto.bandwidths(), (1, 1));
        // An element outside the declared band is rejected.
        assert!(BandedMatrix::from_dense(&p, 0, 0).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = generate::random_spd_toeplitz(12, 4, 0.02, &mut rng).unwrap();
        let band = BandedMatrix::from_dense_auto(&t).unwrap();
        let x = generate::random_vector(12, &mut rng);
        assert!(vector::approx_eq(
            &band.matvec(&x).unwrap(),
            &t.matvec(&x).unwrap(),
            1e-12
        ));
        assert!(band.matvec(&[0.0; 3]).is_err());
    }

    #[test]
    fn banded_solve_matches_dense_lu() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = generate::random_spd_toeplitz(20, 5, 0.05, &mut rng).unwrap();
        let band = BandedMatrix::from_dense_auto(&t).unwrap();
        let b = generate::random_vector(20, &mut rng);
        let x_band = band.solve_no_pivot(&b).unwrap();
        let x_dense = lu::solve(&t, &b).unwrap();
        assert!(vector::approx_eq(&x_band, &x_dense, 1e-8));
        assert!(band.solve_no_pivot(&[0.0; 3]).is_err());
    }

    #[test]
    fn poisson_solve_via_band_and_thomas_agree() {
        let n = 30;
        let p = generate::poisson_1d(n).unwrap();
        let band = BandedMatrix::from_dense_auto(&p).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x_band = band.solve_no_pivot(&b).unwrap();
        let sub = vec![-1.0; n - 1];
        let diag = vec![2.0; n];
        let sup = vec![-1.0; n - 1];
        let x_thomas = thomas_solve(&sub, &diag, &sup, &b).unwrap();
        let x_dense = lu::solve(&p, &b).unwrap();
        assert!(vector::approx_eq(&x_band, &x_dense, 1e-9));
        assert!(vector::approx_eq(&x_thomas, &x_dense, 1e-9));
    }

    #[test]
    fn thomas_validation_and_singularity() {
        assert!(thomas_solve(&[], &[], &[], &[]).is_err());
        assert!(thomas_solve(&[1.0], &[1.0, 1.0], &[], &[1.0, 1.0]).is_err());
        // Singular: zero pivot.
        assert!(matches!(
            thomas_solve(&[1.0], &[0.0, 1.0], &[1.0], &[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
        // 1x1 system.
        let x = thomas_solve(&[], &[4.0], &[], &[2.0]).unwrap();
        assert_eq!(x, vec![0.5]);
    }

    #[test]
    fn singular_banded_matrix_detected() {
        let mut m = BandedMatrix::zeros(3, 1, 1).unwrap();
        m.set(0, 0, 1.0).unwrap();
        m.set(1, 1, 0.0).unwrap();
        m.set(2, 2, 1.0).unwrap();
        assert!(matches!(
            m.solve_no_pivot(&[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn asymmetric_bandwidths() {
        // Lower-bidiagonal system (lower=1, upper=0).
        let mut m = BandedMatrix::zeros(3, 1, 0).unwrap();
        m.set(0, 0, 2.0).unwrap();
        m.set(1, 0, 1.0).unwrap();
        m.set(1, 1, 2.0).unwrap();
        m.set(2, 1, 1.0).unwrap();
        m.set(2, 2, 2.0).unwrap();
        let x = m.solve_no_pivot(&[2.0, 3.0, 3.0]).unwrap();
        assert!(vector::approx_eq(&x, &[1.0, 1.0, 1.0], 1e-12));
    }
}

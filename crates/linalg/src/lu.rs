//! LU factorization with partial pivoting.
//!
//! [`LuFactor`] is the exact "numerical solver" the paper benchmarks AMC
//! against, and it is also used internally by the BlockAMC pre-processing
//! step (the Schur complement `A4s = A4 − A3·A1⁻¹·A2` is computed digitally)
//! and by the dense modified-nodal-analysis path in `amc-circuit`.

use crate::sparse::CsrMatrix;
use crate::{LinalgError, Matrix, Result};

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_RTOL: f64 = 1e-300;

/// Picks a trailing-update panel width for an `n x n` factorization.
///
/// Small systems fit in L1 whole, so the classic 32-column panel (256
/// bytes of pivot row per tile) is already optimal; as the trailing
/// block outgrows L2 the panels widen so each pivot-row reload streams
/// more useful work. Any width produces a bit-identical factorization
/// (see [`LuFactor::new_blocked`]) — this function only tunes speed.
pub fn auto_panel(n: usize) -> usize {
    match n {
        0..=128 => 32,
        129..=768 => 48,
        _ => 64,
    }
}

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// # Example
///
/// ```
/// use amc_linalg::{Matrix, lu::LuFactor};
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined storage: the strict lower triangle holds L (unit diagonal
    /// implied), the upper triangle holds U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Number of row swaps performed (determines the determinant sign).
    swaps: usize,
}

impl LuFactor {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NonSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot underflows to (near) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::factorize(a, None)
    }

    /// Factorizes with the trailing update tiled into `block`-column
    /// panels — the cache-blocked kernel behind the blocked numeric
    /// engine. For each elimination step the pivot-row panel
    /// `U[k, jb..jb+block]` is streamed against all remaining rows
    /// before the next panel is touched, so it stays resident in L1
    /// while the unblocked loop walks the full trailing row per `i`.
    ///
    /// Every element receives exactly the same update sequence
    /// (`lu[i][j] -= factor·lu[k][j]`, once per `k`, in increasing `k`)
    /// as [`LuFactor::new`], so the factorization — and every solve
    /// through it — is **bit-identical** to the unblocked kernel at any
    /// block size.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidArgument`] for `block == 0`; otherwise the
    /// same conditions as [`LuFactor::new`].
    pub fn new_blocked(a: &Matrix, block: usize) -> Result<Self> {
        if block == 0 {
            return Err(LinalgError::invalid("LU panel width must be at least 1"));
        }
        Self::factorize(a, Some(block))
    }

    /// [`LuFactor::new_blocked`] with the panel width chosen by
    /// [`auto_panel`] for the matrix size — the recommended constructor
    /// for hot paths that factorize matrices of varying size.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LuFactor::new`].
    pub fn new_auto(a: &Matrix) -> Result<Self> {
        Self::factorize(a, Some(auto_panel(a.rows())))
    }

    /// The shared elimination kernel; `panel = None` runs the classic
    /// row-at-a-time trailing update, `Some(b)` the `b`-column panel
    /// tiling of [`LuFactor::new_blocked`].
    fn factorize(a: &Matrix, panel: Option<usize>) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NonSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::invalid("cannot factorize an empty matrix"));
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Find the pivot row.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax <= SINGULARITY_RTOL * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                swaps += 1;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            match panel {
                None => {
                    for i in (k + 1)..n {
                        let factor = lu[(i, k)] / pivot;
                        lu[(i, k)] = factor;
                        if factor != 0.0 {
                            for j in (k + 1)..n {
                                let ukj = lu[(k, j)];
                                lu[(i, j)] -= factor * ukj;
                            }
                        }
                    }
                }
                Some(b) => {
                    // Multipliers first, then the trailing update panel
                    // by panel. Per element this performs the identical
                    // operation in the identical `k` order as the
                    // unblocked branch — only the (i, j) visiting order
                    // changes, which floating point cannot observe.
                    for i in (k + 1)..n {
                        lu[(i, k)] /= pivot;
                    }
                    let mut jb = k + 1;
                    while jb < n {
                        let jend = (jb + b).min(n);
                        for i in (k + 1)..n {
                            let factor = lu[(i, k)];
                            if factor != 0.0 {
                                for j in jb..jend {
                                    let ukj = lu[(k, j)];
                                    lu[(i, j)] -= factor * ukj;
                                }
                            }
                        }
                        jb = jend;
                    }
                }
            }
        }
        Ok(LuFactor { lu, perm, swaps })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a borrowed output buffer — the
    /// allocation-free kernel behind [`LuFactor::solve`], for hot paths
    /// (repeated INV operations, Schur pre-processing) that reuse one
    /// scratch vector across many right-hand sides.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` or `x.len()`
    /// differs from the matrix dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve (output)",
                lhs: (n, n),
                rhs: (x.len(), 1),
            });
        }
        let lu = self.lu.as_slice();
        // Forward substitution on the permuted RHS: L·y = P·b.
        for (xi, &pi) in x.iter_mut().zip(&self.perm) {
            *xi = b[pi];
        }
        for i in 1..n {
            let (solved, rest) = x.split_at_mut(i);
            let row = &lu[i * n..i * n + i];
            rest[0] -= crate::vector::dot(row, solved);
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut(i + 1);
            let row = &lu[i * n + i + 1..(i + 1) * n];
            head[i] = (head[i] - crate::vector::dot(row, tail)) / lu[i * n + i];
        }
        Ok(())
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B` has the wrong row count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        let mut x = vec![0.0; n];
        for j in 0..b.cols() {
            for (i, c) in col.iter_mut().enumerate() {
                *c = b[(i, j)];
            }
            self.solve_into(&col, &mut x)?;
            for (i, &xi) in x.iter().enumerate() {
                out[(i, j)] = xi;
            }
        }
        Ok(out)
    }

    /// Applies the Schur-complement update `out -= A3·(A1⁻¹·A2)`, where
    /// `self` is the factorization of `A1` and `out` arrives holding
    /// `A4` — the fused pre-processing kernel of the BlockAMC partition
    /// (paper eq. 3).
    ///
    /// Compared to materializing `A1⁻¹·A2` and the `A3·…` product as
    /// full matrices, this streams one column at a time through two
    /// reused scratch vectors, so the only allocation is the two
    /// column buffers regardless of block size.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `A2`/`A3`/`out` do not
    /// conform: `A2` must be `n×k`, `A3` `m×n`, and `out` `m×k` for the
    /// `n×n` factorization `self`.
    pub fn schur_update_into(&self, a2: &Matrix, a3: &Matrix, out: &mut Matrix) -> Result<()> {
        let n = self.dim();
        if a2.rows() != n || a3.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "schur_update (A1 vs A2/A3)",
                lhs: a2.shape(),
                rhs: a3.shape(),
            });
        }
        if out.rows() != a3.rows() || out.cols() != a2.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "schur_update (output)",
                lhs: (a3.rows(), a2.cols()),
                rhs: out.shape(),
            });
        }
        let mut col = vec![0.0; n];
        let mut y = vec![0.0; n];
        for j in 0..a2.cols() {
            for (i, c) in col.iter_mut().enumerate() {
                *c = a2[(i, j)];
            }
            self.solve_into(&col, &mut y)?;
            for i in 0..out.rows() {
                out[(i, j)] -= crate::vector::dot(a3.row(i), &y);
            }
        }
        Ok(())
    }

    /// Sparse-aware variant of [`LuFactor::schur_update_into`]: `A2` and
    /// `A3` arrive in CSR form, so entirely-zero columns of `A2` are
    /// skipped outright (a zero right-hand side solves to exactly zero,
    /// so they cannot contribute) and each output row accumulates only
    /// over the stored entries of `A3`. For the grounded-Laplacian and
    /// PDN partition blocks — a handful of coupling entries in an
    /// otherwise zero off-diagonal block — this turns the `O(n³)` dense
    /// update into work proportional to the coupling bandwidth.
    ///
    /// Agrees with the dense kernel to within signed zeros: both sum the
    /// same nonzero products in the same column order, the sparse path
    /// merely omits terms that are exactly `0.0`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] under the same conditions
    /// as [`LuFactor::schur_update_into`].
    pub fn schur_update_sparse_into(
        &self,
        a2: &CsrMatrix,
        a3: &CsrMatrix,
        out: &mut Matrix,
    ) -> Result<()> {
        let n = self.dim();
        if a2.nrows() != n || a3.ncols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "schur_update_sparse (A1 vs A2/A3)",
                lhs: (a2.nrows(), a2.ncols()),
                rhs: (a3.nrows(), a3.ncols()),
            });
        }
        if out.rows() != a3.nrows() || out.cols() != a2.ncols() {
            return Err(LinalgError::ShapeMismatch {
                op: "schur_update_sparse (output)",
                lhs: (a3.nrows(), a2.ncols()),
                rhs: out.shape(),
            });
        }
        // Rows of A2ᵀ are the columns the solve streams through.
        let a2t = a2.transpose();
        let mut col = vec![0.0; n];
        let mut y = vec![0.0; n];
        for j in 0..a2.ncols() {
            let (cols, vals) = a2t.row_entries(j);
            if cols.is_empty() {
                continue;
            }
            col.fill(0.0);
            for (&i, &v) in cols.iter().zip(vals) {
                col[i] = v;
            }
            self.solve_into(&col, &mut y)?;
            for i in 0..out.rows() {
                let (ridx, rvals) = a3.row_entries(i);
                let dot: f64 = ridx.iter().zip(rvals).map(|(&c, &v)| v * y[c]).sum();
                out[(i, j)] -= dot;
            }
        }
        Ok(())
    }

    /// Computes the inverse matrix `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully constructed
    /// factorization of correct shape).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let sign = if self.swaps % 2 == 0 { 1.0 } else { -1.0 };
        self.lu.diag().iter().product::<f64>() * sign
    }

    /// Estimates the 1-norm condition number `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁`.
    ///
    /// Uses a few rounds of the Hager/Higham power-style estimator on
    /// `A⁻¹`; cheap (a handful of solves) and accurate to within a small
    /// factor, which is all the conditioning diagnostics need.
    ///
    /// `norm_one_a` must be the 1-norm of the *original* matrix (the factor
    /// does not retain it).
    pub fn cond_estimate(&self, norm_one_a: f64) -> f64 {
        let n = self.dim();
        // Start with the uniform vector.
        let mut x = vec![1.0 / n as f64; n];
        let mut est = 0.0_f64;
        for _ in 0..5 {
            let y = match self.solve(&x) {
                Ok(y) => y,
                Err(_) => return f64::INFINITY,
            };
            let norm_y = crate::vector::norm1(&y);
            est = est.max(norm_y);
            // Sign vector and transpose-solve direction via solving with the
            // sign pattern (uses A rather than Aᵀ: adequate for an estimate
            // on the symmetric-ish matrices this workspace handles).
            let z: Vec<f64> = y
                .iter()
                .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
                .collect();
            let w = match self.solve(&z) {
                Ok(w) => w,
                Err(_) => return f64::INFINITY,
            };
            // Pick the most influential unit vector next.
            let (jmax, wmax) = w
                .iter()
                .enumerate()
                .fold((0, 0.0_f64), |(jm, vm), (j, &v)| {
                    if v.abs() > vm {
                        (j, v.abs())
                    } else {
                        (jm, vm)
                    }
                });
            est = est.max(wmax);
            let mut e = vec![0.0; n];
            e[jmax] = 1.0;
            if crate::vector::approx_eq(&x, &e, 0.0) {
                break;
            }
            x = e;
        }
        est * norm_one_a
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// See [`LuFactor::new`] and [`LuFactor::solve`].
///
/// # Example
///
/// ```
/// use amc_linalg::{Matrix, lu};
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// let a = Matrix::identity(2);
/// assert_eq!(lu::solve(&a, &[5.0, -1.0])?, vec![5.0, -1.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactor::new(a)?.solve(b)
}

/// Convenience one-shot matrix inverse.
///
/// # Errors
///
/// See [`LuFactor::new`].
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    LuFactor::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn solves_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x, &x_true, 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert!(vector::approx_eq(&x, &[4.0, 3.0], 1e-14));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            LuFactor::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NonSquare { rows: 2, cols: 3 })
        ));
        // A 0x0 matrix cannot be built through from_rows; construct directly.
        let empty = Matrix::zeros(0, 0);
        assert!(LuFactor::new(&empty).is_err());
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn determinant_with_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-14);

        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((LuFactor::new(&b).unwrap().det() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]).unwrap();
        let x = LuFactor::new(&a).unwrap().solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_rejects_wrong_length_rhs() {
        let a = Matrix::identity(3);
        let lu = LuFactor::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
        assert!(lu.solve_into(&[1.0, 2.0, 3.0], &mut [0.0; 2]).is_err());
    }

    #[test]
    fn solve_into_matches_solve() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = lu.solve(&b).unwrap();
        let mut buf = vec![0.0; 3];
        lu.solve_into(&b, &mut buf).unwrap();
        assert_eq!(x, buf, "borrowed kernel must be bit-identical");
    }

    #[test]
    fn schur_update_matches_materialized_product() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let a1 = Matrix::from_fn(4, 4, |i, j| {
            use rand::Rng;
            let v: f64 = rng.gen_range(-1.0..1.0);
            if i == j {
                v + 5.0
            } else {
                v
            }
        });
        let a2 = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 * 0.25 - 0.5);
        let a3 = Matrix::from_fn(3, 4, |i, j| (2 * i + j) as f64 * 0.125 - 0.25);
        let a4 = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let lu = LuFactor::new(&a1).unwrap();
        let mut fused = a4.clone();
        lu.schur_update_into(&a2, &a3, &mut fused).unwrap();
        let reference = a4
            .sub_matrix(&a3.matmul(&lu.solve_matrix(&a2).unwrap()).unwrap())
            .unwrap();
        assert!(fused.approx_eq(&reference, 1e-12));
        // Shape validation.
        assert!(lu
            .schur_update_into(&a2, &a3, &mut Matrix::zeros(2, 2))
            .is_err());
        assert!(lu
            .schur_update_into(&Matrix::zeros(3, 3), &a3, &mut a4.clone())
            .is_err());
    }

    #[test]
    fn blocked_factorization_is_bit_identical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for n in [1usize, 2, 5, 17, 32] {
            let a = Matrix::from_fn(n, n, |i, j| {
                let v: f64 = rng.gen_range(-1.0..1.0);
                if i == j {
                    v + 3.0
                } else {
                    v
                }
            });
            let plain = LuFactor::new(&a).unwrap();
            for block in [1usize, 3, 8, 64] {
                let blocked = LuFactor::new_blocked(&a, block).unwrap();
                assert_eq!(
                    plain.lu.as_slice(),
                    blocked.lu.as_slice(),
                    "n={n} block={block}"
                );
                assert_eq!(plain.perm, blocked.perm);
                assert_eq!(plain.swaps, blocked.swaps);
            }
        }
        assert!(LuFactor::new_blocked(&Matrix::identity(2), 0).is_err());
    }

    #[test]
    fn sparse_schur_update_matches_dense_kernel() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let n = 6;
        let a1 = Matrix::from_fn(n, n, |i, j| {
            let v: f64 = rng.gen_range(-1.0..1.0);
            if i == j {
                v + 4.0
            } else {
                v
            }
        });
        // Sparse coupling blocks: one band plus a few scattered entries,
        // including entirely-zero columns of A2 (the skip path).
        let mut a2 = Matrix::zeros(n, 5);
        a2[(0, 1)] = -1.5;
        a2[(3, 1)] = 0.25;
        a2[(5, 4)] = 2.0;
        let mut a3 = Matrix::zeros(5, n);
        a3[(0, 0)] = 1.0;
        a3[(2, 5)] = -0.75;
        a3[(4, 3)] = 0.5;
        let a4 = Matrix::from_fn(5, 5, |i, j| (i + j) as f64 * 0.5);
        let lu = LuFactor::new(&a1).unwrap();
        let mut dense = a4.clone();
        lu.schur_update_into(&a2, &a3, &mut dense).unwrap();
        let mut sparse = a4.clone();
        lu.schur_update_sparse_into(
            &CsrMatrix::from_dense(&a2),
            &CsrMatrix::from_dense(&a3),
            &mut sparse,
        )
        .unwrap();
        assert!(sparse.approx_eq(&dense, 1e-14));
        // Shape validation mirrors the dense kernel.
        assert!(lu
            .schur_update_sparse_into(
                &CsrMatrix::from_dense(&a2),
                &CsrMatrix::from_dense(&a3),
                &mut Matrix::zeros(2, 2),
            )
            .is_err());
        assert!(lu
            .schur_update_sparse_into(
                &CsrMatrix::from_dense(&Matrix::zeros(3, 3)),
                &CsrMatrix::from_dense(&a3),
                &mut a4.clone(),
            )
            .is_err());
    }

    #[test]
    fn auto_panel_factorization_is_bit_identical_to_plain() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(19);
        for n in [1usize, 40, 150] {
            let a = Matrix::from_fn(n, n, |i, j| {
                let v: f64 = rng.gen_range(-1.0..1.0);
                if i == j {
                    v + 3.0
                } else {
                    v
                }
            });
            let plain = LuFactor::new(&a).unwrap();
            let auto = LuFactor::new_auto(&a).unwrap();
            assert_eq!(plain.lu.as_slice(), auto.lu.as_slice(), "n={n}");
            assert_eq!(plain.perm, auto.perm);
        }
        // The width schedule is monotone in n and always positive.
        assert!(auto_panel(0) >= 1);
        assert!(auto_panel(64) <= auto_panel(512));
        assert!(auto_panel(512) <= auto_panel(4096));
    }

    #[test]
    fn condition_estimate_orders_well_vs_ill() {
        let well = Matrix::identity(4);
        let lu_w = LuFactor::new(&well).unwrap();
        let cond_w = lu_w.cond_estimate(well.norm_one());

        // Hilbert-like ill-conditioned matrix.
        let ill = Matrix::from_fn(6, 6, |i, j| 1.0 / (i + j + 1) as f64);
        let lu_i = LuFactor::new(&ill).unwrap();
        let cond_i = lu_i.cond_estimate(ill.norm_one());

        assert!((cond_w - 1.0).abs() < 1e-9);
        assert!(cond_i > 1e5, "hilbert 6x6 cond estimate was {cond_i}");
    }

    #[test]
    fn large_random_system_residual_is_small() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let n = 64;
        let a = Matrix::from_fn(n, n, |i, j| {
            let base: f64 = rng.gen_range(-1.0..1.0);
            if i == j {
                base + n as f64 // diagonally dominant => well-conditioned
            } else {
                base
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x, &x_true, 1e-10));
    }
}

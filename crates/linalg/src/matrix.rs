//! Dense row-major matrix type.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse of the BlockAMC reproduction: it stores the
/// mathematical matrices being solved, the conductance matrices programmed
/// into crossbar arrays, and the assembled modified-nodal-analysis systems
/// for small circuits.
///
/// # Example
///
/// ```
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Creates a `rows x cols` matrix where every element equals `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::invalid(format!(
                "data length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the rows have differing
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::invalid("matrix must have at least one row"));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::invalid("matrix must have at least one column"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::invalid(format!(
                    "row {i} has length {}, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access with bounds checking.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets a single element.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix-matrix product `self * rhs` written into a caller-owned
    /// matrix — the allocation-free kernel behind [`Matrix::matmul`],
    /// for hot paths that multiply into the same scratch repeatedly.
    /// `out` is reshaped (reusing its buffer) and overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.reshape_in_place(self.rows, rhs.cols);
        out.data.fill(0.0);
        // i-k-j loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * r;
                }
            }
        }
        Ok(())
    }

    /// Reshapes the matrix to `rows x cols`, reusing the existing
    /// allocation when it is large enough. Contents are unspecified
    /// afterwards; callers overwrite.
    fn reshape_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product `self * x` written into a borrowed output
    /// buffer — the allocation-free kernel behind [`Matrix::matvec`],
    /// for hot paths that solve against the same matrix repeatedly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`
    /// or `out.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_into (output)",
                lhs: self.shape(),
                rhs: (out.len(), 1),
            });
        }
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(())
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transposed",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate().take(self.rows) {
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add_matrix(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn sub_matrix(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        self.map(|v| v * factor)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f(row, col, value)` to every element, returning a new matrix.
    pub fn map_indexed(&self, mut f: impl FnMut(usize, usize, f64) -> f64) -> Matrix {
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] = f(i, j, self.data[i * self.cols + j]);
            }
        }
        out
    }

    /// Maximum absolute element value (zero for a matrix of zeros).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Induced infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Induced 1-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut sums = vec![0.0_f64; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// Extracts the sub-matrix starting at `(row0, col0)` with shape
    /// `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the block exceeds the
    /// matrix bounds or is empty.
    pub fn block(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Result<Matrix> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::invalid("block must be non-empty"));
        }
        if row0 + rows > self.rows || col0 + cols > self.cols {
            return Err(LinalgError::invalid(format!(
                "block ({row0},{col0})+{rows}x{cols} exceeds matrix {}x{}",
                self.rows, self.cols
            )));
        }
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let src =
                &self.data[(row0 + i) * self.cols + col0..(row0 + i) * self.cols + col0 + cols];
            out.data[i * cols..(i + 1) * cols].copy_from_slice(src);
        }
        Ok(out)
    }

    /// Overwrites the sub-matrix starting at `(row0, col0)` with `block`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the block exceeds the
    /// matrix bounds.
    pub fn set_block(&mut self, row0: usize, col0: usize, block: &Matrix) -> Result<()> {
        if row0 + block.rows > self.rows || col0 + block.cols > self.cols {
            return Err(LinalgError::invalid(format!(
                "block ({row0},{col0})+{}x{} exceeds matrix {}x{}",
                block.rows, block.cols, self.rows, self.cols
            )));
        }
        for i in 0..block.rows {
            let dst_start = (row0 + i) * self.cols + col0;
            self.data[dst_start..dst_start + block.cols]
                .copy_from_slice(&block.data[i * block.cols..(i + 1) * block.cols]);
        }
        Ok(())
    }

    /// Assembles a 2x2 block matrix `[[a, b], [c, d]]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the blocks do not tile.
    pub fn from_blocks(a: &Matrix, b: &Matrix, c: &Matrix, d: &Matrix) -> Result<Matrix> {
        if a.rows != b.rows || c.rows != d.rows || a.cols != c.cols || b.cols != d.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_blocks",
                lhs: a.shape(),
                rhs: d.shape(),
            });
        }
        let rows = a.rows + c.rows;
        let cols = a.cols + b.cols;
        let mut out = Matrix::zeros(rows, cols);
        out.set_block(0, 0, a)?;
        out.set_block(0, a.cols, b)?;
        out.set_block(a.rows, 0, c)?;
        out.set_block(a.rows, a.cols, d)?;
        Ok(out)
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        out.set_block(0, 0, self)?;
        out.set_block(0, self.cols, rhs)?;
        Ok(out)
    }

    /// Vertical concatenation `[self; rhs]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows + rhs.rows, self.cols);
        out.set_block(0, 0, self)?;
        out.set_block(self.rows, 0, rhs)?;
        Ok(out)
    }

    /// Splits the matrix into the element-wise positive and negative parts so
    /// that `self = positive - negative`, with both parts non-negative.
    ///
    /// This is the decomposition used to map signed matrices onto two
    /// crossbar arrays (device conductances are physically non-negative).
    pub fn split_signs(&self) -> (Matrix, Matrix) {
        let pos = self.map(|v| if v > 0.0 { v } else { 0.0 });
        let neg = self.map(|v| if v < 0.0 { -v } else { 0.0 });
        (pos, neg)
    }

    /// Returns `true` if every element is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0.0)
    }

    /// Returns `true` if all elements differ from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if the matrix is strictly diagonally dominant.
    pub fn is_diagonally_dominant(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        (0..self.rows).all(|i| {
            let row = self.row(i);
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            row[i].abs() > off
        })
    }

    /// A fast, deterministic 64-bit content hash of the matrix: FNV-1a
    /// over the dimensions followed by the IEEE-754 bit pattern of every
    /// element in row-major order.
    ///
    /// Two matrices have equal fingerprints exactly when they have equal
    /// shape and **bitwise**-equal entries (so `0.0` and `-0.0` differ,
    /// and any `NaN` payload is hashed as-is). The fingerprint is stable
    /// across clones, processes, and platforms — it depends only on the
    /// logical content — which is what lets it serve as the matrix
    /// component of a cross-process cache key (`amc-serve` keys its
    /// prepared-solver cache on it). Collisions are possible in
    /// principle (it is a 64-bit hash, not cryptographic); callers that
    /// treat equal fingerprints as equal matrices accept that ~2⁻⁶⁴
    /// ambiguity by design.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            h
        }
        let mut h = FNV_OFFSET;
        h = eat(h, &(self.rows as u64).to_le_bytes());
        h = eat(h, &(self.cols as u64).to_le_bytes());
        for &v in &self.data {
            h = eat(h, &v.to_bits().to_le_bytes());
        }
        h
    }

    /// Returns `true` if the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.data[i * self.cols + j] - self.data[j * self.cols + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Matrix::add_matrix`] for a fallible
    /// version.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_matrix(rhs)
            .expect("matrix addition shape mismatch")
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Matrix::sub_matrix`] for a fallible
    /// version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_matrix(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the shapes are incompatible; use [`Matrix::matmul`] for a
    /// fallible version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
            .expect("matrix multiplication shape mismatch")
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_rows) {
                write!(f, "{:>12.5e} ", self.data[i * self.cols + j])?;
            }
            if self.cols > max_rows {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.is_zero());

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.diag(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_validates_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(err.is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn indexing_and_rows() {
        let m = sample();
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert_eq!(m.get(5, 0), None);
    }

    #[test]
    fn fingerprint_is_stable_across_clones_and_rebuilds() {
        let m = sample();
        let clone = m.clone();
        assert_eq!(m.fingerprint(), clone.fingerprint());
        // Content-equal but independently constructed: same fingerprint.
        let rebuilt = Matrix::from_vec(2, 3, m.as_slice().to_vec()).unwrap();
        assert_eq!(m.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn fingerprint_is_sensitive_to_any_single_entry_and_to_shape() {
        let m = sample();
        let fp = m.fingerprint();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let mut tweaked = m.clone();
                tweaked.set(i, j, m[(i, j)] + 1e-12);
                assert_ne!(tweaked.fingerprint(), fp, "entry ({i},{j})");
            }
        }
        // Bitwise sensitivity: -0.0 and 0.0 are different contents.
        let z = Matrix::zeros(2, 2);
        let mut nz = Matrix::zeros(2, 2);
        nz.set(0, 0, -0.0);
        assert_ne!(z.fingerprint(), nz.fingerprint());
        // Same data, different shape.
        let flat = Matrix::from_vec(1, 6, m.as_slice().to_vec()).unwrap();
        assert_ne!(flat.fingerprint(), fp);
        // Pinned value: the fingerprint is part of the amc-serve wire
        // contract, so a change here is a protocol break, not a detail.
        assert_eq!(Matrix::identity(2).fingerprint(), 0x3626_6942_fcc0_d345);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_into_reuses_scratch_and_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        // Stale shape and contents: matmul_into must reshape + overwrite.
        let mut scratch = Matrix::from_fn(3, 1, |_, _| 42.0);
        a.matmul_into(&b, &mut scratch).unwrap();
        assert_eq!(scratch, a.matmul(&b).unwrap());
        // A second product into the same scratch reuses the allocation.
        b.matmul_into(&a, &mut scratch).unwrap();
        assert_eq!(scratch, b.matmul(&a).unwrap());
        assert!(a.matmul_into(&Matrix::zeros(3, 2), &mut scratch).is_err());
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transposed() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        let mut buf = [0.0; 2];
        m.matvec_into(&[1.0, 0.0, -1.0], &mut buf).unwrap();
        assert_eq!(buf, [-2.0, -2.0]);
        assert!(m.matvec_into(&[1.0, 0.0, -1.0], &mut [0.0; 3]).is_err());
        assert_eq!(
            m.matvec_transposed(&[1.0, 1.0]).unwrap(),
            vec![5.0, 7.0, 9.0]
        );
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn block_extraction_and_composition() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let a = m.block(0, 0, 2, 2).unwrap();
        let b = m.block(0, 2, 2, 2).unwrap();
        let c = m.block(2, 0, 2, 2).unwrap();
        let d = m.block(2, 2, 2, 2).unwrap();
        let re = Matrix::from_blocks(&a, &b, &c, &d).unwrap();
        assert_eq!(re, m);
        assert!(m.block(3, 3, 2, 2).is_err());
        assert!(m.block(0, 0, 0, 1).is_err());
    }

    #[test]
    fn set_block_rejects_out_of_bounds() {
        let mut m = Matrix::zeros(3, 3);
        let b = Matrix::identity(2);
        m.set_block(1, 1, &b).unwrap();
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 2)], 1.0);
        assert!(m.set_block(2, 2, &b).is_err());
    }

    #[test]
    fn stacking() {
        let a = Matrix::identity(2);
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 4));
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert!(a.hstack(&Matrix::zeros(3, 2)).is_err());
        assert!(a.vstack(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn sign_split_reconstructs() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 3.5]]).unwrap();
        let (p, n) = m.split_signs();
        assert!(p.as_slice().iter().all(|&v| v >= 0.0));
        assert!(n.as_slice().iter().all(|&v| v >= 0.0));
        assert_eq!(&p - &n, m);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]).unwrap();
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_inf(), 7.0);
        assert_eq!(m.norm_one(), 4.0);
    }

    #[test]
    fn predicates() {
        let dd = Matrix::from_rows(&[&[4.0, 1.0], &[-1.0, 3.0]]).unwrap();
        assert!(dd.is_diagonally_dominant());
        let not_dd = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(!not_dd.is_diagonally_dominant());

        let sym = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(sym.is_symmetric(0.0));
        assert!(!sample().is_symmetric(0.0));
    }

    #[test]
    fn operators() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let s = &a + &b;
        assert_eq!(s[(0, 0)], 2.0);
        let d = &s - &b;
        assert_eq!(d, a);
        let n = -&a;
        assert_eq!(n[(1, 1)], -1.0);
        let p = &a * &b;
        assert_eq!(p, b);
    }

    #[test]
    fn display_is_nonempty() {
        let text = sample().to_string();
        assert!(text.contains("Matrix 2x3"));
    }

    #[test]
    fn map_indexed_sees_coordinates() {
        let m = Matrix::zeros(2, 2).map_indexed(|i, j, _| (i * 10 + j) as f64);
        assert_eq!(m[(1, 1)], 11.0);
    }
}

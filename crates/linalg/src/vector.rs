//! Small vector helpers over `&[f64]` slices.
//!
//! These free functions are used pervasively by the solvers; they keep the
//! hot paths allocation-free where possible and panic-free by returning
//! checked results only where shapes can disagree (callers in this workspace
//! validate shapes at the matrix level, so these helpers use debug
//! assertions instead of `Result`s).

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Maximum absolute value (zero for an empty slice).
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Sum of absolute values.
pub fn norm1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scaled copy `alpha * v`.
pub fn scale(v: &[f64], alpha: f64) -> Vec<f64> {
    v.iter().map(|x| alpha * x).collect()
}

/// Negated copy `-v`.
pub fn neg(v: &[f64]) -> Vec<f64> {
    scale(v, -1.0)
}

/// In-place negation `v = -v`.
pub fn neg_in_place(v: &mut [f64]) {
    for x in v {
        *x = -*x;
    }
}

/// In-place element-wise sum `a += b`.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len(), "add_assign: length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// In-place element-wise difference `a -= b`.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
pub fn sub_assign(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len(), "sub_assign: length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        *x -= y;
    }
}

/// In-place `y += alpha * x` (the BLAS `axpy` operation).
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Concatenates two slices into a new vector.
pub fn concat(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// Splits a slice at `mid`, returning owned halves.
///
/// # Panics
///
/// Panics if `mid > v.len()`.
pub fn split_at(v: &[f64], mid: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(mid <= v.len(), "split index out of bounds");
    (v[..mid].to_vec(), v[mid..].to_vec())
}

/// Returns `true` if every pair of elements differs by at most `tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm_inf(&a), 4.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(sub(&b, &a), vec![2.0, 3.0]);
        assert_eq!(scale(&a, 2.0), vec![2.0, 4.0]);
        assert_eq!(neg(&a), vec![-1.0, -2.0]);
    }

    #[test]
    fn in_place_arithmetic() {
        let mut v = [1.0, -2.0];
        neg_in_place(&mut v);
        assert_eq!(v, [-1.0, 2.0]);
        add_assign(&mut v, &[2.0, 2.0]);
        assert_eq!(v, [1.0, 4.0]);
        sub_assign(&mut v, &[1.0, 1.0]);
        assert_eq!(v, [0.0, 3.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 1.0];
        let mut y = [0.5, -0.5];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [2.5, 1.5]);
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let v = concat(&[1.0, 2.0], &[3.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        let (l, r) = split_at(&v, 2);
        assert_eq!(l, vec![1.0, 2.0]);
        assert_eq!(r, vec![3.0]);
        let (l, r) = split_at(&v, 0);
        assert!(l.is_empty());
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "split index out of bounds")]
    fn split_out_of_bounds_panics() {
        let _ = split_at(&[1.0], 2);
    }

    #[test]
    fn approx_eq_checks_both_length_and_values() {
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-12, 2.0], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-3));
    }
}

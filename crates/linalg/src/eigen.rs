//! Symmetric eigensolver (cyclic Jacobi rotations) and spectral helpers.
//!
//! The INV circuit's stability and settling time are governed by the
//! spectrum of the mapped matrix (Sun et al., T-ED 2020): all eigenvalues
//! of the (symmetrized) normalized matrix must be positive for the
//! feedback loop to converge, and the smallest one sets the time
//! constant. This module provides a dependable dense symmetric
//! eigensolver for those analyses, plus convenience spectral queries used
//! by the split-search optimizer in `blockamc`.

use crate::{LinalgError, Matrix, Result};

/// Full eigendecomposition of a symmetric matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, column `k` pairing with `values[k]`.
    pub vectors: Matrix,
}

/// Computes all eigenvalues/eigenvectors of a symmetric matrix with the
/// cyclic Jacobi method.
///
/// Robust and simple — O(n³) per sweep with typically 6–10 sweeps — which
/// is plenty for the ≤ 512-sized spectral diagnostics this workspace
/// runs.
///
/// # Errors
///
/// * [`LinalgError::NonSquare`] if `a` is not square.
/// * [`LinalgError::InvalidArgument`] if `a` is empty or not symmetric to
///   `1e-9·max|a|`.
/// * [`LinalgError::ConvergenceFailure`] if the off-diagonal mass does not
///   vanish within 50 sweeps (does not happen for finite symmetric input).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::NonSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::invalid("cannot decompose an empty matrix"));
    }
    let scale = a.max_abs();
    if !a.is_symmetric(1e-9 * scale.max(1.0)) {
        return Err(LinalgError::invalid(
            "jacobi eigensolver requires a symmetric matrix",
        ));
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-14 * scale.max(f64::MIN_POSITIVE);

    for _sweep in 0..50 {
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off <= tol {
            let mut pairs: Vec<(f64, usize)> = (0..n).map(|k| (m[(k, k)], k)).collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
            let mut vectors = Matrix::zeros(n, n);
            for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
                for r in 0..n {
                    vectors[(r, new_col)] = v[(r, old_col)];
                }
            }
            return Ok(SymmetricEigen { values, vectors });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol {
                    continue;
                }
                // Classic Jacobi rotation annihilating (p, q).
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Update rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::ConvergenceFailure {
        iterations: 50,
        residual: f64::NAN,
        tolerance: tol,
    })
}

/// Eigenvalue extremes `(λ_min, λ_max)` of a symmetric matrix.
///
/// # Errors
///
/// Same conditions as [`symmetric_eigen`].
pub fn eigen_extremes(a: &Matrix) -> Result<(f64, f64)> {
    let e = symmetric_eigen(a)?;
    Ok((
        *e.values.first().expect("non-empty by construction"),
        *e.values.last().expect("non-empty by construction"),
    ))
}

/// Spectral condition number `|λ|_max / |λ|_min` of a symmetric matrix.
///
/// Returns `f64::INFINITY` for a singular matrix.
///
/// # Errors
///
/// Same conditions as [`symmetric_eigen`].
pub fn spectral_condition(a: &Matrix) -> Result<f64> {
    let e = symmetric_eigen(a)?;
    let abs_min = e
        .values
        .iter()
        .map(|v| v.abs())
        .fold(f64::INFINITY, f64::min);
    let abs_max = e.values.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
    if abs_min == 0.0 {
        Ok(f64::INFINITY)
    } else {
        Ok(abs_max / abs_min)
    }
}

/// Condition proxy for a general square matrix: the spectral condition of
/// its symmetric part — cheap and adequate for ranking alternative block
/// splits (the BlockAMC split-search use case).
///
/// # Errors
///
/// Propagates [`symmetric_eigen`] failures.
pub fn symmetric_part_condition(a: &Matrix) -> Result<f64> {
    if !a.is_square() {
        return Err(LinalgError::NonSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    // Fused symmetrization: one pass and one allocation instead of the
    // transpose + add + scale chain (three temporaries). The split-search
    // optimizer calls this once per candidate split, so it is hot.
    let sym = Matrix::from_fn(a.rows(), a.rows(), |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    spectral_condition(&sym)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_2x2_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3 with vectors (1,∓1)/√2.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        // Eigenvector check: A·v = λ·v.
        for k in 0..2 {
            let v: Vec<f64> = (0..2).map(|r| e.vectors[(r, k)]).collect();
            let av = a.matvec(&v).unwrap();
            for i in 0..2 {
                assert!((av[i] - e.values[k] * v[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = generate::wishart_default(12, &mut rng).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        // VᵀV = I, with the product chain run through the scratch-reusing
        // GEMM entry point.
        let mut scratch = Matrix::zeros(1, 1);
        e.vectors
            .transpose()
            .matmul_into(&e.vectors, &mut scratch)
            .unwrap();
        assert!(scratch.approx_eq(&Matrix::identity(12), 1e-10));
        // V·Λ·Vᵀ = A.
        let lambda = Matrix::from_diag(&e.values);
        e.vectors.matmul_into(&lambda, &mut scratch).unwrap();
        let back = scratch.matmul(&e.vectors.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-9 * a.max_abs()));
        // Values ascend.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn spd_matrices_have_positive_spectrum() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = generate::random_spd_toeplitz(16, 8, 0.02, &mut rng).unwrap();
        let (lo, hi) = eigen_extremes(&a).unwrap();
        assert!(lo > 0.0);
        assert!(hi >= lo);
    }

    #[test]
    fn condition_number_matches_diagonal_case() {
        let a = Matrix::from_diag(&[10.0, 0.1, 1.0]);
        assert!((spectral_condition(&a).unwrap() - 100.0).abs() < 1e-9);
        let singular = Matrix::from_diag(&[1.0, 0.0]);
        assert_eq!(spectral_condition(&singular).unwrap(), f64::INFINITY);
    }

    #[test]
    fn rejects_asymmetric_and_non_square() {
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(symmetric_eigen(&asym).is_err());
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        // But the symmetric-part proxy accepts it.
        assert!(symmetric_part_condition(&asym).is_ok());
    }

    #[test]
    fn agrees_with_inverse_iteration_estimate() {
        // Cross-check against the independent λ_min estimator in the
        // circuit crate's style: smallest |eigenvalue| via this solver.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = generate::wishart_default(10, &mut rng).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let lu = crate::lu::LuFactor::new(&a).unwrap();
        let cond_est = lu.cond_estimate(a.norm_one());
        let cond_true = e.values.last().unwrap() / e.values.first().unwrap();
        // The 1-norm estimate should be within a modest factor of truth.
        assert!(
            cond_est > cond_true * 0.1 && cond_est < cond_true * 10.0,
            "estimate {cond_est} vs true {cond_true}"
        );
    }
}

//! Seeded generators for the paper's benchmark matrix families.
//!
//! The BlockAMC evaluation uses two matrix families (paper §IV):
//!
//! * **Wishart** matrices `A = Xᵀ·X` with `X` an `m x n` real Gaussian
//!   matrix — stochastic SPD matrices common in statistical physics.
//! * **Toeplitz** matrices, constant along diagonals — common in cyclic
//!   convolution and discrete Fourier analysis.
//!
//! All generators take an explicit RNG so experiments are reproducible; the
//! repro harness seeds a `rand_chacha::ChaCha8Rng` per (figure, size, trial).

use crate::{LinalgError, Matrix, Result};
use rand::distributions::Distribution;
use rand::Rng;

/// Samples a standard normal value using the Box-Muller transform.
///
/// Kept local (instead of `rand_distr`) to keep the dependency set minimal.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: u1 in (0,1], u2 in [0,1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A distribution adapter producing standard normal samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal(rng)
    }
}

/// Generates an `rows x cols` matrix with i.i.d. standard normal entries.
pub fn gaussian<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| standard_normal(rng))
}

/// Generates an `n x n` Wishart matrix `A = Xᵀ·X / m` with `X` an `m x n`
/// real Gaussian matrix (paper eq. 4).
///
/// The `1/m` normalization keeps element magnitudes O(1) across sizes; the
/// AMC mapping stage re-normalizes to the conductance range anyway, so this
/// does not change any of the paper's experiments.
///
/// With `m >= n` the result is symmetric positive definite with probability
/// one. The paper does not state `m`; the reproduction default, used by the
/// harness, is `m = 4n`, which by the Marchenko–Pastur law gives condition
/// numbers around `((1+√γ)/(1−√γ))² = 9` (γ = n/m = 1/4), independent of
/// `n` — the regime in which the paper's reported relative errors (0.05 to
/// 0.4 under 5% conductance variation) are reachable. Smaller `m` (e.g.
/// `m = n`) gives much worse conditioning and proportionally larger analog
/// errors.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0` or `m < n`.
pub fn wishart<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("wishart size must be positive"));
    }
    if m < n {
        return Err(LinalgError::invalid(format!(
            "wishart requires m >= n for invertibility, got m={m}, n={n}"
        )));
    }
    let x = gaussian(m, n, rng);
    let mut a = x.transpose().matmul(&x)?;
    let scale = 1.0 / m as f64;
    a = a.scaled(scale);
    Ok(a)
}

/// Generates an `n x n` Wishart matrix with the reproduction's default
/// degrees-of-freedom choice `m = 4n` (see [`wishart`] for why).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0`.
pub fn wishart_default<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Matrix> {
    wishart(n, 4 * n, rng)
}

/// Builds a Toeplitz matrix from its first column and first row
/// (paper eq. 5): `A[i][j] = first_col[i - j]` for `i >= j`, else
/// `first_row[j - i]`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if the inputs are empty, have
/// different lengths, or disagree on the shared diagonal element
/// `first_col[0] != first_row[0]`.
pub fn toeplitz(first_col: &[f64], first_row: &[f64]) -> Result<Matrix> {
    if first_col.is_empty() {
        return Err(LinalgError::invalid("toeplitz inputs must be non-empty"));
    }
    if first_col.len() != first_row.len() {
        return Err(LinalgError::invalid(format!(
            "toeplitz first_col ({}) and first_row ({}) must have equal length",
            first_col.len(),
            first_row.len()
        )));
    }
    if (first_col[0] - first_row[0]).abs() > 0.0 {
        return Err(LinalgError::invalid(
            "toeplitz first_col[0] must equal first_row[0]",
        ));
    }
    let n = first_col.len();
    Ok(Matrix::from_fn(n, n, |i, j| {
        if i >= j {
            first_col[i - j]
        } else {
            first_row[j - i]
        }
    }))
}

/// Generates a random diagonally dominant Toeplitz matrix.
///
/// Off-diagonal generators are uniform in `[-1, 1]` and the diagonal is set
/// to a value exceeding the absolute sum of the off-diagonals, which makes
/// the matrix well-posed for the INV circuit (a singular Toeplitz draw
/// would make neither the numerical nor the analog solver meaningful).
/// `dominance` scales how strongly the diagonal dominates: `1.0` is
/// marginal, larger is safer; the harness default is `1.2`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0` or
/// `dominance <= 0`.
pub fn random_toeplitz<R: Rng + ?Sized>(n: usize, dominance: f64, rng: &mut R) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("toeplitz size must be positive"));
    }
    if dominance <= 0.0 {
        return Err(LinalgError::invalid("dominance must be positive"));
    }
    let mut col: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut row: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    // Decay off-diagonals so distant diagonals matter less (typical of the
    // convolution kernels Toeplitz matrices model) and dominance is cheap.
    for k in 1..n {
        let decay = 1.0 / (1.0 + k as f64);
        col[k] *= decay;
        row[k] *= decay;
    }
    let off_sum: f64 = col[1..]
        .iter()
        .chain(row[1..].iter())
        .map(|v| v.abs())
        .sum();
    let d = dominance * off_sum.max(1.0);
    col[0] = d;
    row[0] = d;
    toeplitz(&col, &row)
}

/// Generates a raw random Toeplitz matrix: first row/column entries are
/// i.i.d. uniform in `[-1, 1]` with no conditioning safeguards.
///
/// This matches the paper's benchmark family (eq. 5 with random
/// generators): such matrices are almost surely invertible but can be
/// arbitrarily ill-conditioned, which is why the paper's Toeplitz relative
/// errors grow toward O(1) at large sizes. Use [`random_toeplitz`] when a
/// well-posed (diagonally dominant) instance is needed.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0`.
pub fn random_toeplitz_raw<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("toeplitz size must be positive"));
    }
    let mut col: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let row_rest: Vec<f64> = (1..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut row = Vec::with_capacity(n);
    row.push(col[0]);
    row.extend(row_rest);
    // Guard against a (measure-zero) zero diagonal which would make the
    // matrix trivially singular for n = 1.
    if col[0] == 0.0 {
        col[0] = 0.5;
        row[0] = 0.5;
    }
    toeplitz(&col, &row)
}

/// Generates a raw random Toeplitz matrix whose condition-number
/// estimate does not exceed `max_cond`, by seeded resampling.
///
/// [`random_toeplitz_raw`] occasionally draws catastrophically
/// conditioned instances (the family is almost surely invertible but
/// unboundedly ill-conditioned), which makes any experiment consuming
/// it flaky: a single near-singular draw dominates means and can sink a
/// shape check. This helper redraws from the caller's RNG stream until
/// the 1-norm condition estimate is within `max_cond`, up to
/// `MAX_TOEPLITZ_RESAMPLES` attempts, then returns the
/// **best-conditioned draw seen** — so it always succeeds, stays fully
/// deterministic for a given RNG state, and still exercises the
/// ill-conditioned (but finite) regime the paper's Toeplitz benchmarks
/// target.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0` or `max_cond`
/// is not greater than 1.
pub fn random_toeplitz_conditioned<R: Rng + ?Sized>(
    n: usize,
    max_cond: f64,
    rng: &mut R,
) -> Result<Matrix> {
    if !(max_cond.is_finite() && max_cond > 1.0) {
        return Err(LinalgError::invalid(format!(
            "max_cond must be finite and > 1, got {max_cond}"
        )));
    }
    let mut best: Option<(f64, Matrix)> = None;
    for _ in 0..MAX_TOEPLITZ_RESAMPLES {
        let a = random_toeplitz_raw(n, rng)?;
        let cond = match crate::lu::LuFactor::new(&a) {
            Ok(lu) => lu.cond_estimate(a.norm_one()),
            Err(_) => f64::INFINITY, // singular draw: resample
        };
        if cond <= max_cond {
            return Ok(a);
        }
        if best.as_ref().map_or(true, |(c, _)| cond < *c) {
            best = Some((cond, a));
        }
    }
    Ok(best.expect("at least one draw was recorded").1)
}

/// Resampling budget of [`random_toeplitz_conditioned`]. At the default
/// guard of [`DEFAULT_TOEPLITZ_MAX_COND`] a draw passes with high
/// probability, so the budget is almost never exhausted; it exists to
/// bound the worst case.
pub const MAX_TOEPLITZ_RESAMPLES: usize = 16;

/// The workspace-wide default condition ceiling for guarded raw
/// Toeplitz draws: generous enough to keep the family genuinely
/// ill-conditioned (the paper's eq. 5 regime), tight enough to exclude
/// the catastrophic tail that makes experiments flaky. The bench
/// harness and the scenario registry both use this value.
pub const DEFAULT_TOEPLITZ_MAX_COND: f64 = 1e8;

/// Generates a random symmetric positive-definite Toeplitz matrix from a
/// random autocorrelation sequence.
///
/// A length-`kernel_len` random vector `w` defines
/// `a_k = Σ_j w_j·w_{j+k}`; the banded Toeplitz matrix with those
/// diagonals is a finite section of the PSD convolution operator with
/// symbol `|W(e^{iθ})|²`, hence positive semidefinite — and positive
/// definite for generic `w` (strictly, whenever `W` has no zeros on the
/// unit circle). This is the natural Toeplitz family of the paper's
/// motivating applications (cyclic convolution, autocorrelation /
/// discrete-Fourier analysis), and its condition number grows with `n`
/// toward `max|W|²/min|W|²`, giving the error-vs-size growth the paper's
/// Fig. 7(b)/9(b) show.
///
/// `ridge` adds `ridge·a_0` to the diagonal (a relative regularization,
/// like the noise floor of a measured autocorrelation), which bounds the
/// condition number by roughly `1 + 1/ridge`; pass `0.0` for the raw
/// autocorrelation matrix.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0`, `kernel_len == 0`,
/// or `ridge` is negative/not finite.
pub fn random_spd_toeplitz<R: Rng + ?Sized>(
    n: usize,
    kernel_len: usize,
    ridge: f64,
    rng: &mut R,
) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("toeplitz size must be positive"));
    }
    if kernel_len == 0 {
        return Err(LinalgError::invalid("kernel length must be positive"));
    }
    if !(ridge.is_finite() && ridge >= 0.0) {
        return Err(LinalgError::invalid(
            "ridge must be finite and non-negative",
        ));
    }
    let k = kernel_len.min(n);
    let w: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut diag0 = 0.0;
    for &wj in &w {
        diag0 += wj * wj;
    }
    diag0 = diag0.max(1e-6); // guard against an (astronomically unlikely) zero draw
    let mut col = vec![0.0; n];
    col[0] = diag0 * (1.0 + ridge);
    for lag in 1..k {
        let mut s = 0.0;
        for j in 0..(k - lag) {
            s += w[j] * w[j + lag];
        }
        col[lag] = s;
    }
    toeplitz(&col, &col)
}

/// Generates a random strictly diagonally dominant matrix with off-diagonal
/// entries uniform in `[-1, 1]`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0` or `margin <= 0`.
pub fn diagonally_dominant<R: Rng + ?Sized>(n: usize, margin: f64, rng: &mut R) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("size must be positive"));
    }
    if margin <= 0.0 {
        return Err(LinalgError::invalid("margin must be positive"));
    }
    let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    for i in 0..n {
        let off: f64 = a
            .row(i)
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, v)| v.abs())
            .sum();
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        a[(i, i)] = sign * (off + margin);
    }
    Ok(a)
}

/// Builds the `n x n` 1-D Poisson (second-difference) matrix
/// `tridiag(-1, 2, -1)`, which is SPD and Toeplitz — used by the Poisson
/// solver example.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0`.
pub fn poisson_1d(n: usize) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("size must be positive"));
    }
    Ok(Matrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    }))
}

/// Builds the `(nx·ny) x (nx·ny)` 2-D Poisson matrix: the 5-point
/// finite-difference Laplacian on an `nx x ny` grid with Dirichlet
/// boundaries (diagonal 4, adjacent grid neighbours −1).
///
/// SPD, sparse-structured, and progressively ill-conditioned as the grid
/// grows (`κ ~ (max(nx,ny)/π)²`) — the canonical "physics workload" for
/// a linear-system solver.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `nx == 0` or `ny == 0`.
pub fn poisson_2d(nx: usize, ny: usize) -> Result<Matrix> {
    if nx == 0 || ny == 0 {
        return Err(LinalgError::invalid("grid dimensions must be positive"));
    }
    let n = nx * ny;
    let mut a = Matrix::zeros(n, n);
    for ix in 0..nx {
        for iy in 0..ny {
            let k = ix * ny + iy;
            a[(k, k)] = 4.0;
            if ix + 1 < nx {
                let k2 = (ix + 1) * ny + iy;
                a[(k, k2)] = -1.0;
                a[(k2, k)] = -1.0;
            }
            if iy + 1 < ny {
                let k2 = ix * ny + iy + 1;
                a[(k, k2)] = -1.0;
                a[(k2, k)] = -1.0;
            }
        }
    }
    Ok(a)
}

/// Builds the grounded Laplacian of a path graph on `n` vertices:
/// `L + ground·I` with `L = D − A` of the path `0 − 1 − … − n−1`.
///
/// The raw graph Laplacian is only positive *semi*-definite (the all-ones
/// vector is in its kernel); the `ground > 0` leak to a reference node
/// makes it SPD — exactly how a resistor network with a grounding
/// conductance per node becomes solvable. The condition number scales
/// like `1/ground` for small `ground`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0` or `ground` is
/// not positive and finite.
pub fn path_laplacian(n: usize, ground: f64) -> Result<Matrix> {
    chain_laplacian(n, ground, false)
}

/// Builds the grounded Laplacian of a ring (cycle) graph on `n`
/// vertices: the path of [`path_laplacian`] plus the wrap-around edge
/// `n−1 — 0`. Circulant, hence also Toeplitz-like in structure.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0` or `ground` is
/// not positive and finite.
pub fn ring_laplacian(n: usize, ground: f64) -> Result<Matrix> {
    chain_laplacian(n, ground, true)
}

fn chain_laplacian(n: usize, ground: f64, ring: bool) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("graph size must be positive"));
    }
    if !(ground.is_finite() && ground > 0.0) {
        return Err(LinalgError::invalid(
            "grounding conductance must be positive and finite",
        ));
    }
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = ground;
    }
    let mut connect = |i: usize, j: usize| {
        a[(i, i)] += 1.0;
        a[(j, j)] += 1.0;
        a[(i, j)] -= 1.0;
        a[(j, i)] -= 1.0;
    };
    for i in 0..n.saturating_sub(1) {
        connect(i, i + 1);
    }
    if ring && n > 2 {
        connect(n - 1, 0);
    }
    Ok(a)
}

/// Builds the grounded Laplacian of a random regular multigraph on `n`
/// vertices via the permutation model: `degree/2` random permutations
/// each contribute the edge set `{i — σ(i)}`, giving every vertex
/// (multigraph) degree `degree`; self-loops of a permutation are
/// skipped. The result is `L + ground·I`: symmetric, diagonally
/// dominant, and SPD for `ground > 0` — an expander-like workload whose
/// conditioning stays flat as `n` grows (unlike the path/ring families).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0`, `degree` is
/// zero or odd, or `ground` is not positive and finite.
pub fn random_regular_laplacian<R: Rng + ?Sized>(
    n: usize,
    degree: usize,
    ground: f64,
    rng: &mut R,
) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("graph size must be positive"));
    }
    if degree == 0 || degree % 2 != 0 {
        return Err(LinalgError::invalid(format!(
            "permutation-model regular graphs need a positive even degree, got {degree}"
        )));
    }
    if !(ground.is_finite() && ground > 0.0) {
        return Err(LinalgError::invalid(
            "grounding conductance must be positive and finite",
        ));
    }
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = ground;
    }
    for _ in 0..degree / 2 {
        // Fisher–Yates shuffle of 0..n from the caller's RNG stream.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for (i, &j) in perm.iter().enumerate() {
            if i == j {
                continue;
            }
            a[(i, i)] += 1.0;
            a[(j, j)] += 1.0;
            a[(i, j)] -= 1.0;
            a[(j, i)] -= 1.0;
        }
    }
    Ok(a)
}

/// Generates a random SPD matrix with a prescribed spectrum: eigenvalues
/// log-spaced from `1/√cond` to `√cond` (so the 2-norm condition number
/// is exactly `cond` and the spectrum is centred on 1), conjugated by a
/// random orthogonal matrix.
///
/// The orthogonal factor comes from modified Gram–Schmidt on an i.i.d.
/// Gaussian matrix (Haar-distributed up to column signs), so instances
/// are dense and unstructured — the family isolates *conditioning* from
/// structure, which is what the split-rule and depth studies need.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `n == 0` or `cond < 1`
/// (or non-finite).
pub fn spd_with_condition<R: Rng + ?Sized>(n: usize, cond: f64, rng: &mut R) -> Result<Matrix> {
    if n == 0 {
        return Err(LinalgError::invalid("size must be positive"));
    }
    if !(cond.is_finite() && cond >= 1.0) {
        return Err(LinalgError::invalid(format!(
            "condition target must be finite and >= 1, got {cond}"
        )));
    }
    // Random orthogonal basis: modified Gram–Schmidt with degenerate
    // columns redrawn (measure-zero, but keeps the loop total).
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(n);
    while q.len() < n {
        let mut v: Vec<f64> = (0..n).map(|_| standard_normal(rng)).collect();
        for u in &q {
            let dot: f64 = v.iter().zip(u).map(|(a, b)| a * b).sum();
            for (vi, ui) in v.iter_mut().zip(u) {
                *vi -= dot * ui;
            }
        }
        let norm = crate::vector::norm2(&v);
        if norm > 1e-8 {
            for vi in &mut v {
                *vi /= norm;
            }
            q.push(v);
        }
    }
    // Log-spaced eigenvalues in [1/√cond, √cond].
    let half_log = 0.5 * cond.ln();
    let eig = |k: usize| -> f64 {
        if n == 1 {
            1.0
        } else {
            let t = k as f64 / (n - 1) as f64; // 0..1
            ((2.0 * t - 1.0) * half_log).exp()
        }
    };
    // A = Σ_k λ_k · q_k q_kᵀ.
    let mut a = Matrix::zeros(n, n);
    for (k, qk) in q.iter().enumerate() {
        let lk = eig(k);
        for i in 0..n {
            let s = lk * qk[i];
            for j in 0..n {
                a[(i, j)] += s * qk[j];
            }
        }
    }
    // Symmetrize exactly: rounding in the outer-product accumulation
    // leaves ~1e-16 asymmetry that strict symmetry checks would reject.
    for i in 0..n {
        for j in (i + 1)..n {
            let m = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = m;
            a[(j, i)] = m;
        }
    }
    Ok(a)
}

/// Generates a random vector with entries uniform in `[-1, 1]`.
pub fn random_vector<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Generates a random unit-norm vector.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_unit_vector<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    assert!(n > 0, "vector length must be positive");
    loop {
        let v: Vec<f64> = (0..n).map(|_| standard_normal(rng)).collect();
        let norm = crate::vector::norm2(&v);
        if norm > 1e-12 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn gaussian_has_plausible_moments() {
        let mut r = rng(1);
        let m = gaussian(100, 100, &mut r);
        let n = (m.rows() * m.cols()) as f64;
        let mean: f64 = m.as_slice().iter().sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn wishart_is_spd_and_symmetric() {
        let mut r = rng(2);
        let a = wishart_default(16, &mut r).unwrap();
        assert!(a.is_symmetric(1e-12));
        assert!(cholesky::is_spd(&a, 1e-12));
    }

    #[test]
    fn wishart_validates_arguments() {
        let mut r = rng(3);
        assert!(wishart(0, 4, &mut r).is_err());
        assert!(wishart(8, 4, &mut r).is_err());
    }

    #[test]
    fn wishart_is_reproducible_with_same_seed() {
        let a = wishart_default(8, &mut rng(7)).unwrap();
        let b = wishart_default(8, &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn toeplitz_structure() {
        let a = toeplitz(&[1.0, 2.0, 3.0], &[1.0, -1.0, -2.0]).unwrap();
        // Constant along diagonals.
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 1)], 1.0);
        assert_eq!(a[(2, 2)], 1.0);
        assert_eq!(a[(1, 0)], 2.0);
        assert_eq!(a[(2, 1)], 2.0);
        assert_eq!(a[(0, 1)], -1.0);
        assert_eq!(a[(1, 2)], -1.0);
        assert_eq!(a[(0, 2)], -2.0);
    }

    #[test]
    fn toeplitz_validates_inputs() {
        assert!(toeplitz(&[], &[]).is_err());
        assert!(toeplitz(&[1.0, 2.0], &[1.0]).is_err());
        assert!(toeplitz(&[1.0, 2.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn random_toeplitz_is_invertible_and_dominant() {
        let mut r = rng(4);
        for n in [4usize, 16, 33] {
            let a = random_toeplitz(n, 1.2, &mut r).unwrap();
            assert!(a.is_diagonally_dominant(), "n={n}");
            assert!(crate::lu::LuFactor::new(&a).is_ok(), "n={n}");
        }
        assert!(random_toeplitz(0, 1.0, &mut r).is_err());
        assert!(random_toeplitz(4, 0.0, &mut r).is_err());
    }

    #[test]
    fn random_toeplitz_raw_is_toeplitz_structured() {
        let mut r = rng(11);
        let a = random_toeplitz_raw(6, &mut r).unwrap();
        for i in 1..6 {
            for j in 1..6 {
                assert_eq!(a[(i, j)], a[(i - 1, j - 1)], "diagonal constancy");
            }
        }
        assert!(random_toeplitz_raw(0, &mut r).is_err());
        // Entries stay in [-1, 1].
        assert!(a.max_abs() <= 1.0);
    }

    #[test]
    fn random_spd_toeplitz_is_spd_and_symmetric() {
        let mut r = rng(12);
        for n in [4usize, 16, 33] {
            let a = random_spd_toeplitz(n, 8, 0.0, &mut r).unwrap();
            assert!(a.is_symmetric(0.0), "n={n}");
            assert!(cholesky::is_spd(&a, 0.0), "n={n}");
            // Toeplitz structure.
            if n > 2 {
                assert_eq!(a[(2, 1)], a[(1, 0)]);
            }
        }
        assert!(random_spd_toeplitz(0, 4, 0.0, &mut r).is_err());
        assert!(random_spd_toeplitz(4, 0, 0.0, &mut r).is_err());
    }

    #[test]
    fn spd_toeplitz_conditioning_grows_with_n() {
        // Finite sections approach the symbol's max/min ratio from below,
        // so condition numbers are (weakly) increasing in n.
        use crate::lu::LuFactor;
        let mut r = rng(13);
        let small = random_spd_toeplitz(8, 8, 0.0, &mut r).unwrap();
        let mut r = rng(13);
        let large = random_spd_toeplitz(128, 8, 0.0, &mut r).unwrap();
        let cs = LuFactor::new(&small)
            .unwrap()
            .cond_estimate(small.norm_one());
        let cl = LuFactor::new(&large)
            .unwrap()
            .cond_estimate(large.norm_one());
        assert!(cl >= cs, "cond small {cs} vs large {cl}");
    }

    #[test]
    fn diagonally_dominant_is_dominant() {
        let mut r = rng(5);
        let a = diagonally_dominant(12, 0.5, &mut r).unwrap();
        assert!(a.is_diagonally_dominant());
        assert!(diagonally_dominant(0, 1.0, &mut r).is_err());
    }

    #[test]
    fn poisson_1d_shape() {
        let p = poisson_1d(4).unwrap();
        assert_eq!(p[(0, 0)], 2.0);
        assert_eq!(p[(0, 1)], -1.0);
        assert_eq!(p[(0, 2)], 0.0);
        assert!(cholesky::is_spd(&p, 0.0));
        assert!(poisson_1d(0).is_err());
    }

    #[test]
    fn conditioned_toeplitz_respects_the_guard() {
        use crate::lu::LuFactor;
        let mut r = rng(21);
        for n in [8usize, 32] {
            let a = random_toeplitz_conditioned(n, 1e8, &mut r).unwrap();
            let cond = LuFactor::new(&a).unwrap().cond_estimate(a.norm_one());
            assert!(cond <= 1e8, "n={n} cond={cond}");
            // Still the raw family: Toeplitz-structured, entries in [-1,1].
            assert_eq!(a[(2, 1)], a[(1, 0)]);
            assert!(a.max_abs() <= 1.0);
        }
        assert!(random_toeplitz_conditioned(0, 10.0, &mut r).is_err());
        assert!(random_toeplitz_conditioned(4, 1.0, &mut r).is_err());
        assert!(random_toeplitz_conditioned(4, f64::NAN, &mut r).is_err());
    }

    #[test]
    fn conditioned_toeplitz_is_deterministic_and_falls_back_gracefully() {
        let a = random_toeplitz_conditioned(16, 1e6, &mut rng(33)).unwrap();
        let b = random_toeplitz_conditioned(16, 1e6, &mut rng(33)).unwrap();
        assert_eq!(a, b);
        // An unreachable guard exhausts the budget but still returns the
        // best draw instead of failing.
        let c = random_toeplitz_conditioned(16, 1.0 + 1e-12, &mut rng(33)).unwrap();
        assert!(crate::lu::LuFactor::new(&c).is_ok());
    }

    #[test]
    fn poisson_2d_is_spd_with_five_point_stencil() {
        let a = poisson_2d(3, 4).unwrap();
        assert_eq!(a.shape(), (12, 12));
        assert!(a.is_symmetric(0.0));
        assert!(cholesky::is_spd(&a, 0.0));
        // Interior point (1,1) = index 1*4+1 = 5: four -1 neighbours.
        assert_eq!(a[(5, 5)], 4.0);
        assert_eq!(a[(5, 4)], -1.0); // (1,0)
        assert_eq!(a[(5, 6)], -1.0); // (1,2)
        assert_eq!(a[(5, 1)], -1.0); // (0,1)
        assert_eq!(a[(5, 9)], -1.0); // (2,1)
                                     // No wrap-around between row ends.
        assert_eq!(a[(3, 4)], 0.0);
        assert!(poisson_2d(0, 3).is_err());
        assert!(poisson_2d(3, 0).is_err());
    }

    #[test]
    fn grounded_graph_laplacians_are_spd_and_dominant() {
        let p = path_laplacian(6, 0.1).unwrap();
        assert!(p.is_symmetric(0.0));
        assert!(p.is_diagonally_dominant());
        assert!(cholesky::is_spd(&p, 0.0));
        // Interior vertex: degree 2 + ground.
        assert!((p[(2, 2)] - 2.1).abs() < 1e-15);
        assert!((p[(0, 0)] - 1.1).abs() < 1e-15);

        let c = ring_laplacian(6, 0.1).unwrap();
        assert!(cholesky::is_spd(&c, 0.0));
        assert_eq!(c[(0, 5)], -1.0, "ring wrap-around edge");
        assert!((c[(0, 0)] - 2.1).abs() < 1e-15);

        assert!(path_laplacian(0, 0.1).is_err());
        assert!(path_laplacian(4, 0.0).is_err());
        assert!(ring_laplacian(4, -1.0).is_err());
    }

    #[test]
    fn random_regular_laplacian_is_spd_with_bounded_degree() {
        let mut r = rng(22);
        let degree = 4;
        let a = random_regular_laplacian(12, degree, 0.2, &mut r).unwrap();
        assert!(a.is_symmetric(0.0));
        assert!(a.is_diagonally_dominant());
        assert!(cholesky::is_spd(&a, 0.0));
        for i in 0..12 {
            // Diagonal = ground + multigraph degree <= ground + degree
            // (self-loop skips can only lower it).
            assert!(a[(i, i)] <= 0.2 + degree as f64 + 1e-12);
            assert!(a[(i, i)] > 0.2);
        }
        assert!(random_regular_laplacian(0, 2, 0.1, &mut r).is_err());
        assert!(random_regular_laplacian(8, 3, 0.1, &mut r).is_err());
        assert!(random_regular_laplacian(8, 0, 0.1, &mut r).is_err());
        assert!(random_regular_laplacian(8, 2, 0.0, &mut r).is_err());
    }

    #[test]
    fn spd_with_condition_hits_the_target() {
        use crate::lu::LuFactor;
        let mut r = rng(23);
        for cond in [1e1, 1e3, 1e5] {
            let a = spd_with_condition(16, cond, &mut r).unwrap();
            assert!(a.is_symmetric(1e-12));
            assert!(cholesky::is_spd(&a, 0.0), "cond={cond}");
            // The 1-norm estimate brackets the 2-norm condition number
            // within a factor of n.
            let est = LuFactor::new(&a).unwrap().cond_estimate(a.norm_one());
            assert!(est >= cond / 16.0, "cond={cond} est={est}");
            assert!(est <= cond * 16.0, "cond={cond} est={est}");
        }
        assert!(spd_with_condition(0, 10.0, &mut r).is_err());
        assert!(spd_with_condition(4, 0.5, &mut r).is_err());
        // cond = 1 is the identity up to basis rotation.
        let i = spd_with_condition(5, 1.0, &mut r).unwrap();
        assert!(i.approx_eq(&Matrix::identity(5), 1e-12));
    }

    #[test]
    fn spd_with_condition_estimates_are_monotone_in_target() {
        use crate::lu::LuFactor;
        let est = |cond: f64| {
            let a = spd_with_condition(12, cond, &mut rng(24)).unwrap();
            LuFactor::new(&a).unwrap().cond_estimate(a.norm_one())
        };
        assert!(est(1e2) < est(1e4));
        assert!(est(1e4) < est(1e6));
    }

    #[test]
    fn random_vectors() {
        let mut r = rng(6);
        let v = random_vector(10, &mut r);
        assert_eq!(v.len(), 10);
        assert!(v.iter().all(|&x| (-1.0..1.0).contains(&x)));
        let u = random_unit_vector(10, &mut r);
        assert!((crate::vector::norm2(&u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_normal_distribution_adapter() {
        let mut r = rng(8);
        let samples: Vec<f64> = (0..1000).map(|_| StandardNormal.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / 1000.0;
        assert!(mean.abs() < 0.15);
    }
}

//! Dense and sparse linear-algebra substrate for the BlockAMC reproduction.
//!
//! This crate is a from-scratch numerical kernel written for the
//! [BlockAMC](https://arxiv.org/abs/2401.10042) (DATE 2024) reproduction.
//! It intentionally avoids external linear-algebra dependencies so that the
//! whole simulation stack — from LU factorisation up to the analog circuit
//! solver — is auditable in one workspace.
//!
//! # What lives here
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with block extraction and
//!   composition helpers used heavily by the BlockAMC partitioner.
//! * [`lu::LuFactor`] — partial-pivot LU with solves, inverse, determinant
//!   and a condition-number estimate. This is the "numerical solver"
//!   baseline the paper compares against.
//! * [`cholesky::CholeskyFactor`] and [`qr::QrFactor`] — factorizations for
//!   SPD systems (Wishart matrices are SPD) and least squares.
//! * [`sparse::CsrMatrix`] — compressed sparse row storage for the circuit
//!   crate's modified-nodal-analysis grids.
//! * [`iterative`] — conjugate gradient, BiCGSTAB, Jacobi/ILU(0)
//!   preconditioners and Richardson refinement (used both by the circuit
//!   grid solver and by the "AMC as a seed/preconditioner" experiments).
//! * [`generate`] — seeded generators for the paper's workloads (Wishart and
//!   Toeplitz matrices) plus auxiliary families used by examples and tests.
//! * [`metrics`] — the paper's relative-error definition (eq. 6) and the
//!   usual vector/matrix norms.
//! * [`vector`] — small helpers over `&[f64]` slices.
//!
//! # Example
//!
//! ```
//! use amc_linalg::{Matrix, lu::LuFactor};
//!
//! # fn main() -> Result<(), amc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = [1.0, 2.0];
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&b)?;
//! let r = a.matvec(&x)?;
//! assert!((r[0] - b[0]).abs() < 1e-12 && (r[1] - b[1]).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banded;
pub mod cholesky;
pub mod eigen;
mod error;
pub mod generate;
pub mod iterative;
pub mod lu;
mod matrix;
pub mod metrics;
pub mod qr;
pub mod sparse;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

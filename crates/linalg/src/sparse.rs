//! Compressed sparse row (CSR) matrices.
//!
//! The circuit crate assembles modified-nodal-analysis systems for crossbar
//! interconnect grids; those systems have ~5 entries per row, so CSR plus
//! the iterative solvers in [`crate::iterative`] keep the exact grid model
//! tractable.

use crate::{LinalgError, Matrix, Result};

/// A sparse matrix in compressed sparse row format.
///
/// # Example
///
/// ```
/// use amc_linalg::sparse::CsrMatrix;
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0), (0, 1, 1.0)])?;
/// assert_eq!(m.matvec(&[1.0, 1.0])?, vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row pointer array of length `nrows + 1`.
    indptr: Vec<usize>,
    /// Column indices, sorted within each row.
    indices: Vec<usize>,
    /// Non-zero values aligned with `indices`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate entries are summed; explicit zeros that result from
    /// summation are kept (harmless for the iterative solvers).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any index is out of
    /// bounds or the matrix is empty.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(LinalgError::invalid("matrix must be non-empty"));
        }
        for &(r, c, _) in triplets {
            if r >= nrows || c >= ncols {
                return Err(LinalgError::invalid(format!(
                    "triplet ({r},{c}) out of bounds for {nrows}x{ncols}"
                )));
            }
        }
        // Count entries per row (before dedup).
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|a| (a.0, a.1));

        let mut indptr = vec![0usize; nrows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            indices.push(c);
            values.push(v);
            indptr[r + 1] += 1;
        }
        for i in 0..nrows {
            indptr[i + 1] += indptr[i];
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        // from_triplets cannot fail here: indices are in bounds by
        // construction and the matrix is non-empty.
        CsrMatrix::from_triplets(m.rows().max(1), m.cols().max(1), &triplets)
            .expect("dense conversion produced invalid triplets")
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the stored entry at `(row, col)`, or `0.0` if absent.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.nrows {
            return 0.0;
        }
        let start = self.indptr[row];
        let end = self.indptr[row + 1];
        match self.indices[start..end].binary_search(&col) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Borrows the column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nrows()`.
    pub fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.nrows, "row index out of bounds");
        let start = self.indptr[i];
        let end = self.indptr[i + 1];
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Iterates over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            self.indices[start..end]
                .iter()
                .zip(&self.values[start..end])
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Sparse matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "csr_matvec",
                lhs: (self.nrows, self.ncols),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.nrows];
        for (r, o) in out.iter_mut().enumerate() {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            *o = self.indices[start..end]
                .iter()
                .zip(&self.values[start..end])
                .map(|(&c, &v)| v * x[c])
                .sum();
        }
        Ok(out)
    }

    /// Extracts the main diagonal (missing entries are `0.0`).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Converts to a dense [`Matrix`] (intended for tests / small systems).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.ncols, self.nrows, &triplets)
            .expect("transpose produced invalid triplets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 2, 1.0),
                (1, 1, 5.0),
                (2, 0, 2.0),
                (2, 2, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 3.0);
        assert_eq!(m.get(9, 9), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_triplets_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(0, 2, &[]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -2.0, 0.5];
        assert_eq!(m.matvec(&x).unwrap(), d.matvec(&x).unwrap());
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn diag_extraction() {
        assert_eq!(sample().diag(), vec![4.0, 5.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn iter_yields_sorted_entries() {
        let entries: Vec<_> = sample().iter().collect();
        assert_eq!(entries[0], (0, 0, 4.0));
        assert_eq!(entries.len(), 5);
        let mut sorted = entries.clone();
        sorted.sort_by_key(|a| (a.0, a.1));
        assert_eq!(entries, sorted);
    }
}

//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! Wishart matrices — one of the paper's two benchmark families — are SPD by
//! construction, so the quickest exact baseline for them is a Cholesky
//! solve. The factorization is also used by tests to verify SPD-ness of
//! generated workloads.

use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L·Lᵀ` with `L` lower triangular.
///
/// # Example
///
/// ```
/// use amc_linalg::{Matrix, cholesky::CholeskyFactor};
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = CholeskyFactor::new(&a)?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked (use [`Matrix::is_symmetric`] beforehand if unsure).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NonSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NonSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::invalid("cannot factorize an empty matrix"));
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L·y = b
        let mut x = b.to_vec();
        for i in 0..n {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                sum -= self.l[(i, j)] * xj;
            }
            x[i] = sum / self.l[(i, i)];
        }
        // Lᵀ·x = y
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l[(j, i)] * xj;
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix (always positive for SPD input).
    pub fn det(&self) -> f64 {
        let d: f64 = self.l.diag().iter().product();
        d * d
    }
}

/// Returns `true` if `a` is symmetric positive definite (checks symmetry to
/// `sym_tol`, then attempts a Cholesky factorization).
pub fn is_spd(a: &Matrix, sym_tol: f64) -> bool {
    a.is_symmetric(sym_tol) && CholeskyFactor::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn spd_sample() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_matches_known_result() {
        let chol = CholeskyFactor::new(&spd_sample()).unwrap();
        let expected =
            Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]).unwrap();
        assert!(chol.l().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn l_lt_reconstructs_a() {
        let a = spd_sample();
        let chol = CholeskyFactor::new(&a).unwrap();
        let back = chol.l().matmul(&chol.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd_sample();
        let chol = CholeskyFactor::new(&a).unwrap();
        let x_true = [1.0, 2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = chol.solve(&b).unwrap();
        assert!(vector::approx_eq(&x, &x_true, 1e-12));
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(CholeskyFactor::new(&Matrix::zeros(2, 3)).is_err());
        assert!(CholeskyFactor::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn determinant_is_product_of_squares() {
        let chol = CholeskyFactor::new(&spd_sample()).unwrap();
        // det(L) = 5*3*3 = 45, det(A) = 45^2.
        assert!((chol.det() - 2025.0).abs() < 1e-9);
    }

    #[test]
    fn spd_predicate() {
        assert!(is_spd(&spd_sample(), 0.0));
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(!is_spd(&asym, 1e-12));
    }
}

//! Accuracy metrics, including the paper's relative-error definition.

use crate::vector;

/// The paper's relative error (eq. 6):
///
/// ```text
/// ε_r = | Σ_i sqrt((x_i − x̂_i)²) / Σ_i sqrt(x_i²) |
/// ```
///
/// Since `sqrt(v²) = |v|`, this is the ratio of the 1-norm of the error to
/// the 1-norm of the ideal solution. `x_ideal` is the numerical-solver
/// reference `x_i`; `x_actual` is the analog result `x̂_i`.
///
/// Returns `0.0` when both vectors are empty and `f64::INFINITY` when the
/// reference is all-zero but the actual is not (relative error is undefined
/// there; infinity preserves "worse is bigger" ordering).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
///
/// # Example
///
/// ```
/// use amc_linalg::metrics::relative_error;
///
/// let ideal = [1.0, -1.0];
/// let off_by_ten_percent = [1.1, -0.9];
/// let err = relative_error(&ideal, &off_by_ten_percent);
/// assert!((err - 0.1).abs() < 1e-12);
/// ```
pub fn relative_error(x_ideal: &[f64], x_actual: &[f64]) -> f64 {
    assert_eq!(
        x_ideal.len(),
        x_actual.len(),
        "relative_error: length mismatch"
    );
    if x_ideal.is_empty() {
        return 0.0;
    }
    let err: f64 = x_ideal
        .iter()
        .zip(x_actual)
        .map(|(&a, &b)| (a - b).abs())
        .sum();
    let denom: f64 = x_ideal.iter().map(|v| v.abs()).sum();
    if denom == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        err / denom
    }
}

/// Relative error in the Euclidean norm, `‖x − x̂‖₂ / ‖x‖₂`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn relative_error_l2(x_ideal: &[f64], x_actual: &[f64]) -> f64 {
    assert_eq!(
        x_ideal.len(),
        x_actual.len(),
        "relative_error_l2: length mismatch"
    );
    if x_ideal.is_empty() {
        return 0.0;
    }
    let diff = vector::sub(x_ideal, x_actual);
    let denom = vector::norm2(x_ideal);
    if denom == 0.0 {
        if vector::norm2(&diff) == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        vector::norm2(&diff) / denom
    }
}

/// Largest absolute element-wise error, `max_i |x_i − x̂_i|`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn max_abs_error(x_ideal: &[f64], x_actual: &[f64]) -> f64 {
    assert_eq!(
        x_ideal.len(),
        x_actual.len(),
        "max_abs_error: length mismatch"
    );
    x_ideal
        .iter()
        .zip(x_actual)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0_f64, f64::max)
}

/// Summary statistics over a set of trial errors (used by the Monte-Carlo
/// sweeps: the paper plots the mean of 40 random trials per size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of samples aggregated.
    pub count: usize,
    /// Mean error.
    pub mean: f64,
    /// Median error — the robust statistic to read when a family (like
    /// random Toeplitz) occasionally produces catastrophically conditioned
    /// draws that dominate the mean.
    pub median: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
    /// Minimum error.
    pub min: f64,
    /// Maximum error.
    pub max: f64,
}

impl ErrorStats {
    /// Aggregates a slice of error samples.
    ///
    /// Returns a zeroed struct for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return ErrorStats {
                count: 0,
                mean: 0.0,
                median: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        ErrorStats {
            count,
            mean,
            median,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_relative_error_is_l1_ratio() {
        let ideal = [2.0, -2.0];
        let actual = [2.5, -1.5];
        // |0.5| + |0.5| over |2| + |2| = 0.25
        assert!((relative_error(&ideal, &actual) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn zero_cases() {
        assert_eq!(relative_error(&[], &[]), 0.0);
        assert_eq!(relative_error(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_error(&[0.0], &[1.0]), f64::INFINITY);
        assert_eq!(relative_error_l2(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_error_l2(&[0.0], &[1.0]), f64::INFINITY);
    }

    #[test]
    fn identical_vectors_have_zero_error() {
        let v = [1.0, 2.0, -3.0];
        assert_eq!(relative_error(&v, &v), 0.0);
        assert_eq!(relative_error_l2(&v, &v), 0.0);
        assert_eq!(max_abs_error(&v, &v), 0.0);
    }

    #[test]
    fn l2_error_matches_hand_computation() {
        let ideal = [3.0, 4.0]; // norm 5
        let actual = [3.0, 3.0]; // diff norm 1
        assert!((relative_error_l2(&ideal, &actual) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn max_abs_error_picks_largest() {
        assert_eq!(max_abs_error(&[1.0, 5.0], &[1.1, 4.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = relative_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn stats_aggregate() {
        let s = ErrorStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-15);
        assert_eq!(s.median, 2.0);
        assert!((s.std_dev - 1.0).abs() < 1e-15);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);

        // Even count: median averages the middle pair; an outlier skews
        // the mean but not the median.
        let s = ErrorStats::from_samples(&[0.1, 0.2, 0.3, 100.0]);
        assert!((s.median - 0.25).abs() < 1e-15);
        assert!(s.mean > 20.0);

        let empty = ErrorStats::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);

        let single = ErrorStats::from_samples(&[0.5]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.min, 0.5);
    }
}

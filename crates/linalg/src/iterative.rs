//! Iterative solvers and preconditioners.
//!
//! Two distinct consumers exist in this workspace:
//!
//! 1. The exact interconnect grid model in `amc-circuit` solves large sparse
//!    SPD systems (resistive-network Laplacians) with [`conjugate_gradient`]
//!    and nonsymmetric MNA systems with [`bicgstab`].
//! 2. The "AMC as seed/preconditioner" experiments (paper §IV: AMC
//!    "provide\[s\] a seed solution … to speed up the convergence of iterative
//!    algorithms") use [`richardson_refine`] and the CG iteration counter to
//!    quantify how many digital iterations an analog seed saves.

use crate::sparse::CsrMatrix;
use crate::vector::{axpy, dot, norm2};
use crate::{LinalgError, Result};

/// Outcome of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationReport {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
}

/// A (left) preconditioner: given `r`, returns `M⁻¹·r`.
pub trait Preconditioner {
    /// Applies the preconditioner to a residual vector.
    fn apply(&self, r: &[f64]) -> Vec<f64>;
}

/// Identity preconditioner (no-op).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }
}

/// Jacobi (diagonal) preconditioner.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds the preconditioner from the matrix diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any diagonal entry is
    /// zero (the preconditioner would be singular).
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        let diag = a.diag();
        if diag.contains(&0.0) {
            return Err(LinalgError::invalid(
                "jacobi preconditioner requires a non-zero diagonal",
            ));
        }
        Ok(JacobiPrecond {
            inv_diag: diag.into_iter().map(|d| 1.0 / d).collect(),
        })
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter()
            .zip(&self.inv_diag)
            .map(|(&ri, &di)| ri * di)
            .collect()
    }
}

/// Incomplete LU factorization with zero fill-in, ILU(0).
///
/// Robust general-purpose preconditioner for the nonsymmetric MNA systems
/// produced by the exact interconnect model.
#[derive(Debug, Clone)]
pub struct Ilu0Precond {
    /// The factorized matrix in CSR layout (same sparsity as the input).
    factors: CsrMatrix,
}

impl Ilu0Precond {
    /// Computes the ILU(0) factorization of a square CSR matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NonSquare`] if the matrix is not square.
    /// * [`LinalgError::Singular`] if a pivot vanishes.
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::NonSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        // Work on a dense-row representation of each sparse row for clarity;
        // rows stay sparse (we only touch stored positions).
        let mut rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|r| {
                let (cols, vals) = a.row_entries(r);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        // This is O(n * nnz_row^2); fine for grid matrices.
        for i in 0..n {
            let row_i = rows[i].clone();
            let mut new_row = row_i.clone();
            for (pos, &(k, _)) in row_i.iter().enumerate() {
                if k >= i {
                    break;
                }
                // a_ik = a_ik / a_kk
                let akk = rows[k]
                    .iter()
                    .find(|&&(c, _)| c == k)
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                if akk == 0.0 {
                    return Err(LinalgError::Singular { pivot: k });
                }
                let aik = new_row[pos].1 / akk;
                new_row[pos].1 = aik;
                // a_ij -= a_ik * a_kj for j > k present in row i's pattern.
                for entry in new_row.iter_mut() {
                    let (j, ref mut v) = *entry;
                    if j > k {
                        if let Some(&(_, akj)) = rows[k].iter().find(|&&(c, _)| c == j) {
                            *v -= aik * akj;
                        }
                    }
                }
            }
            rows[i] = new_row;
        }
        let triplets: Vec<(usize, usize, f64)> = rows
            .into_iter()
            .enumerate()
            .flat_map(|(r, row)| row.into_iter().map(move |(c, v)| (r, c, v)))
            .collect();
        Ok(Ilu0Precond {
            factors: CsrMatrix::from_triplets(n, n, &triplets)?,
        })
    }
}

impl Preconditioner for Ilu0Precond {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        let n = self.factors.nrows();
        // Forward solve L·y = r (unit diagonal L below the diagonal).
        let mut y = r.to_vec();
        for i in 0..n {
            let (cols, vals) = self.factors.row_entries(i);
            let mut sum = y[i];
            for (&col, &v) in cols.iter().zip(vals) {
                if col >= i {
                    break;
                }
                sum -= v * y[col];
            }
            y[i] = sum;
        }
        // Backward solve U·x = y.
        let mut x = y;
        for i in (0..n).rev() {
            let (cols, vals) = self.factors.row_entries(i);
            let mut sum = x[i];
            let mut diag = 1.0;
            for (&col, &v) in cols.iter().zip(vals) {
                if col > i {
                    sum -= v * x[col];
                } else if col == i {
                    diag = v;
                }
            }
            x[i] = sum / diag;
        }
        x
    }
}

/// Options controlling an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterOptions {
    /// Maximum iterations before reporting failure.
    pub max_iterations: usize,
    /// Relative residual tolerance `‖r‖ / ‖b‖`.
    pub tolerance: f64,
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions {
            max_iterations: 10_000,
            tolerance: 1e-10,
        }
    }
}

fn check_system(a: &CsrMatrix, b: &[f64], x0: Option<&[f64]>) -> Result<()> {
    if a.nrows() != a.ncols() {
        return Err(LinalgError::NonSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if b.len() != a.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "iterative_solve",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.len(), 1),
        });
    }
    if let Some(x0) = x0 {
        if x0.len() != b.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "iterative_solve_x0",
                lhs: (b.len(), 1),
                rhs: (x0.len(), 1),
            });
        }
    }
    Ok(())
}

/// Preconditioned conjugate gradient for symmetric positive-definite systems.
///
/// # Errors
///
/// * Shape errors for mismatched inputs.
/// * [`LinalgError::ConvergenceFailure`] if `opts.max_iterations` is reached.
///
/// # Example
///
/// ```
/// use amc_linalg::sparse::CsrMatrix;
/// use amc_linalg::iterative::{conjugate_gradient, IdentityPrecond, IterOptions};
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (1, 1, 2.0)])?;
/// let report = conjugate_gradient(&a, &[4.0, 2.0], None, &IdentityPrecond, IterOptions::default())?;
/// assert!((report.x[0] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn conjugate_gradient<P: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    precond: &P,
    opts: IterOptions,
) -> Result<IterationReport> {
    check_system(a, b, x0)?;
    let n = b.len();
    let mut x = x0.map(<[f64]>::to_vec).unwrap_or_else(|| vec![0.0; n]);
    let ax = a.matvec(&x)?;
    let mut r = crate::vector::sub(b, &ax);
    let norm_b = norm2(b).max(f64::MIN_POSITIVE);
    if norm2(&r) / norm_b <= opts.tolerance {
        let residual = norm2(&r);
        return Ok(IterationReport {
            x,
            iterations: 0,
            residual,
        });
    }
    let mut z = precond.apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    for it in 1..=opts.max_iterations {
        let ap = a.matvec(&p)?;
        let pap = dot(&p, &ap);
        if pap == 0.0 {
            return Err(LinalgError::ConvergenceFailure {
                iterations: it,
                residual: norm2(&r),
                tolerance: opts.tolerance,
            });
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let res = norm2(&r);
        if res / norm_b <= opts.tolerance {
            return Ok(IterationReport {
                x,
                iterations: it,
                residual: res,
            });
        }
        z = precond.apply(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    Err(LinalgError::ConvergenceFailure {
        iterations: opts.max_iterations,
        residual: norm2(&r),
        tolerance: opts.tolerance,
    })
}

/// Preconditioned BiCGSTAB for general (nonsymmetric) systems.
///
/// # Errors
///
/// * Shape errors for mismatched inputs.
/// * [`LinalgError::ConvergenceFailure`] on stagnation/breakdown or if
///   `opts.max_iterations` is reached.
pub fn bicgstab<P: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    precond: &P,
    opts: IterOptions,
) -> Result<IterationReport> {
    check_system(a, b, x0)?;
    let n = b.len();
    let mut x = x0.map(<[f64]>::to_vec).unwrap_or_else(|| vec![0.0; n]);
    let ax = a.matvec(&x)?;
    let mut r = crate::vector::sub(b, &ax);
    let norm_b = norm2(b).max(f64::MIN_POSITIVE);
    if norm2(&r) / norm_b <= opts.tolerance {
        let residual = norm2(&r);
        return Ok(IterationReport {
            x,
            iterations: 0,
            residual,
        });
    }
    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    for it in 1..=opts.max_iterations {
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < f64::MIN_POSITIVE {
            return Err(LinalgError::ConvergenceFailure {
                iterations: it,
                residual: norm2(&r),
                tolerance: opts.tolerance,
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let p_hat = precond.apply(&p);
        v = a.matvec(&p_hat)?;
        let denom = dot(&r_hat, &v);
        if denom.abs() < f64::MIN_POSITIVE {
            return Err(LinalgError::ConvergenceFailure {
                iterations: it,
                residual: norm2(&r),
                tolerance: opts.tolerance,
            });
        }
        alpha = rho / denom;
        let mut s = r.clone();
        axpy(-alpha, &v, &mut s);
        if norm2(&s) / norm_b <= opts.tolerance {
            axpy(alpha, &p_hat, &mut x);
            let residual = norm2(&s);
            return Ok(IterationReport {
                x,
                iterations: it,
                residual,
            });
        }
        let s_hat = precond.apply(&s);
        let t = a.matvec(&s_hat)?;
        let tt = dot(&t, &t);
        if tt == 0.0 {
            return Err(LinalgError::ConvergenceFailure {
                iterations: it,
                residual: norm2(&s),
                tolerance: opts.tolerance,
            });
        }
        omega = dot(&t, &s) / tt;
        axpy(alpha, &p_hat, &mut x);
        axpy(omega, &s_hat, &mut x);
        r = s;
        axpy(-omega, &t, &mut r);
        let res = norm2(&r);
        if res / norm_b <= opts.tolerance {
            return Ok(IterationReport {
                x,
                iterations: it,
                residual: res,
            });
        }
        if omega == 0.0 {
            return Err(LinalgError::ConvergenceFailure {
                iterations: it,
                residual: res,
                tolerance: opts.tolerance,
            });
        }
    }
    Err(LinalgError::ConvergenceFailure {
        iterations: opts.max_iterations,
        residual: norm2(&r),
        tolerance: opts.tolerance,
    })
}

/// Richardson iterative refinement: repeatedly solves the residual equation
/// with the supplied *approximate* solve operator and updates the iterate.
///
/// `approx_solve` plays the role of the analog AMC engine: it receives a
/// residual and returns an approximate correction. This mirrors the paper's
/// positioning of AMC as a preconditioner for digital refinement.
///
/// Returns the refined solution and the number of refinement steps used.
///
/// # Errors
///
/// * Shape errors for mismatched inputs.
/// * [`LinalgError::ConvergenceFailure`] if `max_steps` is reached without
///   meeting `tolerance` (relative residual).
pub fn richardson_refine(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    mut approx_solve: impl FnMut(&[f64]) -> Vec<f64>,
    tolerance: f64,
    max_steps: usize,
) -> Result<IterationReport> {
    check_system(a, b, Some(x0))?;
    let mut x = x0.to_vec();
    let norm_b = norm2(b).max(f64::MIN_POSITIVE);
    for step in 0..=max_steps {
        let ax = a.matvec(&x)?;
        let r = crate::vector::sub(b, &ax);
        let res = norm2(&r);
        if res / norm_b <= tolerance {
            return Ok(IterationReport {
                x,
                iterations: step,
                residual: res,
            });
        }
        if step == max_steps {
            return Err(LinalgError::ConvergenceFailure {
                iterations: max_steps,
                residual: res,
                tolerance,
            });
        }
        let dx = approx_solve(&r);
        axpy(1.0, &dx, &mut x);
    }
    unreachable!("loop returns before exhausting range");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    /// 1-D Poisson (tridiagonal SPD) matrix of size n.
    fn poisson(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn cg_solves_poisson() {
        let n = 50;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = a.matvec(&x_true).unwrap();
        let rep =
            conjugate_gradient(&a, &b, None, &IdentityPrecond, IterOptions::default()).unwrap();
        assert!(vector::approx_eq(&rep.x, &x_true, 1e-7));
        assert!(rep.iterations <= n + 1);
    }

    #[test]
    fn jacobi_precond_reduces_iterations_on_scaled_system() {
        // Badly scaled diagonal: plain CG struggles, Jacobi fixes scaling.
        let n = 40;
        let mut t = Vec::new();
        for i in 0..n {
            let s = 10f64.powi((i % 5) as i32);
            t.push((i, i, 2.0 * s));
            if i > 0 {
                t.push((i, i - 1, -0.5));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let b = vec![1.0; n];
        let plain =
            conjugate_gradient(&a, &b, None, &IdentityPrecond, IterOptions::default()).unwrap();
        let jacobi = JacobiPrecond::new(&a).unwrap();
        let pre = conjugate_gradient(&a, &b, None, &jacobi, IterOptions::default()).unwrap();
        assert!(pre.iterations <= plain.iterations);
    }

    #[test]
    fn jacobi_rejects_zero_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(JacobiPrecond::new(&a).is_err());
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        let n = 30;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -2.0)); // asymmetry
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let rep = bicgstab(&a, &b, None, &IdentityPrecond, IterOptions::default()).unwrap();
        assert!(vector::approx_eq(&rep.x, &x_true, 1e-6));
    }

    #[test]
    fn ilu0_precond_accelerates_bicgstab() {
        let n = 60;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -2.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let b = vec![1.0; n];
        let plain = bicgstab(&a, &b, None, &IdentityPrecond, IterOptions::default()).unwrap();
        let ilu = Ilu0Precond::new(&a).unwrap();
        let pre = bicgstab(&a, &b, None, &ilu, IterOptions::default()).unwrap();
        assert!(pre.iterations <= plain.iterations);
        // Both converge to the same solution.
        assert!(vector::approx_eq(&pre.x, &plain.x, 1e-6));
    }

    #[test]
    fn ilu0_exact_for_tridiagonal() {
        // ILU(0) of a tridiagonal matrix is the exact LU: the preconditioner
        // solves the system in a single application.
        let a = poisson(10);
        let ilu = Ilu0Precond::new(&a).unwrap();
        let x_true: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = ilu.apply(&b);
        assert!(vector::approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn warm_start_reduces_cg_iterations() {
        // Well-conditioned system (diag 4, off-diag -1): CG converges at its
        // asymptotic rate well before the exact-termination bound of n
        // iterations, so a good initial guess saves iterations. (On the
        // Poisson matrix both cold and warm start hit the n-iteration exact
        // termination, which is why that matrix is not used here.)
        let n = 80;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 / 9.0).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let cold =
            conjugate_gradient(&a, &b, None, &IdentityPrecond, IterOptions::default()).unwrap();
        // Seed close to the answer, perturbed non-uniformly so the initial
        // residual is not parallel to b — like a noisy AMC seed solution.
        let mut seed: Vec<f64> = x_true.iter().map(|v| v * (1.0 + 1e-6)).collect();
        seed[0] += 1e-6;
        let warm = conjugate_gradient(
            &a,
            &b,
            Some(&seed),
            &IdentityPrecond,
            IterOptions::default(),
        )
        .unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn richardson_refines_with_approximate_solver() {
        let n = 20;
        let a = poisson(n);
        let dense = a.to_dense();
        let lu = crate::lu::LuFactor::new(&dense).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let b = a.matvec(&x_true).unwrap();
        // Approximate solver: exact solve + 5% multiplicative error.
        let rep = richardson_refine(
            &a,
            &b,
            &vec![0.0; n],
            |r| lu.solve(r).unwrap().iter().map(|v| v * 0.95).collect(),
            1e-10,
            100,
        )
        .unwrap();
        assert!(vector::approx_eq(&rep.x, &x_true, 1e-8));
        assert!(rep.iterations > 1); // needed refinement
    }

    #[test]
    fn richardson_fails_cleanly_when_not_converging() {
        let a = poisson(5);
        let b = vec![1.0; 5];
        let err = richardson_refine(&a, &b, &[0.0; 5], |_| vec![0.0; 5], 1e-12, 3);
        assert!(matches!(err, Err(LinalgError::ConvergenceFailure { .. })));
    }

    #[test]
    fn solvers_validate_shapes() {
        let a = poisson(4);
        let badb = vec![1.0; 3];
        assert!(
            conjugate_gradient(&a, &badb, None, &IdentityPrecond, IterOptions::default()).is_err()
        );
        assert!(bicgstab(&a, &badb, None, &IdentityPrecond, IterOptions::default()).is_err());
        let b = vec![1.0; 4];
        assert!(conjugate_gradient(
            &a,
            &b,
            Some(&[0.0; 2]),
            &IdentityPrecond,
            IterOptions::default()
        )
        .is_err());
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let a = poisson(6);
        let rep = conjugate_gradient(
            &a,
            &[0.0; 6],
            None,
            &IdentityPrecond,
            IterOptions::default(),
        )
        .unwrap();
        assert_eq!(rep.iterations, 0);
        assert!(rep.x.iter().all(|&v| v == 0.0));
    }
}

//! Householder QR factorization and least-squares solves.
//!
//! QR is used by the workspace for least-squares fitting in the examples
//! (AMC has been proposed for one-step regression, Sun et al. 2020) and as
//! an independent cross-check of LU solutions in tests.

use crate::{LinalgError, Matrix, Result};

/// Householder QR factorization `A = Q·R` of an `m x n` matrix with
/// `m >= n`.
///
/// The factor is stored compactly: the Householder vectors live below the
/// diagonal of the working matrix and `R` on and above it.
///
/// # Example
///
/// ```
/// use amc_linalg::{Matrix, qr::QrFactor};
///
/// # fn main() -> Result<(), amc_linalg::LinalgError> {
/// // Overdetermined system: fit y = c0 + c1*t through three points.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let y = [1.0, 2.0, 3.0];
/// let c = QrFactor::new(&a)?.solve_least_squares(&y)?;
/// assert!((c[0] - 1.0).abs() < 1e-12 && (c[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Packed Householder vectors + R.
    qr: Matrix,
    /// Scalar factors of the Householder reflectors.
    betas: Vec<f64>,
}

impl QrFactor {
    /// Factorizes an `m x n` matrix with `m >= n`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `m < n` or the matrix is empty.
    /// * [`LinalgError::Singular`] if a column is (numerically) dependent.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::invalid("cannot factorize an empty matrix"));
        }
        if m < n {
            return Err(LinalgError::invalid(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm = 0.0_f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, qr[k+1.., k]]; beta = -1/(alpha*v0)
            betas[k] = -1.0 / (alpha * v0);
            qr[(k, k)] = v0;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let s = betas[k] * dot;
                for i in k..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            // Store alpha (the R diagonal) separately from v0: we stash it
            // after applying reflectors by overwriting on extraction. Keep
            // alpha in a shadow position: reuse the fact that R(k,k)=alpha.
            // We'll remember alpha by storing v0 in qr and alpha in betas'
            // companion vector; simpler: store alpha now, v in strict lower.
            // Rescale v so that v0 = 1 implicitly: divide rows k+1.. by v0.
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            // betas currently -1/(alpha v0); with v normalized (v0=1) the
            // effective beta becomes -v0/alpha.
            betas[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
        }
        Ok(QrFactor { qr, betas })
    }

    /// Shape `(m, n)` of the factorized matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// Extracts the upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let (_, n) = self.qr.shape();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.qr.shape();
        let mut y = b.to_vec();
        for k in 0..n {
            // v = [1, qr[k+1.., k]]
            let mut dot = y[k];
            for (i, &yi) in y.iter().enumerate().take(m).skip(k + 1) {
                dot += self.qr[(i, k)] * yi;
            }
            let s = self.betas[k] * dot;
            y[k] -= s;
            for (i, yi) in y.iter_mut().enumerate().take(m).skip(k + 1) {
                *yi -= s * self.qr[(i, k)];
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// For square `A` this is the exact solution of `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != m`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        // Back substitution on R x = y[..n].
        let mut x = y[..n].to_vec();
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.qr[(i, j)] * xj;
            }
            x[i] = sum / self.qr[(i, i)];
        }
        Ok(x)
    }

    /// Residual norm `‖A·x − b‖₂` of the least-squares solution, available
    /// without recomputing `A·x` (it is the norm of the trailing part of
    /// `Qᵀ·b`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != m`.
    pub fn residual_norm(&self, b: &[f64]) -> Result<f64> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_residual",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        Ok(crate::vector::norm2(&y[n..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn square_solve_matches_lu() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = [5.0, 10.0];
        let x_qr = QrFactor::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x_qr, &x_lu, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r[(1, 0)], 0.0);
        // |R| diagonal magnitudes equal the singular-value-related column
        // norms of the orthogonalized columns; check |det R| = sqrt(det AᵀA).
        let mut ata = Matrix::zeros(1, 1);
        a.transpose().matmul_into(&a, &mut ata).unwrap();
        let det_ata = ata[(0, 0)] * ata[(1, 1)] - ata[(0, 1)] * ata[(1, 0)];
        let det_r = r[(0, 0)] * r[(1, 1)];
        assert!((det_r * det_r - det_ata).abs() < 1e-9);
    }

    #[test]
    fn least_squares_fits_line() {
        // Points (0,1), (1,3), (2,5), (3,7.2): near-perfect line 1 + 2t.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let y = [1.0, 3.0, 5.0, 7.2];
        let qr = QrFactor::new(&a).unwrap();
        let c = qr.solve_least_squares(&y).unwrap();
        assert!((c[0] - 0.97).abs() < 0.05);
        assert!((c[1] - 2.06).abs() < 0.05);
        // Residual norm consistent with direct computation.
        let pred = a.matvec(&c).unwrap();
        let direct = vector::norm2(&vector::sub(&y, &pred));
        assert!((qr.residual_norm(&y).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(QrFactor::new(&Matrix::zeros(2, 3)).is_err());
        assert!(QrFactor::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn detects_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        // Second column is 2x the first: breakdown at k=1.
        let r = QrFactor::new(&a);
        // Householder may still produce a tiny pivot instead of exact zero;
        // accept either an error or a huge solution. Solve and check.
        if let Ok(qr) = r {
            let x = qr.solve_least_squares(&[1.0, 2.0, 3.0]);
            if let Ok(x) = x {
                assert!(x.iter().any(|v| !v.is_finite() || v.abs() > 1e12));
            }
        }
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let a = Matrix::identity(3);
        let qr = QrFactor::new(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
        assert!(qr.residual_norm(&[1.0]).is_err());
    }
}

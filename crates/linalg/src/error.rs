use std::fmt;

/// Error type for all fallible operations in `amc-linalg`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// An operation that requires a square matrix received a rectangular one.
    NonSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorization failed because the matrix is singular (or numerically
    /// singular) at the given pivot index.
    Singular {
        /// Pivot index where breakdown was detected.
        pivot: usize,
    },
    /// Cholesky failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the first non-positive diagonal pivot.
        index: usize,
    },
    /// An iterative solver did not reach the requested tolerance.
    ConvergenceFailure {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// A caller-supplied argument is invalid (empty matrix, zero tolerance…).
    InvalidArgument {
        /// Explanation of what was wrong.
        message: String,
    },
}

impl LinalgError {
    /// Shorthand constructor for [`LinalgError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        LinalgError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NonSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (pivot {index})")
            }
            LinalgError::ConvergenceFailure {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iterative solver failed to converge after {iterations} iterations \
                 (residual {residual:.3e}, tolerance {tolerance:.3e})"
            ),
            LinalgError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::NonSquare { rows: 3, cols: 4 };
        assert_eq!(e.to_string(), "matrix must be square, got 3x4");

        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));

        let e = LinalgError::Singular { pivot: 7 };
        assert!(e.to_string().contains('7'));

        let e = LinalgError::invalid("n must be > 0");
        assert!(e.to_string().contains("n must be > 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn convergence_failure_reports_numbers() {
        let e = LinalgError::ConvergenceFailure {
            iterations: 100,
            residual: 1e-3,
            tolerance: 1e-9,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("1.000e-3"));
    }
}

//! Property-based tests of the linear-algebra invariants.

use amc_linalg::sparse::CsrMatrix;
use amc_linalg::{cholesky, eigen, generate, lu, metrics, qr, vector, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dd_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..=9, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate::diagonally_dominant(n, 1.0, &mut rng).unwrap()
    })
}

fn spd_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..=9, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate::wishart_default(n, &mut rng).unwrap()
    })
}

fn rhs_for(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
    generate::random_vector(n, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_inverse_is_two_sided(a in dd_matrix()) {
        let inv = lu::inverse(&a).unwrap();
        let n = a.rows();
        let tol = 1e-8 * a.max_abs().max(1.0);
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&Matrix::identity(n), tol));
        prop_assert!(inv.matmul(&a).unwrap().approx_eq(&Matrix::identity(n), tol));
    }

    #[test]
    fn determinant_is_multiplicative(a in dd_matrix(), b_seed in any::<u64>()) {
        let n = a.rows();
        let mut rng = ChaCha8Rng::seed_from_u64(b_seed);
        let b = generate::diagonally_dominant(n, 1.0, &mut rng).unwrap();
        let det_a = lu::LuFactor::new(&a).unwrap().det();
        let det_b = lu::LuFactor::new(&b).unwrap().det();
        let det_ab = lu::LuFactor::new(&a.matmul(&b).unwrap()).unwrap().det();
        let scale = det_a.abs().max(det_b.abs()).max(1.0);
        prop_assert!(
            (det_ab - det_a * det_b).abs() <= 1e-6 * scale * scale,
            "det(AB)={} det(A)det(B)={}", det_ab, det_a * det_b
        );
    }

    #[test]
    fn cholesky_and_lu_agree_on_spd(a in spd_matrix()) {
        let b = rhs_for(a.rows(), 1);
        let x_lu = lu::solve(&a, &b).unwrap();
        let x_ch = cholesky::CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
        prop_assert!(vector::approx_eq(&x_lu, &x_ch, 1e-6 * vector::norm_inf(&x_lu).max(1.0)));
    }

    #[test]
    fn qr_solves_square_systems(a in dd_matrix()) {
        let b = rhs_for(a.rows(), 2);
        let x_qr = qr::QrFactor::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let x_lu = lu::solve(&a, &b).unwrap();
        prop_assert!(vector::approx_eq(&x_qr, &x_lu, 1e-6 * vector::norm_inf(&x_lu).max(1.0)));
    }

    #[test]
    fn eigenvalues_sum_to_trace(a in spd_matrix()) {
        let e = eigen::symmetric_eigen(&a).unwrap();
        let trace: f64 = a.diag().iter().sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
        // SPD: all eigenvalues positive.
        prop_assert!(e.values.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn csr_matvec_equals_dense(a in dd_matrix()) {
        let s = CsrMatrix::from_dense(&a);
        let x = rhs_for(a.cols(), 3);
        prop_assert_eq!(s.matvec(&x).unwrap(), a.matvec(&x).unwrap());
        prop_assert_eq!(s.to_dense(), a);
    }

    #[test]
    fn cg_matches_lu_on_spd(a in spd_matrix()) {
        use amc_linalg::iterative::{conjugate_gradient, IdentityPrecond, IterOptions};
        let b = rhs_for(a.rows(), 4);
        let s = CsrMatrix::from_dense(&a);
        let opts = IterOptions { max_iterations: 10_000, tolerance: 1e-12 };
        let rep = conjugate_gradient(&s, &b, None, &IdentityPrecond, opts).unwrap();
        let x_lu = lu::solve(&a, &b).unwrap();
        prop_assert!(vector::approx_eq(&rep.x, &x_lu, 1e-5 * vector::norm_inf(&x_lu).max(1.0)));
    }

    #[test]
    fn paper_error_metric_is_scale_invariant(
        v in proptest::collection::vec(-100.0f64..100.0, 2..12),
        scale in 0.01f64..100.0,
    ) {
        let perturbed: Vec<f64> = v.iter().map(|x| x + 0.1).collect();
        let e1 = metrics::relative_error(&v, &perturbed);
        let vs: Vec<f64> = v.iter().map(|x| x * scale).collect();
        let ps: Vec<f64> = perturbed.iter().map(|x| x * scale).collect();
        let e2 = metrics::relative_error(&vs, &ps);
        if e1.is_finite() && e2.is_finite() {
            prop_assert!((e1 - e2).abs() < 1e-9 * e1.max(1.0));
        }
    }

    #[test]
    fn toeplitz_families_have_constant_diagonals(n in 2usize..32, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for a in [
            generate::random_toeplitz(n, 1.2, &mut rng).unwrap(),
            generate::random_toeplitz_raw(n, &mut rng).unwrap(),
            generate::random_spd_toeplitz(n, 8, 0.02, &mut rng).unwrap(),
        ] {
            for i in 1..n {
                for j in 1..n {
                    prop_assert_eq!(a[(i, j)], a[(i - 1, j - 1)]);
                }
            }
        }
    }

    #[test]
    fn wishart_is_always_spd(n in 2usize..24, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::wishart_default(n, &mut rng).unwrap();
        prop_assert!(a.is_symmetric(1e-12 * a.max_abs()));
        prop_assert!(cholesky::CholeskyFactor::new(&a).is_ok());
    }

    #[test]
    fn norm_inequalities_hold(a in dd_matrix()) {
        // ‖A‖_F <= sqrt(n)·‖A‖_2-ish chain checks via comparable norms:
        // max_abs <= norm_inf and max_abs <= norm_one, frobenius >= max_abs.
        prop_assert!(a.max_abs() <= a.norm_inf() + 1e-15);
        prop_assert!(a.max_abs() <= a.norm_one() + 1e-15);
        prop_assert!(a.frobenius_norm() >= a.max_abs() - 1e-15);
    }
}

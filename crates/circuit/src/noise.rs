//! Thermal (Johnson–Nyquist) noise analysis of the AMC circuits.
//!
//! Device variation and wire resistance are *static* non-idealities; the
//! fundamental *dynamic* accuracy floor of an analog solver is thermal
//! noise. Every conductance `g` at temperature `T` contributes a noise
//! current with power spectral density `4·k_B·T·g`; the TIA/INV feedback
//! integrates it over the circuit's noise bandwidth. This module
//! estimates the resulting output noise and the signal-to-noise ratio of
//! an AMC operation — the quantity that ultimately bounds how many
//! effective bits a one-step analog solve can deliver.

use amc_linalg::{lu::LuFactor, Matrix};

use crate::opamp::OpAmpSpec;
use crate::{CircuitError, Result};

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380649e-23;

/// Output noise estimate of one AMC operation.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseEstimate {
    /// RMS output noise voltage per output, volts.
    pub output_noise_rms_v: Vec<f64>,
    /// Noise bandwidth used, Hz.
    pub bandwidth_hz: f64,
    /// Temperature used, kelvin.
    pub temperature_k: f64,
}

impl NoiseEstimate {
    /// Signal-to-noise ratio (power ratio) for a given output signal
    /// vector, using the worst (noisiest relative to its signal) output.
    ///
    /// Returns `f64::INFINITY` if noise is zero.
    pub fn worst_snr(&self, signal_v: &[f64]) -> f64 {
        let mut worst = f64::INFINITY;
        for (s, n) in signal_v.iter().zip(&self.output_noise_rms_v) {
            if *n > 0.0 {
                worst = worst.min((s / n).powi(2));
            }
        }
        worst
    }

    /// Effective number of bits of the worst output:
    /// `ENOB = (10·log10(SNR) − 1.76) / 6.02`.
    pub fn worst_enob(&self, signal_v: &[f64]) -> f64 {
        let snr = self.worst_snr(signal_v);
        if snr.is_infinite() {
            f64::INFINITY
        } else {
            (10.0 * snr.log10() - 1.76) / 6.02
        }
    }
}

/// Thermal output noise of the **MVM** circuit.
///
/// Each TIA output integrates the noise of its row conductances and its
/// feedback resistor: `v_n,i² = 4·k_B·T·B · (Σ_j g_ij + g₀) / g₀²`
/// (current noise divided by the feedback transconductance).
///
/// The noise bandwidth `B` defaults to the op-amp's closed-loop
/// bandwidth `GBWP / (1 + Ŝ_i)` times the single-pole factor π/2.
///
/// # Errors
///
/// * [`CircuitError::InvalidConfig`] for non-positive `g0` / temperature
///   or an invalid op-amp spec.
pub fn mvm_thermal_noise(
    g_pos: &Matrix,
    g_neg: &Matrix,
    g0: f64,
    opamp: &OpAmpSpec,
    temperature_k: f64,
) -> Result<NoiseEstimate> {
    opamp.validate()?;
    if !(g0 > 0.0 && g0.is_finite()) {
        return Err(CircuitError::config("g0 must be positive and finite"));
    }
    if !(temperature_k > 0.0 && temperature_k.is_finite()) {
        return Err(CircuitError::config("temperature must be positive"));
    }
    if g_pos.shape() != g_neg.shape() {
        return Err(CircuitError::ShapeMismatch {
            op: "mvm_thermal_noise",
            expected: g_pos.cols(),
            got: g_neg.cols(),
        });
    }
    let mut noise = Vec::with_capacity(g_pos.rows());
    let mut bw_used = 0.0_f64;
    for i in 0..g_pos.rows() {
        let row_sum: f64 = g_pos
            .row(i)
            .iter()
            .zip(g_neg.row(i))
            .map(|(&p, &q)| p + q)
            .sum();
        let s_hat = row_sum / g0;
        let bw = std::f64::consts::FRAC_PI_2 * opamp.gbwp_hz / (1.0 + s_hat);
        bw_used = bw_used.max(bw);
        let i_n_sq = 4.0 * BOLTZMANN * temperature_k * bw * (row_sum + g0);
        noise.push((i_n_sq).sqrt() / g0);
    }
    Ok(NoiseEstimate {
        output_noise_rms_v: noise,
        bandwidth_hz: bw_used,
        temperature_k,
    })
}

/// Thermal output noise of the **INV** circuit.
///
/// The feedback loop shapes every cell's noise current through the
/// solved inverse: input-referred noise currents `i_n` at the virtual
/// grounds map to output noise `Ĝ⁻¹·i_n / g₀`. Treating the per-row
/// currents as independent, the output covariance is
/// `Ĝ⁻¹·diag(4·k_B·T·B·(Σg + g₀))·Ĝ⁻ᵀ / g₀²`; this returns the square
/// roots of its diagonal.
///
/// # Errors
///
/// * Configuration errors as in [`mvm_thermal_noise`].
/// * [`CircuitError::NoOperatingPoint`] if `Ĝ` is singular.
pub fn inv_thermal_noise(
    g_pos: &Matrix,
    g_neg: &Matrix,
    g0: f64,
    opamp: &OpAmpSpec,
    temperature_k: f64,
) -> Result<NoiseEstimate> {
    opamp.validate()?;
    if !(g0 > 0.0 && g0.is_finite()) {
        return Err(CircuitError::config("g0 must be positive and finite"));
    }
    if !(temperature_k > 0.0 && temperature_k.is_finite()) {
        return Err(CircuitError::config("temperature must be positive"));
    }
    if !g_pos.is_square() || g_pos.shape() != g_neg.shape() {
        return Err(CircuitError::ShapeMismatch {
            op: "inv_thermal_noise",
            expected: g_pos.rows(),
            got: g_pos.cols(),
        });
    }
    let n = g_pos.rows();
    let g_hat = g_pos.sub_matrix(g_neg)?.scaled(1.0 / g0);
    let lu =
        LuFactor::new(&g_hat).map_err(|e| CircuitError::no_op_point(format!("INV noise: {e}")))?;
    let inv = lu.inverse()?;
    let mut noise = Vec::with_capacity(n);
    let mut bw_used = 0.0_f64;
    // Per-row input-referred noise current variances.
    let mut row_var = Vec::with_capacity(n);
    for i in 0..n {
        let row_sum: f64 = g_pos
            .row(i)
            .iter()
            .zip(g_neg.row(i))
            .map(|(&p, &q)| p + q)
            .sum();
        let s_hat = row_sum / g0;
        let bw = std::f64::consts::FRAC_PI_2 * opamp.gbwp_hz / (1.0 + s_hat);
        bw_used = bw_used.max(bw);
        row_var.push(4.0 * BOLTZMANN * temperature_k * bw * (row_sum + g0));
    }
    for i in 0..n {
        let mut var = 0.0;
        for (k, &rv) in row_var.iter().enumerate() {
            let w = inv[(i, k)];
            var += w * w * rv;
        }
        noise.push(var.sqrt() / g0);
    }
    Ok(NoiseEstimate {
        output_noise_rms_v: noise,
        bandwidth_hz: bw_used,
        temperature_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrays(n: usize, g: f64) -> (Matrix, Matrix) {
        (Matrix::filled(n, n, g), Matrix::zeros(n, n))
    }

    #[test]
    fn mvm_noise_is_nanovolt_scale_at_room_temperature() {
        let (gp, gn) = arrays(4, 1e-4);
        let e = mvm_thermal_noise(&gp, &gn, 1e-4, &OpAmpSpec::ideal(), 300.0).unwrap();
        for &v in &e.output_noise_rms_v {
            // 100 µS devices, MHz bandwidths: tens of µV at most.
            assert!(v > 1e-9 && v < 1e-3, "noise {v}");
        }
        assert!(e.bandwidth_hz > 0.0);
    }

    #[test]
    fn more_conductance_means_more_noise_current_but_less_bandwidth() {
        let (gp1, gn1) = arrays(2, 1e-5);
        let (gp2, gn2) = arrays(2, 1e-4);
        let spec = OpAmpSpec::ideal();
        let small = mvm_thermal_noise(&gp1, &gn1, 1e-4, &spec, 300.0).unwrap();
        let large = mvm_thermal_noise(&gp2, &gn2, 1e-4, &spec, 300.0).unwrap();
        // Bandwidth shrinks with loading.
        assert!(large.bandwidth_hz < small.bandwidth_hz);
    }

    #[test]
    fn noise_scales_with_sqrt_temperature() {
        let (gp, gn) = arrays(3, 1e-4);
        let spec = OpAmpSpec::ideal();
        let cold = mvm_thermal_noise(&gp, &gn, 1e-4, &spec, 100.0).unwrap();
        let hot = mvm_thermal_noise(&gp, &gn, 1e-4, &spec, 400.0).unwrap();
        let ratio = hot.output_noise_rms_v[0] / cold.output_noise_rms_v[0];
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn inv_noise_amplified_by_ill_conditioning() {
        let g0 = 1e-4;
        let well = Matrix::from_diag(&[1e-4, 1e-4]);
        let ill = Matrix::from_diag(&[1e-4, 2e-6]); // tiny pivot -> big inverse
        let z = Matrix::zeros(2, 2);
        let spec = OpAmpSpec::ideal();
        let nw = inv_thermal_noise(&well, &z, g0, &spec, 300.0).unwrap();
        let ni = inv_thermal_noise(&ill, &z, g0, &spec, 300.0).unwrap();
        assert!(
            ni.output_noise_rms_v[1] > 5.0 * nw.output_noise_rms_v[1],
            "ill {} vs well {}",
            ni.output_noise_rms_v[1],
            nw.output_noise_rms_v[1]
        );
    }

    #[test]
    fn snr_and_enob_reporting() {
        let (gp, gn) = arrays(2, 1e-4);
        let e = mvm_thermal_noise(&gp, &gn, 1e-4, &OpAmpSpec::ideal(), 300.0).unwrap();
        let snr = e.worst_snr(&[0.5, 0.5]);
        assert!(snr > 1e6, "thermal SNR should be high: {snr}");
        let enob = e.worst_enob(&[0.5, 0.5]);
        assert!(enob > 8.0, "enob {enob}");
        // Zero signal -> SNR 0.
        assert_eq!(e.worst_snr(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn validation_errors() {
        let (gp, gn) = arrays(2, 1e-4);
        let spec = OpAmpSpec::ideal();
        assert!(mvm_thermal_noise(&gp, &gn, 0.0, &spec, 300.0).is_err());
        assert!(mvm_thermal_noise(&gp, &gn, 1e-4, &spec, -1.0).is_err());
        let rect = Matrix::zeros(2, 3);
        assert!(inv_thermal_noise(&rect, &rect, 1e-4, &spec, 300.0).is_err());
        let sing = Matrix::filled(2, 2, 1e-4);
        assert!(inv_thermal_noise(&sing, &Matrix::zeros(2, 2), 1e-4, &spec, 300.0).is_err());
    }
}

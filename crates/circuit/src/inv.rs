//! The INV circuit (Fig. 1b): analytic DC solution.
//!
//! The input vector is injected through `G₀` resistors into the word-line
//! virtual-ground nodes; op-amp outputs feed back through the crossbar to
//! the bit lines, closing `n` nested feedback loops. Kirchhoff's current
//! law at equilibrium gives `G₀·v_in + G·v_out = 0`, i.e.
//! `v_out = −(G/G₀)⁻¹·v_in` — the circuit solves the linear system in one
//! step.
//!
//! With two arrays realizing `A = A⁺ − A⁻` (the negative array fed by the
//! inverted op-amp outputs) and finite op-amp open-loop gain `a₀`, the
//! exact node equations become
//!
//! ```text
//! (Ĝ + D̂/a₀) · v_out = −v_in,     D̂ = diag(1 + Ŝ_i)
//! ```
//!
//! with `Ĝ = (G⁺ − G⁻)/G₀` and `Ŝ_i = Σ_j (G⁺ + G⁻)_ij / G₀`. The finite
//! gain perturbs the solved matrix by `D̂/a₀` — a systematic error that
//! grows with the total row conductance, i.e. with array size. This is the
//! mechanism behind the paper's observation that even "ideal mapping"
//! HSPICE results degrade at large sizes while BlockAMC's smaller arrays
//! hold up better.

use amc_linalg::{lu::LuFactor, Matrix};

use crate::opamp::GainModel;
use crate::{CircuitError, Result};

/// DC solution of the (analytic) INV circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct InvSolution {
    /// Op-amp output voltages (physical volts). At the ideal operating
    /// point these equal `−(G/G₀)⁻¹·v_in`.
    pub volts: Vec<f64>,
}

/// Solves the INV circuit given the *effective* conductance matrices of
/// the two arrays (after any interconnect transformation), the unit
/// conductance `g0`, the input voltages, and the op-amp gain model.
///
/// # Errors
///
/// * [`CircuitError::InvalidConfig`] if `g0` is not positive or the gain
///   model is invalid.
/// * [`CircuitError::ShapeMismatch`] if the arrays are not square or
///   shapes disagree.
/// * [`CircuitError::NoOperatingPoint`] if the feedback system is
///   singular (the circuit has no stable equilibrium).
pub fn solve_inv(
    g_pos: &Matrix,
    g_neg: &Matrix,
    g0: f64,
    v_in: &[f64],
    gain: GainModel,
) -> Result<InvSolution> {
    gain.validate()?;
    if !(g0 > 0.0 && g0.is_finite()) {
        return Err(CircuitError::config("g0 must be positive and finite"));
    }
    if g_pos.shape() != g_neg.shape() {
        return Err(CircuitError::ShapeMismatch {
            op: "inv arrays",
            expected: g_pos.cols(),
            got: g_neg.cols(),
        });
    }
    if !g_pos.is_square() {
        return Err(CircuitError::ShapeMismatch {
            op: "inv (square array required)",
            expected: g_pos.rows(),
            got: g_pos.cols(),
        });
    }
    let n = g_pos.rows();
    if v_in.len() != n {
        return Err(CircuitError::ShapeMismatch {
            op: "inv input",
            expected: n,
            got: v_in.len(),
        });
    }
    let inv_a0 = gain.inverse_gain();
    // System matrix Ĝ + D̂/a₀.
    let mut sys = Matrix::zeros(n, n);
    for i in 0..n {
        let rp = g_pos.row(i);
        let rn = g_neg.row(i);
        let mut row_sum = 0.0;
        for j in 0..n {
            let signed = (rp[j] - rn[j]) / g0;
            sys[(i, j)] = signed;
            row_sum += (rp[j] + rn[j]) / g0;
        }
        if inv_a0 > 0.0 {
            sys[(i, i)] += (1.0 + row_sum) * inv_a0;
        }
    }
    let rhs: Vec<f64> = v_in.iter().map(|&v| -v).collect();
    let lu = LuFactor::new(&sys)
        .map_err(|e| CircuitError::no_op_point(format!("INV feedback system is singular: {e}")))?;
    let volts = lu.solve(&rhs)?;
    Ok(InvSolution { volts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::vector;

    fn arrays() -> (Matrix, Matrix, f64) {
        // Signed matrix [[2, -0.5], [0.25, 1.5]] normalized by g0 = 1e-4:
        // well-conditioned and diagonally dominant.
        let g0 = 1e-4;
        let gp = Matrix::from_rows(&[&[2e-4, 0.0], &[0.25e-4, 1.5e-4]]).unwrap();
        let gn = Matrix::from_rows(&[&[0.0, 0.5e-4], &[0.0, 0.0]]).unwrap();
        (gp, gn, g0)
    }

    #[test]
    fn ideal_circuit_solves_the_system() {
        let (gp, gn, g0) = arrays();
        let b = [0.3, -0.1];
        let sol = solve_inv(&gp, &gn, g0, &b, GainModel::Ideal).unwrap();
        // Ĝ·v = -b must hold.
        let g_hat = Matrix::from_rows(&[&[2.0, -0.5], &[0.25, 1.5]]).unwrap();
        let gv = g_hat.matvec(&sol.volts).unwrap();
        assert!(vector::approx_eq(&gv, &[-0.3, 0.1], 1e-12));
    }

    #[test]
    fn finite_gain_introduces_systematic_error() {
        let (gp, gn, g0) = arrays();
        let b = [0.3, -0.1];
        let ideal = solve_inv(&gp, &gn, g0, &b, GainModel::Ideal).unwrap();
        let finite = solve_inv(&gp, &gn, g0, &b, GainModel::Finite { a0: 50.0 }).unwrap();
        let err = amc_linalg::metrics::relative_error(&ideal.volts, &finite.volts);
        assert!(err > 1e-4, "a0=50 should visibly perturb, err={err}");
        assert!(err < 0.2, "perturbation should stay moderate, err={err}");
        let precise = solve_inv(&gp, &gn, g0, &b, GainModel::Finite { a0: 1e9 }).unwrap();
        assert!(vector::approx_eq(&precise.volts, &ideal.volts, 1e-7));
    }

    #[test]
    fn finite_gain_error_grows_with_row_conductance() {
        // Same matrix; add a cancelling pos/neg pair that increases the
        // absolute row conductance without changing the signed matrix.
        let g0 = 1e-4;
        let b = [0.2, 0.2];
        let gp_light = Matrix::from_rows(&[&[2e-4, 0.0], &[0.0, 2e-4]]).unwrap();
        let gn_light = Matrix::zeros(2, 2);
        let gp_heavy = Matrix::from_rows(&[&[2e-4, 1e-4], &[1e-4, 2e-4]]).unwrap();
        let gn_heavy = Matrix::from_rows(&[&[0.0, 1e-4], &[1e-4, 0.0]]).unwrap();
        let gain = GainModel::Finite { a0: 100.0 };
        let ideal = solve_inv(&gp_light, &gn_light, g0, &b, GainModel::Ideal).unwrap();
        let light = solve_inv(&gp_light, &gn_light, g0, &b, gain).unwrap();
        let heavy = solve_inv(&gp_heavy, &gn_heavy, g0, &b, gain).unwrap();
        let e_light = amc_linalg::metrics::relative_error(&ideal.volts, &light.volts);
        let e_heavy = amc_linalg::metrics::relative_error(&ideal.volts, &heavy.volts);
        assert!(
            e_heavy > e_light,
            "heavier rows must hurt more: {e_heavy} vs {e_light}"
        );
    }

    #[test]
    fn singular_feedback_is_detected() {
        let g0 = 1e-4;
        let gp = Matrix::from_rows(&[&[1e-4, 1e-4], &[1e-4, 1e-4]]).unwrap();
        let gn = Matrix::zeros(2, 2);
        let err = solve_inv(&gp, &gn, g0, &[0.1, 0.1], GainModel::Ideal);
        assert!(matches!(err, Err(CircuitError::NoOperatingPoint { .. })));
    }

    #[test]
    fn validation_errors() {
        let (gp, gn, g0) = arrays();
        assert!(solve_inv(&gp, &gn, -1.0, &[0.1, 0.1], GainModel::Ideal).is_err());
        assert!(solve_inv(&gp, &gn, g0, &[0.1], GainModel::Ideal).is_err());
        let rect = Matrix::zeros(2, 3);
        assert!(solve_inv(&rect, &rect, g0, &[0.1, 0.1, 0.1], GainModel::Ideal).is_err());
        let wrong = Matrix::zeros(3, 3);
        assert!(solve_inv(&gp, &wrong, g0, &[0.1, 0.1], GainModel::Ideal).is_err());
    }

    #[test]
    fn inv_and_mvm_are_inverse_operations() {
        let (gp, gn, g0) = arrays();
        let b = [0.25, 0.15];
        let x = solve_inv(&gp, &gn, g0, &b, GainModel::Ideal).unwrap();
        // Feed the INV output into the MVM circuit: should recover -b…
        // MVM(v) = -Ĝ v, and Ĝ x = -b, so MVM(x) = b.
        let back = crate::mvm::solve_mvm(&gp, &gn, g0, &x.volts, GainModel::Ideal).unwrap();
        assert!(vector::approx_eq(&back.volts, &b, 1e-12));
    }
}

//! Operational amplifier models.
//!
//! The MVM and INV circuits are built from the same op-amps (paper §II);
//! only the feedback topology differs. The accuracy-relevant parameter at
//! DC is the finite open-loop gain `a₀` (an ideal op-amp has `a₀ = ∞`);
//! the timing-relevant parameter is the gain-bandwidth product; the
//! power-relevant parameters are the supply voltage and quiescent current
//! (paper eq. 7: `P_OPA = N·V_s·I_q`).

use crate::{CircuitError, Result};

/// DC gain model of an op-amp.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
#[derive(Default)]
pub enum GainModel {
    /// Infinite open-loop gain: the inverting input is a perfect virtual
    /// ground.
    #[default]
    Ideal,
    /// Finite open-loop gain `a0` (V/V): the inverting input sits at
    /// `−v_out / a0`, producing a systematic computing error that grows
    /// with array size — this is what makes the paper's "ideal mapping"
    /// HSPICE results differ from the numerical solver (Fig. 6).
    Finite {
        /// Open-loop DC gain in V/V (e.g. `1e4` for 80 dB).
        a0: f64,
    },
}

impl GainModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] if a finite gain is not
    /// strictly positive and finite.
    pub fn validate(&self) -> Result<()> {
        match *self {
            GainModel::Ideal => Ok(()),
            GainModel::Finite { a0 } => {
                if a0.is_finite() && a0 > 0.0 {
                    Ok(())
                } else {
                    Err(CircuitError::config(format!(
                        "open-loop gain must be positive and finite, got {a0}"
                    )))
                }
            }
        }
    }

    /// Returns `1/a0`, the defect factor entering the DC equations
    /// (`0.0` for an ideal op-amp).
    pub fn inverse_gain(&self) -> f64 {
        match *self {
            GainModel::Ideal => 0.0,
            GainModel::Finite { a0 } => 1.0 / a0,
        }
    }
}

/// Full op-amp specification used by the timing and power models.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpAmpSpec {
    /// DC gain model.
    pub gain: GainModel,
    /// Gain-bandwidth product in Hz.
    pub gbwp_hz: f64,
    /// Supply voltage in volts (single number; rails are `±supply_v`).
    pub supply_v: f64,
    /// Quiescent current in amperes.
    pub quiescent_a: f64,
}

impl OpAmpSpec {
    /// A 45 nm-class op-amp consistent with the paper's power analysis:
    /// 80 dB open-loop gain, 10 MHz GBWP, 1.3 V supply, 10 µA quiescent
    /// current (`V_s·I_q = 13 µW` per amplifier).
    pub fn default_45nm() -> Self {
        OpAmpSpec {
            gain: GainModel::Finite { a0: 1e4 },
            gbwp_hz: 1e7,
            supply_v: 1.3,
            quiescent_a: 1e-5,
        }
    }

    /// An idealized op-amp: infinite gain, same dynamics/power as
    /// [`OpAmpSpec::default_45nm`].
    pub fn ideal() -> Self {
        OpAmpSpec {
            gain: GainModel::Ideal,
            ..Self::default_45nm()
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for non-positive GBWP,
    /// supply, or quiescent current, or an invalid gain model.
    pub fn validate(&self) -> Result<()> {
        self.gain.validate()?;
        if !(self.gbwp_hz > 0.0 && self.gbwp_hz.is_finite()) {
            return Err(CircuitError::config("GBWP must be positive and finite"));
        }
        if !(self.supply_v > 0.0 && self.supply_v.is_finite()) {
            return Err(CircuitError::config("supply must be positive and finite"));
        }
        if !(self.quiescent_a >= 0.0 && self.quiescent_a.is_finite()) {
            return Err(CircuitError::config(
                "quiescent current must be non-negative and finite",
            ));
        }
        Ok(())
    }

    /// Static power of one amplifier, `V_s·I_q` (paper eq. 7 with `N = 1`).
    pub fn static_power_w(&self) -> f64 {
        self.supply_v * self.quiescent_a
    }

    /// Checks a vector of op-amp output voltages against the supply rails.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::OutputSaturated`] identifying the first
    /// output beyond `±supply_v`.
    pub fn check_saturation(&self, outputs: &[f64]) -> Result<()> {
        for (i, &v) in outputs.iter().enumerate() {
            if v.abs() > self.supply_v {
                return Err(CircuitError::OutputSaturated {
                    index: i,
                    voltage: v,
                    limit: self.supply_v,
                });
            }
        }
        Ok(())
    }
}

impl Default for OpAmpSpec {
    fn default() -> Self {
        Self::default_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_model_inverse() {
        assert_eq!(GainModel::Ideal.inverse_gain(), 0.0);
        assert_eq!(GainModel::Finite { a0: 100.0 }.inverse_gain(), 0.01);
        assert_eq!(GainModel::default(), GainModel::Ideal);
    }

    #[test]
    fn gain_validation() {
        assert!(GainModel::Ideal.validate().is_ok());
        assert!(GainModel::Finite { a0: 1e4 }.validate().is_ok());
        assert!(GainModel::Finite { a0: 0.0 }.validate().is_err());
        assert!(GainModel::Finite { a0: -10.0 }.validate().is_err());
        assert!(GainModel::Finite { a0: f64::INFINITY }.validate().is_err());
    }

    #[test]
    fn spec_defaults_and_power() {
        let s = OpAmpSpec::default_45nm();
        assert!(s.validate().is_ok());
        assert!((s.static_power_w() - 13e-6).abs() < 1e-12);
        assert_eq!(OpAmpSpec::ideal().gain, GainModel::Ideal);
        assert_eq!(OpAmpSpec::default(), OpAmpSpec::default_45nm());
    }

    #[test]
    fn spec_validation_rejects_bad_values() {
        let mut s = OpAmpSpec::default_45nm();
        s.gbwp_hz = 0.0;
        assert!(s.validate().is_err());
        let mut s = OpAmpSpec::default_45nm();
        s.supply_v = -1.0;
        assert!(s.validate().is_err());
        let mut s = OpAmpSpec::default_45nm();
        s.quiescent_a = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn saturation_check() {
        let s = OpAmpSpec::default_45nm(); // rails ±1.3 V
        assert!(s.check_saturation(&[0.5, -1.2]).is_ok());
        let err = s.check_saturation(&[0.5, -2.0]);
        assert!(matches!(
            err,
            Err(CircuitError::OutputSaturated { index: 1, .. })
        ));
    }
}

//! Transient (settling) simulation of the INV circuit.
//!
//! The DC analyses elsewhere in this crate give the equilibrium the
//! circuit settles *to*; this module simulates how it gets there. Each
//! op-amp is modeled as a single-pole integrator with unity-gain
//! bandwidth `ω = 2π·GBWP` (the dominant-pole model used by the paper's
//! refs. \[22\]/\[23\] for their time-complexity analyses), giving the linear
//! ODE system
//!
//! ```text
//! dv/dt = −ω · (Ĝ·v + v_in)
//! ```
//!
//! for the INV topology with normalized matrix `Ĝ = G/G₀`: at
//! equilibrium `Ĝ·v = −v_in`, the DC solution. The circuit is stable iff
//! every eigenvalue of (the symmetric part of) `Ĝ` is positive, and the
//! slowest mode decays with time constant `1/(ω·λ_min)` — which is
//! exactly what [`crate::timing::inv_settle_time`] estimates. This module
//! lets tests *verify* that estimate against an actual waveform, and it
//! powers the settling-dynamics example.

use amc_linalg::{vector, Matrix};

use crate::opamp::OpAmpSpec;
use crate::{CircuitError, Result};

/// A simulated settling waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Sample times, seconds.
    pub times: Vec<f64>,
    /// Output-vector snapshots (one per sample time).
    pub outputs: Vec<Vec<f64>>,
    /// Time at which the output first stayed within `epsilon` (relative,
    /// ∞-norm) of the final value — `None` if it never settled within the
    /// simulated window.
    pub settle_time_s: Option<f64>,
    /// The DC solution the waveform is measured against.
    pub equilibrium: Vec<f64>,
}

/// Options for the transient simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Total simulated time, seconds.
    pub duration_s: f64,
    /// Integration step, seconds. Stability requires
    /// `dt < 2/(ω·λ_max)`; [`simulate_inv_settling`] validates this.
    pub dt_s: f64,
    /// Settling tolerance (relative, ∞-norm against the equilibrium).
    pub epsilon: f64,
    /// Store every `stride`-th sample (1 = all).
    pub stride: usize,
}

impl TransientOptions {
    /// Sensible defaults for a circuit with the given op-amp: simulate
    /// 40 unity-gain time constants at 100 steps per constant.
    pub fn for_opamp(opamp: &OpAmpSpec) -> Self {
        let omega = std::f64::consts::TAU * opamp.gbwp_hz;
        TransientOptions {
            duration_s: 40.0 / omega,
            dt_s: 0.01 / omega,
            epsilon: 1e-3,
            stride: 10,
        }
    }
}

/// Simulates the INV circuit settling from zero initial output.
///
/// `g_hat` is the normalized matrix `G/G₀` (use
/// [`amc_device::array::ProgrammedMatrix::normalized_matrix`]); `v_in`
/// the input vector in volts.
///
/// Integration is classical RK4 on the linear system — overkill in
/// accuracy but cheap at these sizes and robust to review.
///
/// # Errors
///
/// * [`CircuitError::ShapeMismatch`] for non-square `g_hat` or mismatched
///   `v_in`.
/// * [`CircuitError::InvalidConfig`] for non-positive durations/steps, an
///   unstable step size, or an invalid op-amp spec.
/// * [`CircuitError::NoOperatingPoint`] if `g_hat` is singular (no
///   equilibrium to settle to).
pub fn simulate_inv_settling(
    g_hat: &Matrix,
    v_in: &[f64],
    opamp: &OpAmpSpec,
    opts: &TransientOptions,
) -> Result<TransientResult> {
    opamp.validate()?;
    if !g_hat.is_square() {
        return Err(CircuitError::ShapeMismatch {
            op: "transient (square matrix required)",
            expected: g_hat.rows(),
            got: g_hat.cols(),
        });
    }
    let n = g_hat.rows();
    if v_in.len() != n {
        return Err(CircuitError::ShapeMismatch {
            op: "transient input",
            expected: n,
            got: v_in.len(),
        });
    }
    if !(opts.duration_s > 0.0 && opts.dt_s > 0.0 && opts.duration_s >= opts.dt_s) {
        return Err(CircuitError::config(
            "transient duration and step must be positive with duration >= dt",
        ));
    }
    if !(opts.epsilon > 0.0 && opts.epsilon < 1.0) {
        return Err(CircuitError::config("epsilon must lie in (0, 1)"));
    }
    if opts.stride == 0 {
        return Err(CircuitError::config("stride must be at least 1"));
    }
    let omega = std::f64::consts::TAU * opamp.gbwp_hz;
    // Explicit stability guard: ‖ω·Ĝ·dt‖ must be < 2 for RK4 on the
    // dominant eigenvalue (use the ∞-norm as a cheap upper bound).
    if omega * g_hat.norm_inf() * opts.dt_s > 2.0 {
        return Err(CircuitError::config(format!(
            "dt = {} is unstable for this GBWP/matrix; reduce it",
            opts.dt_s
        )));
    }

    // Equilibrium: Ĝ·v* = −v_in.
    let lu = amc_linalg::lu::LuFactor::new(g_hat)
        .map_err(|e| CircuitError::no_op_point(format!("no equilibrium: {e}")))?;
    let neg_in: Vec<f64> = v_in.iter().map(|v| -v).collect();
    let equilibrium = lu.solve(&neg_in)?;
    let eq_norm = vector::norm_inf(&equilibrium).max(f64::MIN_POSITIVE);

    // dv/dt = f(v) = −ω(Ĝ·v + v_in). The derivative is evaluated four
    // times per RK4 step over thousands of steps, so it writes into a
    // caller-provided slice through the borrowed matvec kernel instead
    // of allocating two vectors per evaluation.
    let mut gv = vec![0.0; n];
    let mut eval_f = |v: &[f64], out: &mut [f64]| {
        g_hat.matvec_into(v, &mut gv).expect("shape checked above");
        for ((o, &gvi), &bi) in out.iter_mut().zip(&gv).zip(v_in) {
            *o = -omega * (gvi + bi);
        }
    };

    let steps = (opts.duration_s / opts.dt_s).ceil() as usize;
    let mut v = vec![0.0; n];
    let mut times = Vec::with_capacity(steps / opts.stride + 2);
    let mut outputs = Vec::with_capacity(steps / opts.stride + 2);
    let mut settle_time = None;
    let mut settled_since: Option<f64> = None;
    times.push(0.0);
    outputs.push(v.clone());

    // RK4 scratch: stage vector and the four slopes, reused every step.
    let mut stage = vec![0.0; n];
    let (mut k1, mut k2, mut k3, mut k4) = (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    for step in 1..=steps {
        let t = step as f64 * opts.dt_s;
        // RK4.
        eval_f(&v, &mut k1);
        stage.copy_from_slice(&v);
        vector::axpy(opts.dt_s / 2.0, &k1, &mut stage);
        eval_f(&stage, &mut k2);
        stage.copy_from_slice(&v);
        vector::axpy(opts.dt_s / 2.0, &k2, &mut stage);
        eval_f(&stage, &mut k3);
        stage.copy_from_slice(&v);
        vector::axpy(opts.dt_s, &k3, &mut stage);
        eval_f(&stage, &mut k4);
        for i in 0..n {
            v[i] += opts.dt_s / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }

        let mut err = 0.0_f64;
        for (&vi, &ei) in v.iter().zip(&equilibrium) {
            err = err.max((vi - ei).abs());
        }
        let err = err / eq_norm;
        if err <= opts.epsilon {
            if settled_since.is_none() {
                settled_since = Some(t);
            }
        } else {
            settled_since = None;
        }
        if step % opts.stride == 0 || step == steps {
            times.push(t);
            outputs.push(v.clone());
        }
    }
    if let Some(t) = settled_since {
        settle_time = Some(t);
    }
    Ok(TransientResult {
        times,
        outputs,
        settle_time_s: settle_time,
        equilibrium,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use amc_linalg::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec() -> OpAmpSpec {
        OpAmpSpec::ideal()
    }

    #[test]
    fn settles_to_dc_solution() {
        let g = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap();
        let v_in = [0.3, -0.2];
        let opts = TransientOptions::for_opamp(&spec());
        let r = simulate_inv_settling(&g, &v_in, &spec(), &opts).unwrap();
        let final_v = r.outputs.last().unwrap();
        assert!(vector::approx_eq(final_v, &r.equilibrium, 1e-3));
        assert!(r.settle_time_s.is_some());
        // Equilibrium satisfies Ĝ·v = −v_in.
        let gv = g.matvec(&r.equilibrium).unwrap();
        assert!(vector::approx_eq(&gv, &[-0.3, 0.2], 1e-12));
    }

    #[test]
    fn measured_settle_time_matches_eigenvalue_estimate() {
        // For a diagonal matrix the slowest mode is exactly 1/(ω·λ_min);
        // the analytic estimate and the waveform must agree within ~30%.
        let g = Matrix::from_diag(&[1.0, 0.25]);
        let v_in = [0.5, 0.5];
        let opts = TransientOptions {
            duration_s: 100.0 / (std::f64::consts::TAU * spec().gbwp_hz),
            dt_s: 0.005 / (std::f64::consts::TAU * spec().gbwp_hz),
            epsilon: 1e-3,
            stride: 50,
        };
        let r = simulate_inv_settling(&g, &v_in, &spec(), &opts).unwrap();
        let measured = r.settle_time_s.expect("must settle");
        let estimate = timing::inv_settle_time(&g, &spec(), 1e-3).unwrap();
        let ratio = measured / estimate;
        assert!(
            (0.5..2.0).contains(&ratio),
            "measured {measured:.3e} vs estimate {estimate:.3e}"
        );
    }

    #[test]
    fn slower_matrices_settle_slower() {
        let fast = Matrix::from_diag(&[1.0, 1.0]);
        let slow = Matrix::from_diag(&[1.0, 0.05]);
        let opts = TransientOptions {
            duration_s: 400.0 / (std::f64::consts::TAU * spec().gbwp_hz),
            dt_s: 0.01 / (std::f64::consts::TAU * spec().gbwp_hz),
            epsilon: 1e-3,
            stride: 100,
        };
        let tf = simulate_inv_settling(&fast, &[0.1, 0.1], &spec(), &opts)
            .unwrap()
            .settle_time_s
            .unwrap();
        let ts = simulate_inv_settling(&slow, &[0.1, 0.1], &spec(), &opts)
            .unwrap()
            .settle_time_s
            .unwrap();
        assert!(ts > 5.0 * tf, "slow {ts} vs fast {tf}");
    }

    #[test]
    fn unstable_matrix_never_settles() {
        // A negative eigenvalue makes the feedback loop diverge: the
        // waveform must not report a settle time.
        let g = Matrix::from_diag(&[1.0, -0.5]);
        let opts = TransientOptions::for_opamp(&spec());
        let r = simulate_inv_settling(&g, &[0.1, 0.1], &spec(), &opts).unwrap();
        assert_eq!(r.settle_time_s, None);
        // And the trajectory visibly diverges from the equilibrium.
        let last = r.outputs.last().unwrap();
        assert!(vector::norm_inf(last) > vector::norm_inf(&r.equilibrium));
    }

    #[test]
    fn wishart_block_settles_with_paper_scale_dynamics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = generate::wishart_default(8, &mut rng).unwrap();
        let g = a.scaled(1.0 / a.max_abs());
        let b = generate::random_vector(8, &mut rng);
        let opts = TransientOptions {
            duration_s: 300.0 / (std::f64::consts::TAU * spec().gbwp_hz),
            dt_s: 0.005 / (std::f64::consts::TAU * spec().gbwp_hz),
            epsilon: 1e-3,
            stride: 100,
        };
        let r = simulate_inv_settling(&g, &b, &spec(), &opts).unwrap();
        let t = r.settle_time_s.expect("SPD system must settle");
        // 10 MHz GBWP: sub-ten-microsecond settling.
        assert!(t < 1e-5, "settle time {t}");
    }

    #[test]
    fn validation_errors() {
        let g = Matrix::identity(2);
        let opts = TransientOptions::for_opamp(&spec());
        assert!(simulate_inv_settling(&Matrix::zeros(2, 3), &[0.0; 3], &spec(), &opts).is_err());
        assert!(simulate_inv_settling(&g, &[0.0; 3], &spec(), &opts).is_err());
        let mut bad = opts;
        bad.dt_s = -1.0;
        assert!(simulate_inv_settling(&g, &[0.0; 2], &spec(), &bad).is_err());
        let mut bad = opts;
        bad.epsilon = 0.0;
        assert!(simulate_inv_settling(&g, &[0.0; 2], &spec(), &bad).is_err());
        let mut bad = opts;
        bad.stride = 0;
        assert!(simulate_inv_settling(&g, &[0.0; 2], &spec(), &bad).is_err());
        // Unstable step size.
        let mut bad = opts;
        bad.dt_s = 1.0;
        assert!(simulate_inv_settling(&g, &[0.0; 2], &spec(), &bad).is_err());
        // Singular matrix: no equilibrium.
        let sing = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(simulate_inv_settling(&sing, &[0.1, 0.1], &spec(), &opts).is_err());
    }
}

//! Static power at the DC operating point.
//!
//! Power has three contributors in the AMC circuits:
//!
//! 1. the crossbar arrays (current through every programmed cell),
//! 2. the input/feedback `G₀` resistors,
//! 3. the op-amps' quiescent draw, `N·V_s·I_q` (paper eq. 7).
//!
//! The analytic expressions below assume ideal virtual grounds (word-line
//! nodes at 0 V), which matches the analytic MVM/INV solutions; the exact
//! grid model computes its own dissipation from node voltages.

use amc_linalg::Matrix;

use crate::opamp::OpAmpSpec;
use crate::{CircuitError, Result};

/// Power of the MVM circuit at its operating point.
///
/// * Arrays: bit line `j` sits at `±v_in_j`, word lines at virtual ground,
///   so each cell dissipates `g·v_in_j²` (both the positive and negative
///   array see the same magnitude).
/// * Feedback resistors: `G₀·v_out_i²`.
/// * Op-amps: one TIA per word line.
///
/// # Errors
///
/// Returns [`CircuitError::ShapeMismatch`] if vector lengths disagree with
/// the array shape.
pub fn mvm_power(
    g_pos: &Matrix,
    g_neg: &Matrix,
    g0: f64,
    v_in: &[f64],
    v_out: &[f64],
    opamp: &OpAmpSpec,
) -> Result<f64> {
    if v_in.len() != g_pos.cols() || v_out.len() != g_pos.rows() {
        return Err(CircuitError::ShapeMismatch {
            op: "mvm_power",
            expected: g_pos.cols(),
            got: v_in.len(),
        });
    }
    let mut p = 0.0;
    for i in 0..g_pos.rows() {
        for (j, &v) in v_in.iter().enumerate() {
            p += (g_pos[(i, j)] + g_neg[(i, j)]) * v * v;
        }
    }
    for &v in v_out {
        p += g0 * v * v;
    }
    p += g_pos.rows() as f64 * opamp.static_power_w();
    Ok(p)
}

/// Power of the INV circuit at its operating point.
///
/// * Arrays: bit line `j` sits at `±v_out_j` (op-amp feedback), word lines
///   at virtual ground: each cell dissipates `g·v_out_j²`.
/// * Input resistors: `G₀·v_in_i²`.
/// * Op-amps: one per row.
///
/// # Errors
///
/// Returns [`CircuitError::ShapeMismatch`] if vector lengths disagree with
/// the array shape.
pub fn inv_power(
    g_pos: &Matrix,
    g_neg: &Matrix,
    g0: f64,
    v_in: &[f64],
    v_out: &[f64],
    opamp: &OpAmpSpec,
) -> Result<f64> {
    if v_in.len() != g_pos.rows() || v_out.len() != g_pos.cols() {
        return Err(CircuitError::ShapeMismatch {
            op: "inv_power",
            expected: g_pos.rows(),
            got: v_in.len(),
        });
    }
    let mut p = 0.0;
    for i in 0..g_pos.rows() {
        for (j, &v) in v_out.iter().enumerate() {
            p += (g_pos[(i, j)] + g_neg[(i, j)]) * v * v;
        }
    }
    for &v in v_in {
        p += g0 * v * v;
    }
    p += g_pos.rows() as f64 * opamp.static_power_w();
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpAmpSpec {
        OpAmpSpec::default_45nm() // 13 µW per op-amp
    }

    #[test]
    fn mvm_power_components() {
        // Single cell g=1e-4, v_in=1V: array power 1e-4 W.
        let gp = Matrix::filled(1, 1, 1e-4);
        let gn = Matrix::zeros(1, 1);
        let p = mvm_power(&gp, &gn, 1e-4, &[1.0], &[-1.0], &spec()).unwrap();
        // array 1e-4 + feedback 1e-4 + opamp 13e-6.
        assert!((p - (2e-4 + 13e-6)).abs() < 1e-12);
    }

    #[test]
    fn inv_power_components() {
        let gp = Matrix::filled(2, 2, 5e-5);
        let gn = Matrix::zeros(2, 2);
        let v_in = [0.5, 0.5];
        let v_out = [0.2, -0.2];
        let p = inv_power(&gp, &gn, 1e-4, &v_in, &v_out, &spec()).unwrap();
        // arrays: Σ_ij g·v_out_j² = 2 rows × (5e-5·0.04 + 5e-5·0.04) = 8e-6
        // inputs: 2 × 1e-4·0.25 = 5e-5 ; opamps: 26e-6.
        assert!((p - (8e-6 + 5e-5 + 26e-6)).abs() < 1e-12, "p={p}");
    }

    #[test]
    fn both_arrays_contribute() {
        let gp = Matrix::filled(1, 1, 1e-4);
        let gn = Matrix::filled(1, 1, 1e-4);
        let single = mvm_power(&gp, &Matrix::zeros(1, 1), 1e-4, &[1.0], &[0.0], &spec()).unwrap();
        let double = mvm_power(&gp, &gn, 1e-4, &[1.0], &[0.0], &spec()).unwrap();
        assert!((double - single - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn shape_validation() {
        let gp = Matrix::zeros(2, 3);
        let gn = Matrix::zeros(2, 3);
        assert!(mvm_power(&gp, &gn, 1e-4, &[1.0], &[0.0, 0.0], &spec()).is_err());
        assert!(inv_power(&gp, &gn, 1e-4, &[1.0], &[0.0, 0.0, 0.0], &spec()).is_err());
    }

    #[test]
    fn zero_signals_leave_only_quiescent_power() {
        let gp = Matrix::filled(3, 3, 1e-4);
        let gn = Matrix::zeros(3, 3);
        let p = mvm_power(&gp, &gn, 1e-4, &[0.0; 3], &[0.0; 3], &spec()).unwrap();
        assert!((p - 3.0 * 13e-6).abs() < 1e-15);
    }
}

//! Exact resistive-grid model of a crossbar with wire resistance.
//!
//! Every wire segment between adjacent cells is an explicit resistor
//! (`r_segment`, 1 Ω in the paper's Fig. 9), every cell is a resistor
//! between its bit-line node and its word-line node, bit lines are driven
//! at the top, and word lines terminate in the (virtual-ground) sensing
//! node at the right. The resulting network is a 2-D ladder whose node
//! equations form a sparse SPD Laplacian, solved here with Jacobi-
//! preconditioned conjugate gradients.
//!
//! This module is the ground truth the fast
//! [`crate::interconnect::InterconnectModel::SeriesApprox`] model is
//! validated against, and it also powers the `ExactGrid` simulation mode
//! for small arrays.

use amc_device::array::ProgrammedMatrix;
use amc_linalg::iterative::{conjugate_gradient, IterOptions, JacobiPrecond};
use amc_linalg::sparse::CsrMatrix;
use amc_linalg::{lu::LuFactor, Matrix};

use crate::{CircuitError, Result};

/// Exact 2-D resistive network of a single crossbar array.
///
/// # Example
///
/// ```
/// use amc_circuit::grid::ResistiveGrid;
/// use amc_linalg::Matrix;
///
/// # fn main() -> Result<(), amc_circuit::CircuitError> {
/// let g = Matrix::filled(2, 2, 1e-4); // all cells 100 µS
/// let grid = ResistiveGrid::new(&g, 1.0)?; // 1 Ω segments
/// let sol = grid.solve(&[0.2, 0.2])?;
/// // Each word line collects ~ 2 cells × 100 µS × 0.2 V = 40 µA
/// assert!((sol.sense_currents[0] - 4e-5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResistiveGrid<'a> {
    /// Cell conductance matrix (word lines × bit lines), in siemens.
    g: &'a Matrix,
    /// Wire segment resistance in ohms (> 0).
    r_segment: f64,
}

/// DC solution of a [`ResistiveGrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridSolution {
    /// Current flowing into each word line's sensing node, in amperes
    /// (length = number of rows).
    pub sense_currents: Vec<f64>,
    /// Total static power dissipated in the network, in watts.
    pub power_w: f64,
    /// Conjugate-gradient iterations used.
    pub iterations: usize,
}

impl<'a> ResistiveGrid<'a> {
    /// Creates the grid model.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] if `r_segment` is not
    /// strictly positive and finite, `g` is empty, or any conductance is
    /// negative / not finite.
    pub fn new(g: &'a Matrix, r_segment: f64) -> Result<Self> {
        if !(r_segment.is_finite() && r_segment > 0.0) {
            return Err(CircuitError::config(format!(
                "grid segment resistance must be positive and finite, got {r_segment}"
            )));
        }
        if g.rows() == 0 || g.cols() == 0 {
            return Err(CircuitError::config("grid must be non-empty"));
        }
        if g.as_slice().iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(CircuitError::config(
                "cell conductances must be finite and non-negative",
            ));
        }
        Ok(ResistiveGrid { g, r_segment })
    }

    /// Node index of bit-line node `(row, col)`.
    fn bl(&self, i: usize, j: usize) -> usize {
        i * self.g.cols() + j
    }

    /// Node index of word-line node `(row, col)`.
    fn wl(&self, i: usize, j: usize) -> usize {
        self.g.rows() * self.g.cols() + i * self.g.cols() + j
    }

    /// Solves the network for the given bit-line driver voltages (one per
    /// column) and returns sense currents + power.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::ShapeMismatch`] if `v_drivers.len()` differs from
    ///   the column count.
    /// * [`CircuitError::NoOperatingPoint`] if CG fails to converge.
    pub fn solve(&self, v_drivers: &[f64]) -> Result<GridSolution> {
        let (m, n) = self.g.shape();
        if v_drivers.len() != n {
            return Err(CircuitError::ShapeMismatch {
                op: "grid_solve",
                expected: n,
                got: v_drivers.len(),
            });
        }
        let gs = 1.0 / self.r_segment;
        let total = 2 * m * n;
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(10 * m * n);
        let mut rhs = vec![0.0; total];

        let stamp = |a: usize,
                     b_node: Option<usize>,
                     g_val: f64,
                     triplets: &mut Vec<(usize, usize, f64)>,
                     rhs: &mut Vec<f64>,
                     v_fixed: f64| {
            // Conductance between unknown node `a` and either unknown `b`
            // or a fixed-voltage terminal.
            triplets.push((a, a, g_val));
            match b_node {
                Some(b) => {
                    triplets.push((b, b, g_val));
                    triplets.push((a, b, -g_val));
                    triplets.push((b, a, -g_val));
                }
                None => {
                    rhs[a] += g_val * v_fixed;
                }
            }
        };

        for (j, &v_driver) in v_drivers.iter().enumerate().take(n) {
            // Driver -> first BL node.
            stamp(self.bl(0, j), None, gs, &mut triplets, &mut rhs, v_driver);
            // BL ladder.
            for i in 0..m.saturating_sub(1) {
                stamp(
                    self.bl(i, j),
                    Some(self.bl(i + 1, j)),
                    gs,
                    &mut triplets,
                    &mut rhs,
                    0.0,
                );
            }
        }
        for i in 0..m {
            // Cells.
            for j in 0..n {
                let gc = self.g[(i, j)];
                if gc > 0.0 {
                    stamp(
                        self.bl(i, j),
                        Some(self.wl(i, j)),
                        gc,
                        &mut triplets,
                        &mut rhs,
                        0.0,
                    );
                }
            }
            // WL ladder.
            for j in 0..n.saturating_sub(1) {
                stamp(
                    self.wl(i, j),
                    Some(self.wl(i, j + 1)),
                    gs,
                    &mut triplets,
                    &mut rhs,
                    0.0,
                );
            }
            // Last WL node -> sense node at 0 V.
            stamp(self.wl(i, n - 1), None, gs, &mut triplets, &mut rhs, 0.0);
        }

        let laplacian = CsrMatrix::from_triplets(total, total, &triplets)?;
        let precond = JacobiPrecond::new(&laplacian)
            .map_err(|e| CircuitError::no_op_point(format!("grid preconditioner: {e}")))?;
        let opts = IterOptions {
            max_iterations: 50_000,
            tolerance: 1e-12,
        };
        let report = conjugate_gradient(&laplacian, &rhs, None, &precond, opts)
            .map_err(|e| CircuitError::no_op_point(format!("grid CG: {e}")))?;
        let v = report.x;

        // Sense currents: through the last WL segment into the 0 V node.
        let sense_currents: Vec<f64> = (0..m).map(|i| gs * v[self.wl(i, n - 1)]).collect();

        // Power: sum over every resistor of g·Δv².
        let mut power = 0.0;
        for j in 0..n {
            power += gs * (v_drivers[j] - v[self.bl(0, j)]).powi(2);
            for i in 0..m.saturating_sub(1) {
                power += gs * (v[self.bl(i, j)] - v[self.bl(i + 1, j)]).powi(2);
            }
        }
        for i in 0..m {
            for j in 0..n {
                let gc = self.g[(i, j)];
                if gc > 0.0 {
                    power += gc * (v[self.bl(i, j)] - v[self.wl(i, j)]).powi(2);
                }
            }
            for j in 0..n.saturating_sub(1) {
                power += gs * (v[self.wl(i, j)] - v[self.wl(i, j + 1)]).powi(2);
            }
            power += gs * v[self.wl(i, n - 1)].powi(2);
        }

        Ok(GridSolution {
            sense_currents,
            power_w: power,
            iterations: report.iterations,
        })
    }
}

/// Output of an exact-grid MVM or INV computation.
#[derive(Debug, Clone, PartialEq)]
pub struct GridComputeOutput {
    /// Op-amp output voltages (physical volts).
    pub volts: Vec<f64>,
    /// Static power dissipated in both arrays (watts), excluding op-amps.
    pub array_power_w: f64,
}

/// Exact-grid MVM: drives the positive array with `v_in` and the negative
/// array with `−v_in`, sums the word-line sense currents, and converts
/// through the TIA: `v_out = −I/G₀` (ideal op-amps).
///
/// # Errors
///
/// * [`CircuitError::ShapeMismatch`] if `v_in` does not match the array
///   column count.
/// * Configuration / convergence errors from the grid solver.
pub fn mvm_exact(
    programmed: &ProgrammedMatrix,
    v_in: &[f64],
    r_segment: f64,
) -> Result<GridComputeOutput> {
    let gp = programmed.pos().conductances();
    let gn = programmed.neg().conductances();
    let neg_in: Vec<f64> = v_in.iter().map(|v| -v).collect();
    let grid_p = ResistiveGrid::new(&gp, r_segment)?;
    let grid_n = ResistiveGrid::new(&gn, r_segment)?;
    let sol_p = grid_p.solve(v_in)?;
    let sol_n = grid_n.solve(&neg_in)?;
    let g0 = programmed.g0();
    let volts: Vec<f64> = sol_p
        .sense_currents
        .iter()
        .zip(&sol_n.sense_currents)
        .map(|(&ip, &in_)| -(ip + in_) / g0)
        .collect();
    Ok(GridComputeOutput {
        volts,
        array_power_w: sol_p.power_w + sol_n.power_w,
    })
}

/// Exact-grid INV: finds op-amp output voltages `v` such that the current
/// into every word-line virtual-ground node balances the injected input
/// current: `G₀·v_in + I(v) = 0`, with `I(v)` computed by exact grid
/// solves (positive array driven by `v`, negative array by `−v`).
///
/// Because the network is linear, `I(v) = M·v`; `M` is assembled column by
/// column with unit-vector drives and the resulting dense `n x n` system
/// is solved by LU. This is exact but costs `2n` grid solves — use it for
/// validation-scale arrays (the paper's two non-ideality figures use it at
/// HSPICE scale; the sweeps here use the series approximation).
///
/// # Errors
///
/// * [`CircuitError::ShapeMismatch`] if the array is not square or `v_in`
///   has the wrong length.
/// * [`CircuitError::NoOperatingPoint`] if the current-balance system is
///   singular.
pub fn inv_exact(
    programmed: &ProgrammedMatrix,
    v_in: &[f64],
    r_segment: f64,
) -> Result<GridComputeOutput> {
    let (m, n) = programmed.shape();
    if m != n {
        return Err(CircuitError::ShapeMismatch {
            op: "inv_exact (square array required)",
            expected: m,
            got: n,
        });
    }
    if v_in.len() != n {
        return Err(CircuitError::ShapeMismatch {
            op: "inv_exact",
            expected: n,
            got: v_in.len(),
        });
    }
    let gp = programmed.pos().conductances();
    let gn = programmed.neg().conductances();
    let grid_p = ResistiveGrid::new(&gp, r_segment)?;
    let grid_n = ResistiveGrid::new(&gn, r_segment)?;

    // Assemble M: column j = sense currents for unit drive on op-amp j.
    let mut m_mat = Matrix::zeros(n, n);
    let mut unit = vec![0.0; n];
    for j in 0..n {
        unit[j] = 1.0;
        let neg_unit: Vec<f64> = unit.iter().map(|v| -v).collect();
        let sol_p = grid_p.solve(&unit)?;
        let sol_n = grid_n.solve(&neg_unit)?;
        for i in 0..n {
            m_mat[(i, j)] = sol_p.sense_currents[i] + sol_n.sense_currents[i];
        }
        unit[j] = 0.0;
    }

    // Solve M·v = −G₀·v_in.
    let g0 = programmed.g0();
    let rhs: Vec<f64> = v_in.iter().map(|&b| -g0 * b).collect();
    let lu = LuFactor::new(&m_mat)
        .map_err(|e| CircuitError::no_op_point(format!("INV current-balance system: {e}")))?;
    let volts = lu.solve(&rhs)?;

    // Re-solve the grids at the operating point for the power figure.
    let neg_volts: Vec<f64> = volts.iter().map(|v| -v).collect();
    let sol_p = grid_p.solve(&volts)?;
    let sol_n = grid_n.solve(&neg_volts)?;
    // Input-resistor dissipation: G₀ between v_in and the virtual ground.
    let input_power: f64 = v_in.iter().map(|&b| g0 * b * b).sum();
    Ok(GridComputeOutput {
        volts,
        array_power_w: sol_p.power_w + sol_n.power_w + input_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_device::mapping::MappingConfig;
    use amc_device::variation::VariationModel;
    use amc_linalg::vector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn program(a: &Matrix) -> ProgrammedMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        ProgrammedMatrix::program(
            a,
            &MappingConfig::paper_default(),
            &VariationModel::None,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        let g = Matrix::filled(2, 2, 1e-4);
        assert!(ResistiveGrid::new(&g, 1.0).is_ok());
        assert!(ResistiveGrid::new(&g, 0.0).is_err());
        assert!(ResistiveGrid::new(&g, -1.0).is_err());
        let neg = Matrix::from_rows(&[&[-1e-4]]).unwrap();
        assert!(ResistiveGrid::new(&neg, 1.0).is_err());
    }

    #[test]
    fn single_cell_matches_series_formula() {
        // 1x1 array: driver -(r)- bl -(cell g)- wl -(r)- ground.
        // I = v / (2r + 1/g); sense current must match exactly.
        let g = Matrix::filled(1, 1, 1e-4);
        let grid = ResistiveGrid::new(&g, 2.5).unwrap();
        let sol = grid.solve(&[0.5]).unwrap();
        let expected = 0.5 / (2.0 * 2.5 + 1e4);
        assert!(
            (sol.sense_currents[0] - expected).abs() < 1e-12,
            "got {} want {}",
            sol.sense_currents[0],
            expected
        );
        // Power = v*I for a series chain.
        assert!((sol.power_w - 0.5 * expected).abs() < 1e-12);
    }

    #[test]
    fn tiny_wire_resistance_approaches_ideal_mvm() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[0.25, 0.75]]).unwrap();
        let p = program(&a);
        let v_in = [0.3, -0.2];
        let out = mvm_exact(&p, &v_in, 1e-6).unwrap();
        // Ideal: v_out = -(A/scale)·v_in (normalized matrix = A/scale).
        let ideal = p.normalized_matrix().matvec(&v_in).unwrap();
        let expect: Vec<f64> = ideal.iter().map(|v| -v).collect();
        assert!(vector::approx_eq(&out.volts, &expect, 1e-6));
    }

    #[test]
    fn wire_resistance_attenuates_mvm_output() {
        let a = Matrix::filled(4, 4, 1.0);
        let p = program(&a);
        let v_in = [0.25; 4];
        let near_ideal = mvm_exact(&p, &v_in, 1e-6).unwrap();
        let resistive = mvm_exact(&p, &v_in, 50.0).unwrap();
        for (r, i) in resistive.volts.iter().zip(&near_ideal.volts) {
            assert!(r.abs() < i.abs(), "wire resistance must attenuate");
        }
    }

    #[test]
    fn inv_exact_solves_system_at_tiny_resistance() {
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap();
        let p = program(&a);
        let b = [0.4, -0.3];
        let out = inv_exact(&p, &b, 1e-6).unwrap();
        // v = -(A/scale)^{-1} b => A·(-v·(1/scale)^{-1}) ... check via
        // normalized matrix: Ĝ·v = -b.
        let back = p.normalized_matrix().matvec(&out.volts).unwrap();
        for (g, want) in back.iter().zip(&b) {
            assert!((g + want).abs() < 1e-6, "Ĝv = -b violated: {g} vs {want}");
        }
        assert!(out.array_power_w > 0.0);
    }

    #[test]
    fn inv_exact_requires_square() {
        let a = Matrix::from_rows(&[&[1.0, 0.5, 0.2], &[0.1, 2.0, 0.3]]).unwrap();
        let p = program(&a);
        assert!(inv_exact(&p, &[1.0, 1.0, 1.0], 1.0).is_err());
        let sq = Matrix::identity(2);
        let p = program(&sq);
        assert!(inv_exact(&p, &[1.0], 1.0).is_err());
    }

    #[test]
    fn grid_solve_validates_driver_length() {
        let g = Matrix::filled(2, 3, 1e-4);
        let grid = ResistiveGrid::new(&g, 1.0).unwrap();
        assert!(grid.solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn deselected_row_draws_no_current() {
        let g = Matrix::from_rows(&[&[1e-4, 1e-4], &[0.0, 0.0]]).unwrap();
        let grid = ResistiveGrid::new(&g, 1.0).unwrap();
        let sol = grid.solve(&[0.5, 0.5]).unwrap();
        assert!(sol.sense_currents[0] > 1e-6);
        assert!(sol.sense_currents[1].abs() < 1e-15);
    }

    #[test]
    fn superposition_holds() {
        // The grid is linear: solve(v1 + v2) = solve(v1) + solve(v2).
        let g = Matrix::filled(3, 3, 5e-5);
        let grid = ResistiveGrid::new(&g, 2.0).unwrap();
        let v1 = [0.1, 0.0, 0.3];
        let v2 = [0.0, -0.2, 0.1];
        let sum: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a + b).collect();
        let s1 = grid.solve(&v1).unwrap();
        let s2 = grid.solve(&v2).unwrap();
        let s12 = grid.solve(&sum).unwrap();
        for i in 0..3 {
            assert!(
                (s12.sense_currents[i] - s1.sense_currents[i] - s2.sense_currents[i]).abs() < 1e-12
            );
        }
    }
}

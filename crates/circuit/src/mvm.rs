//! The MVM circuit (Fig. 1a): analytic DC solution.
//!
//! Bit lines carry the input voltages, word-line currents are collected by
//! transimpedance amplifiers (feedback conductance `G₀`), so at the DC
//! operating point `v_out = −(G/G₀)·v_in`. With two arrays realizing
//! `A = A⁺ − A⁻` (the negative array driven by `−v_in`) and a finite
//! op-amp open-loop gain `a₀`, the exact node equation at TIA `i` gives
//!
//! ```text
//! v_out_i = −(Ĝ·v_in)_i / (1 + (1 + Ŝ_i)/a₀)
//! ```
//!
//! where `Ĝ = (G⁺ − G⁻)/G₀` is the normalized signed matrix and
//! `Ŝ_i = Σ_j (G⁺ + G⁻)_ij / G₀` the normalized total row conductance. The
//! `a₀ = ∞` limit recovers the ideal expression.

use amc_linalg::Matrix;

use crate::opamp::GainModel;
use crate::{CircuitError, Result};

/// DC solution of the (analytic) MVM circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct MvmSolution {
    /// TIA output voltages (physical volts).
    pub volts: Vec<f64>,
}

/// Solves the MVM circuit given the *effective* conductance matrices of
/// the two arrays (after any interconnect transformation), the unit
/// conductance `g0`, the input voltages, and the op-amp gain model.
///
/// # Errors
///
/// * [`CircuitError::InvalidConfig`] if `g0` is not positive or the gain
///   model is invalid.
/// * [`CircuitError::ShapeMismatch`] if shapes disagree.
pub fn solve_mvm(
    g_pos: &Matrix,
    g_neg: &Matrix,
    g0: f64,
    v_in: &[f64],
    gain: GainModel,
) -> Result<MvmSolution> {
    gain.validate()?;
    if !(g0 > 0.0 && g0.is_finite()) {
        return Err(CircuitError::config("g0 must be positive and finite"));
    }
    if g_pos.shape() != g_neg.shape() {
        return Err(CircuitError::ShapeMismatch {
            op: "mvm arrays",
            expected: g_pos.cols(),
            got: g_neg.cols(),
        });
    }
    if v_in.len() != g_pos.cols() {
        return Err(CircuitError::ShapeMismatch {
            op: "mvm input",
            expected: g_pos.cols(),
            got: v_in.len(),
        });
    }
    let inv_a0 = gain.inverse_gain();
    let m = g_pos.rows();
    let mut volts = vec![0.0; m];
    for (i, out) in volts.iter_mut().enumerate() {
        let rp = g_pos.row(i);
        let rn = g_neg.row(i);
        let mut current = 0.0; // Σ_j (g⁺−g⁻)_ij · v_j
        let mut row_sum = 0.0; // Σ_j (g⁺+g⁻)_ij
        for ((&gp, &gn), &v) in rp.iter().zip(rn).zip(v_in) {
            current += (gp - gn) * v;
            row_sum += gp + gn;
        }
        let denom = g0 * (1.0 + (1.0 + row_sum / g0) * inv_a0);
        *out = -current / denom;
    }
    Ok(MvmSolution { volts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::vector;

    fn arrays() -> (Matrix, Matrix, f64) {
        // Signed matrix [[1, -0.5], [0.25, 0.75]] at g0 = 1e-4.
        let g0 = 1e-4;
        let gp = Matrix::from_rows(&[&[1e-4, 0.0], &[0.25e-4, 0.75e-4]]).unwrap();
        let gn = Matrix::from_rows(&[&[0.0, 0.5e-4], &[0.0, 0.0]]).unwrap();
        (gp, gn, g0)
    }

    #[test]
    fn ideal_gain_matches_formula() {
        let (gp, gn, g0) = arrays();
        let v_in = [0.4, -0.2];
        let sol = solve_mvm(&gp, &gn, g0, &v_in, GainModel::Ideal).unwrap();
        // v_out = -Ĝ v_in with Ĝ = [[1, -0.5], [0.25, 0.75]].
        let expect = [
            -(1.0 * 0.4 + (-0.5) * (-0.2)),
            -(0.25 * 0.4 + 0.75 * (-0.2)),
        ];
        assert!(vector::approx_eq(&sol.volts, &expect, 1e-12));
    }

    #[test]
    fn finite_gain_attenuates_output() {
        let (gp, gn, g0) = arrays();
        let v_in = [0.4, -0.2];
        let ideal = solve_mvm(&gp, &gn, g0, &v_in, GainModel::Ideal).unwrap();
        let finite = solve_mvm(&gp, &gn, g0, &v_in, GainModel::Finite { a0: 100.0 }).unwrap();
        for (f, i) in finite.volts.iter().zip(&ideal.volts) {
            assert!(f.abs() < i.abs());
            // Error scale ~ (1 + Ŝ)/a0 = few percent at a0=100.
            assert!((f - i).abs() / i.abs() < 0.05);
        }
    }

    #[test]
    fn finite_gain_error_vanishes_with_large_a0() {
        let (gp, gn, g0) = arrays();
        let v_in = [0.1, 0.9];
        let ideal = solve_mvm(&gp, &gn, g0, &v_in, GainModel::Ideal).unwrap();
        let finite = solve_mvm(&gp, &gn, g0, &v_in, GainModel::Finite { a0: 1e9 }).unwrap();
        assert!(vector::approx_eq(&finite.volts, &ideal.volts, 1e-8));
    }

    #[test]
    fn denominator_uses_absolute_conductance_sum() {
        // A matrix whose signed entries cancel still loads the op-amp with
        // the *sum* of conductances: output error must reflect that.
        let g0 = 1e-4;
        let gp = Matrix::from_rows(&[&[1e-4, 0.0]]).unwrap();
        let gn = Matrix::from_rows(&[&[0.0, 1e-4]]).unwrap();
        // v_in chosen so the signed current is non-zero.
        let v_in = [0.5, 0.2];
        let sol = solve_mvm(&gp, &gn, g0, &v_in, GainModel::Finite { a0: 10.0 }).unwrap();
        // Ŝ = 2, ideal current = (0.5 - 0.2)·1e-4; denom = g0(1 + 3/10).
        let expect = -(0.3e-4) / (1e-4 * 1.3);
        assert!((sol.volts[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn shape_and_config_validation() {
        let (gp, gn, g0) = arrays();
        assert!(solve_mvm(&gp, &gn, 0.0, &[0.1, 0.1], GainModel::Ideal).is_err());
        assert!(solve_mvm(&gp, &gn, g0, &[0.1], GainModel::Ideal).is_err());
        let wrong = Matrix::zeros(3, 2);
        assert!(solve_mvm(&gp, &wrong, g0, &[0.1, 0.1], GainModel::Ideal).is_err());
        assert!(solve_mvm(&gp, &gn, g0, &[0.1, 0.1], GainModel::Finite { a0: -1.0 }).is_err());
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let (gp, gn, g0) = arrays();
        let sol = solve_mvm(&gp, &gn, g0, &[0.0, 0.0], GainModel::Ideal).unwrap();
        assert!(sol.volts.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rectangular_arrays_supported() {
        // 3 word lines x 2 bit lines.
        let gp = Matrix::filled(3, 2, 5e-5);
        let gn = Matrix::zeros(3, 2);
        let sol = solve_mvm(&gp, &gn, 1e-4, &[0.2, 0.2], GainModel::Ideal).unwrap();
        assert_eq!(sol.volts.len(), 3);
        assert!(sol.volts.iter().all(|&v| (v + 0.2).abs() < 1e-12));
    }
}

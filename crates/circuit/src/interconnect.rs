//! Interconnect (wire-resistance) models.
//!
//! The paper's Fig. 9 experiments assume "the segment resistance between
//! every two memory cells along the BL or WL … as 1 Ω" (the 65 nm value).
//! Two models of that non-ideality are provided:
//!
//! * [`InterconnectModel::SeriesApprox`] — the standard first-order model:
//!   each cell sees, in series with its own resistance, the wire segments
//!   accumulated along its bit line (from the driver) and word line (to
//!   the sensing amplifier). This folds the non-ideality into a perturbed
//!   conductance matrix in O(m·n) and captures the dominant
//!   position-dependent degradation, which grows with array size — the
//!   effect BlockAMC exploits.
//! * [`InterconnectModel::ExactGrid`] — defer to the full resistive-grid
//!   MNA solve in [`crate::grid`], which models current sharing between
//!   cells exactly. Used for validation on small arrays; tests bound the
//!   divergence between the two models.
//!
//! Geometry convention (matching Fig. 1): bit lines are driven at the top
//! (above row 0), word lines are sensed at the right (past column n−1), so
//! cell `(i, j)` in an `m x n` array accumulates `(i + 1)` BL segments and
//! `(n − j)` WL segments.

use amc_linalg::Matrix;

use crate::{CircuitError, Result};

/// Wire-resistance model selection.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
#[derive(Default)]
pub enum InterconnectModel {
    /// Ideal wires (zero resistance).
    #[default]
    Ideal,
    /// Accumulated series-resistance approximation with the given segment
    /// resistance in ohms.
    SeriesApprox {
        /// Resistance of one wire segment between adjacent cells, in ohms.
        r_segment: f64,
    },
    /// Exact 2-D resistive grid solve with the given segment resistance in
    /// ohms (see [`crate::grid::ResistiveGrid`]).
    ExactGrid {
        /// Resistance of one wire segment between adjacent cells, in ohms.
        r_segment: f64,
    },
}

impl InterconnectModel {
    /// The paper's Fig. 9 configuration: 1 Ω per segment, fast model.
    pub fn paper_default() -> Self {
        InterconnectModel::SeriesApprox { r_segment: 1.0 }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] if the segment resistance is
    /// negative or not finite, or zero for the exact grid (a zero-resistance
    /// grid is singular; use [`InterconnectModel::Ideal`] instead).
    pub fn validate(&self) -> Result<()> {
        match *self {
            InterconnectModel::Ideal => Ok(()),
            InterconnectModel::SeriesApprox { r_segment } => {
                if r_segment.is_finite() && r_segment >= 0.0 {
                    Ok(())
                } else {
                    Err(CircuitError::config(format!(
                        "segment resistance must be finite and non-negative, got {r_segment}"
                    )))
                }
            }
            InterconnectModel::ExactGrid { r_segment } => {
                if r_segment.is_finite() && r_segment > 0.0 {
                    Ok(())
                } else {
                    Err(CircuitError::config(format!(
                        "exact-grid segment resistance must be finite and positive \
                         (use Ideal for zero), got {r_segment}"
                    )))
                }
            }
        }
    }

    /// Returns `true` if the model requires the exact grid solver.
    pub fn is_exact_grid(&self) -> bool {
        matches!(self, InterconnectModel::ExactGrid { .. })
    }
}

/// Applies the series-resistance approximation to one array's conductance
/// matrix: `g_eff(i,j) = 1 / (1/g(i,j) + r_segment·((i+1) + (n−j)))`.
///
/// Deselected cells (zero conductance) stay zero. With `r_segment == 0`
/// the matrix is returned unchanged.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidConfig`] if `r_segment` is negative or
/// not finite.
pub fn series_effective_conductances(g: &Matrix, r_segment: f64) -> Result<Matrix> {
    if !(r_segment.is_finite() && r_segment >= 0.0) {
        return Err(CircuitError::config(format!(
            "segment resistance must be finite and non-negative, got {r_segment}"
        )));
    }
    if r_segment == 0.0 {
        return Ok(g.clone());
    }
    let n = g.cols();
    Ok(g.map_indexed(|i, j, v| {
        if v == 0.0 {
            0.0
        } else {
            let r_wire = r_segment * ((i + 1) + (n - j)) as f64;
            1.0 / (1.0 / v + r_wire)
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(InterconnectModel::Ideal.validate().is_ok());
        assert!(InterconnectModel::paper_default().validate().is_ok());
        assert!(InterconnectModel::SeriesApprox { r_segment: -1.0 }
            .validate()
            .is_err());
        assert!(InterconnectModel::ExactGrid { r_segment: 0.0 }
            .validate()
            .is_err());
        assert!(InterconnectModel::ExactGrid { r_segment: 1.0 }
            .validate()
            .is_ok());
        assert_eq!(InterconnectModel::default(), InterconnectModel::Ideal);
        assert!(InterconnectModel::ExactGrid { r_segment: 1.0 }.is_exact_grid());
        assert!(!InterconnectModel::Ideal.is_exact_grid());
    }

    #[test]
    fn zero_resistance_is_identity() {
        let g = Matrix::from_rows(&[&[1e-4, 5e-5], &[2e-5, 0.0]]).unwrap();
        let e = series_effective_conductances(&g, 0.0).unwrap();
        assert_eq!(e, g);
    }

    #[test]
    fn effective_conductance_decreases_with_distance() {
        // 2x2 array, all cells at 100 µS, 1 Ω segments.
        let g = Matrix::filled(2, 2, 1e-4);
        let e = series_effective_conductances(&g, 1.0).unwrap();
        // Cell (0,1): wire = (0+1) + (2-1) = 2 segments -> R = 10kΩ + 2Ω.
        assert!((1.0 / e[(0, 1)] - (1e4 + 2.0)).abs() < 1e-9);
        // Cell (1,0): wire = (1+1) + (2-0) = 4 segments.
        assert!((1.0 / e[(1, 0)] - (1e4 + 4.0)).abs() < 1e-9);
        // The farther cell from both driver and sense sees more resistance.
        assert!(e[(1, 0)] < e[(0, 1)]);
        // All effective conductances shrink.
        assert!(e
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .all(|(&ev, &gv)| ev < gv));
    }

    #[test]
    fn deselected_cells_stay_deselected() {
        let g = Matrix::from_rows(&[&[0.0, 1e-4]]).unwrap();
        let e = series_effective_conductances(&g, 1.0).unwrap();
        assert_eq!(e[(0, 0)], 0.0);
    }

    #[test]
    fn degradation_grows_with_array_size() {
        // Same cell conductance, larger array -> worse worst-case cell.
        let small = Matrix::filled(8, 8, 1e-4);
        let large = Matrix::filled(64, 64, 1e-4);
        let es = series_effective_conductances(&small, 1.0).unwrap();
        let el = series_effective_conductances(&large, 1.0).unwrap();
        let worst_small = es[(7, 0)] / 1e-4;
        let worst_large = el[(63, 0)] / 1e-4;
        assert!(worst_large < worst_small);
    }

    #[test]
    fn invalid_resistance_rejected() {
        let g = Matrix::filled(2, 2, 1e-4);
        assert!(series_effective_conductances(&g, -1.0).is_err());
        assert!(series_effective_conductances(&g, f64::NAN).is_err());
    }
}

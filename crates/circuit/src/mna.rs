//! Modified nodal analysis (MNA) for small analog networks.
//!
//! A general-purpose DC netlist solver: conductances, independent voltage
//! sources, and ideal op-amps (nullor stamps). The analytic MVM/INV
//! solutions in [`crate::mvm`]/[`crate::inv`] were *derived* from these
//! node equations; this module lets tests re-derive them numerically from
//! an explicitly assembled netlist, closing the loop on the circuit
//! algebra. It is also the building block for one-off topologies (e.g.
//! the analog summation at the INV input node in BlockAMC's step 3).
//!
//! Formulation: unknowns are all non-ground node voltages plus one
//! current per voltage source and per op-amp output. Ideal op-amps are
//! nullors: the input pair contributes the constraint `v⁺ = v⁻` (and
//! draws no current); the output contributes an unknown current that
//! makes the constraint satisfiable.

use amc_linalg::{lu::LuFactor, Matrix};

use crate::{CircuitError, Result};

/// A node handle. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(usize);

/// The ground node.
pub const GROUND: Node = Node(0);

/// A DC netlist under construction.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Number of nodes including ground.
    node_count: usize,
    /// `(a, b, conductance)` elements.
    conductances: Vec<(usize, usize, f64)>,
    /// `(plus, minus, volts)` independent sources.
    vsources: Vec<(usize, usize, f64)>,
    /// `(v_plus, v_minus, output)` ideal op-amps.
    opamps: Vec<(usize, usize, usize)>,
}

/// A solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Node voltages, index 0 = ground = 0 V.
    pub node_voltages: Vec<f64>,
    /// Currents through the voltage sources (positive flowing from `+`
    /// terminal through the source to `-`), one per source in insertion
    /// order.
    pub source_currents: Vec<f64>,
    /// Op-amp output currents, one per op-amp in insertion order.
    pub opamp_currents: Vec<f64>,
}

impl Netlist {
    /// Creates an empty netlist (ground pre-allocated).
    pub fn new() -> Self {
        Netlist {
            node_count: 1,
            ..Default::default()
        }
    }

    /// Allocates a new node.
    pub fn node(&mut self) -> Node {
        let n = Node(self.node_count);
        self.node_count += 1;
        n
    }

    /// Allocates `k` nodes at once.
    pub fn nodes(&mut self, k: usize) -> Vec<Node> {
        (0..k).map(|_| self.node()).collect()
    }

    /// Adds a conductance between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for negative / non-finite
    /// conductance or an unknown node.
    pub fn conductance(&mut self, a: Node, b: Node, siemens: f64) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(siemens.is_finite() && siemens >= 0.0) {
            return Err(CircuitError::config(format!(
                "conductance must be finite and non-negative, got {siemens}"
            )));
        }
        if siemens > 0.0 {
            self.conductances.push((a.0, b.0, siemens));
        }
        Ok(())
    }

    /// Adds an independent voltage source (`plus` − `minus` = `volts`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for a non-finite voltage or
    /// an unknown node.
    pub fn voltage_source(&mut self, plus: Node, minus: Node, volts: f64) -> Result<()> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        if !volts.is_finite() {
            return Err(CircuitError::config("source voltage must be finite"));
        }
        self.vsources.push((plus.0, minus.0, volts));
        Ok(())
    }

    /// Adds an ideal op-amp (nullor): infinite gain forces
    /// `v(v_plus) = v(v_minus)` with zero input current; the output node
    /// sources whatever current is needed.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for an unknown node.
    pub fn ideal_opamp(&mut self, v_plus: Node, v_minus: Node, output: Node) -> Result<()> {
        self.check_node(v_plus)?;
        self.check_node(v_minus)?;
        self.check_node(output)?;
        self.opamps.push((v_plus.0, v_minus.0, output.0));
        Ok(())
    }

    fn check_node(&self, n: Node) -> Result<()> {
        if n.0 < self.node_count {
            Ok(())
        } else {
            Err(CircuitError::config(format!(
                "node {} was not allocated on this netlist",
                n.0
            )))
        }
    }

    /// Solves the DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NoOperatingPoint`] if the MNA system is
    /// singular (floating nodes, contradictory sources, an op-amp with no
    /// feedback path, …).
    pub fn solve(&self) -> Result<OperatingPoint> {
        let nn = self.node_count - 1; // unknown node voltages (ground excluded)
        let extra = self.vsources.len() + self.opamps.len();
        let dim = nn + extra;
        if dim == 0 {
            return Ok(OperatingPoint {
                node_voltages: vec![0.0],
                source_currents: vec![],
                opamp_currents: vec![],
            });
        }
        let mut m = Matrix::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];
        // Map node index -> unknown index (ground maps to None).
        let ui = |node: usize| -> Option<usize> { node.checked_sub(1) };

        for &(a, b, g) in &self.conductances {
            if let Some(i) = ui(a) {
                m[(i, i)] += g;
                if let Some(j) = ui(b) {
                    m[(i, j)] -= g;
                }
            }
            if let Some(j) = ui(b) {
                m[(j, j)] += g;
                if let Some(i) = ui(a) {
                    m[(j, i)] -= g;
                }
            }
        }
        for (k, &(p, q, v)) in self.vsources.iter().enumerate() {
            let row = nn + k;
            // Branch current unknown: flows out of `plus` into the network.
            if let Some(i) = ui(p) {
                m[(i, row)] += 1.0;
                m[(row, i)] += 1.0;
            }
            if let Some(j) = ui(q) {
                m[(j, row)] -= 1.0;
                m[(row, j)] -= 1.0;
            }
            rhs[row] = v;
        }
        for (k, &(vp, vm, out)) in self.opamps.iter().enumerate() {
            let row = nn + self.vsources.len() + k;
            // Constraint row: v(vp) − v(vm) = 0.
            if let Some(i) = ui(vp) {
                m[(row, i)] += 1.0;
            }
            if let Some(j) = ui(vm) {
                m[(row, j)] -= 1.0;
            }
            // Output current column: injected at the output node.
            if let Some(o) = ui(out) {
                m[(o, row)] += 1.0;
            }
        }
        let lu = LuFactor::new(&m)
            .map_err(|e| CircuitError::no_op_point(format!("MNA system is singular: {e}")))?;
        let sol = lu.solve(&rhs)?;
        let mut node_voltages = vec![0.0; self.node_count];
        node_voltages[1..].copy_from_slice(&sol[..nn]);
        let source_currents = sol[nn..nn + self.vsources.len()].to_vec();
        let opamp_currents = sol[nn + self.vsources.len()..].to_vec();
        Ok(OperatingPoint {
            node_voltages,
            source_currents,
            opamp_currents,
        })
    }

    /// Voltage of a node in a solved operating point.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this netlist.
    pub fn voltage(&self, op: &OperatingPoint, node: Node) -> f64 {
        op.node_voltages[node.0]
    }

    /// Exports the node-conductance matrix of the resistive part of the
    /// netlist: the grounded Laplacian `G` over the non-ground nodes
    /// (`G[i][j] = −g_ij` for `i ≠ j`, `G[i][i] = Σ` conductances at
    /// node `i+1`, ground ties contributing only to the diagonal).
    ///
    /// For a purely resistive netlist this is exactly the matrix of the
    /// node equations `G·v = i_injected` — symmetric, diagonally
    /// dominant, and SPD whenever every connected component has a path
    /// to ground. It is how circuit-shaped workloads (power-delivery
    /// networks, grounded resistor meshes) become linear-system
    /// instances for the solver stack. Voltage sources and op-amps are
    /// *not* represented — their MNA rows are constraints, not
    /// conductances; use [`Netlist::solve`] for netlists that have them.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] if the netlist has no
    /// non-ground nodes.
    pub fn conductance_matrix(&self) -> Result<Matrix> {
        let nn = self.node_count - 1;
        if nn == 0 {
            return Err(CircuitError::config(
                "conductance matrix needs at least one non-ground node",
            ));
        }
        let mut g_mat = Matrix::zeros(nn, nn);
        let ui = |node: usize| -> Option<usize> { node.checked_sub(1) };
        for &(a, b, g) in &self.conductances {
            if let Some(i) = ui(a) {
                g_mat[(i, i)] += g;
                if let Some(j) = ui(b) {
                    g_mat[(i, j)] -= g;
                }
            }
            if let Some(j) = ui(b) {
                g_mat[(j, j)] += g;
                if let Some(i) = ui(a) {
                    g_mat[(j, i)] -= g;
                }
            }
        }
        Ok(g_mat)
    }
}

/// Builds and solves the complete Fig. 1(a) **MVM netlist** for a
/// (single, non-negative) conductance matrix: input sources on the bit
/// lines, TIAs (op-amp + feedback `g0`) on the word lines. Returns the
/// TIA output voltages.
///
/// This is the from-first-principles cross-check of
/// [`crate::mvm::solve_mvm`].
///
/// # Errors
///
/// Netlist and operating-point failures.
pub fn mvm_netlist(g: &Matrix, g0: f64, v_in: &[f64]) -> Result<Vec<f64>> {
    if v_in.len() != g.cols() {
        return Err(CircuitError::ShapeMismatch {
            op: "mvm_netlist",
            expected: g.cols(),
            got: v_in.len(),
        });
    }
    let mut net = Netlist::new();
    let bl = net.nodes(g.cols());
    let wl = net.nodes(g.rows()); // virtual-ground nodes (op-amp inverting inputs)
    let out = net.nodes(g.rows());
    for (j, &b) in bl.iter().enumerate() {
        net.voltage_source(b, GROUND, v_in[j])?;
    }
    for i in 0..g.rows() {
        for j in 0..g.cols() {
            net.conductance(bl[j], wl[i], g[(i, j)])?;
        }
        net.conductance(wl[i], out[i], g0)?; // TIA feedback
        net.ideal_opamp(GROUND, wl[i], out[i])?; // non-inverting input grounded
    }
    let op = net.solve()?;
    Ok(out.iter().map(|&n| net.voltage(&op, n)).collect())
}

/// Builds and solves the complete Fig. 1(b) **INV netlist** for a
/// (single, non-negative) conductance matrix: inputs injected through
/// `g0` into the word-line virtual grounds, op-amp outputs feeding the
/// bit lines. Returns the op-amp output voltages.
///
/// This is the from-first-principles cross-check of
/// [`crate::inv::solve_inv`].
///
/// # Errors
///
/// Netlist and operating-point failures (a singular `g/g0` has no
/// operating point).
pub fn inv_netlist(g: &Matrix, g0: f64, v_in: &[f64]) -> Result<Vec<f64>> {
    if !g.is_square() || v_in.len() != g.rows() {
        return Err(CircuitError::ShapeMismatch {
            op: "inv_netlist",
            expected: g.rows(),
            got: v_in.len(),
        });
    }
    let n = g.rows();
    let mut net = Netlist::new();
    let input = net.nodes(n); // driven input terminals
    let wl = net.nodes(n); // virtual grounds
    let out = net.nodes(n); // op-amp outputs feeding the bit lines
    for i in 0..n {
        net.voltage_source(input[i], GROUND, v_in[i])?;
        net.conductance(input[i], wl[i], g0)?;
        for j in 0..n {
            net.conductance(out[j], wl[i], g[(i, j)])?;
        }
        net.ideal_opamp(GROUND, wl[i], out[i])?;
    }
    let op = net.solve()?;
    Ok(out.iter().map(|&n| net.voltage(&op, n)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::vector;

    #[test]
    fn voltage_divider() {
        let mut net = Netlist::new();
        let top = net.node();
        let mid = net.node();
        net.voltage_source(top, GROUND, 3.0).unwrap();
        net.conductance(top, mid, 1.0).unwrap(); // 1 Ω
        net.conductance(mid, GROUND, 0.5).unwrap(); // 2 Ω
        let op = net.solve().unwrap();
        assert!((net.voltage(&op, mid) - 2.0).abs() < 1e-12);
        // Source current: 1 A through the divider (3 V over 3 Ω total).
        assert!((op.source_currents[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverting_amplifier() {
        // Classic inverting amp: gain = −g_in/g_fb = −2.
        let mut net = Netlist::new();
        let vin = net.node();
        let vm = net.node();
        let vout = net.node();
        net.voltage_source(vin, GROUND, 0.5).unwrap();
        net.conductance(vin, vm, 2.0).unwrap();
        net.conductance(vm, vout, 1.0).unwrap();
        net.ideal_opamp(GROUND, vm, vout).unwrap();
        let op = net.solve().unwrap();
        assert!((net.voltage(&op, vout) + 1.0).abs() < 1e-12);
        assert!(net.voltage(&op, vm).abs() < 1e-12, "virtual ground");
    }

    #[test]
    fn mvm_netlist_matches_analytic_solution() {
        let g = Matrix::from_rows(&[&[1e-4, 0.5e-4], &[0.25e-4, 0.75e-4]]).unwrap();
        let g0 = 1e-4;
        let v_in = [0.4, -0.2];
        let from_netlist = mvm_netlist(&g, g0, &v_in).unwrap();
        let analytic = crate::mvm::solve_mvm(
            &g,
            &Matrix::zeros(2, 2),
            g0,
            &v_in,
            crate::opamp::GainModel::Ideal,
        )
        .unwrap();
        assert!(vector::approx_eq(&from_netlist, &analytic.volts, 1e-10));
    }

    #[test]
    fn inv_netlist_matches_analytic_solution() {
        let g = Matrix::from_rows(&[&[2e-4, 0.5e-4], &[0.25e-4, 1.5e-4]]).unwrap();
        let g0 = 1e-4;
        let b = [0.3, -0.1];
        let from_netlist = inv_netlist(&g, g0, &b).unwrap();
        let analytic = crate::inv::solve_inv(
            &g,
            &Matrix::zeros(2, 2),
            g0,
            &b,
            crate::opamp::GainModel::Ideal,
        )
        .unwrap();
        assert!(vector::approx_eq(&from_netlist, &analytic.volts, 1e-10));
    }

    #[test]
    fn inv_netlist_solves_the_linear_system() {
        let g = Matrix::from_rows(&[&[3e-4, 1e-4], &[1e-4, 2e-4]]).unwrap();
        let g0 = 1e-4;
        let b = [0.2, 0.1];
        let v = inv_netlist(&g, g0, &b).unwrap();
        // Ĝ·v = −b with Ĝ = g/g0.
        let g_hat = g.scaled(1.0 / g0);
        let gv = g_hat.matvec(&v).unwrap();
        assert!(vector::approx_eq(&gv, &vector::neg(&b), 1e-10));
    }

    #[test]
    fn rectangular_mvm_netlist() {
        let g = Matrix::from_rows(&[&[1e-4, 0.0, 0.5e-4]]).unwrap(); // 1 WL x 3 BL
        let v = mvm_netlist(&g, 1e-4, &[0.1, 0.9, 0.2]).unwrap();
        assert_eq!(v.len(), 1);
        assert!((v[0] + (0.1 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn singular_inv_netlist_has_no_operating_point() {
        let g = Matrix::filled(2, 2, 1e-4);
        assert!(matches!(
            inv_netlist(&g, 1e-4, &[0.1, 0.1]),
            Err(CircuitError::NoOperatingPoint { .. })
        ));
    }

    #[test]
    fn validation_errors() {
        let mut net = Netlist::new();
        let a = net.node();
        assert!(net.conductance(a, GROUND, -1.0).is_err());
        assert!(net.conductance(a, Node(99), 1.0).is_err());
        assert!(net.voltage_source(a, GROUND, f64::NAN).is_err());
        assert!(net.ideal_opamp(a, GROUND, Node(99)).is_err());
        let g = Matrix::zeros(2, 2);
        assert!(mvm_netlist(&g, 1e-4, &[0.0]).is_err());
        assert!(inv_netlist(&Matrix::zeros(2, 3), 1e-4, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn conductance_matrix_exports_the_node_equations() {
        // Y network: a -(1S)- b, a -(2S)- ground, b -(0.5S)- ground.
        let mut net = Netlist::new();
        let a = net.node();
        let b = net.node();
        net.conductance(a, b, 1.0).unwrap();
        net.conductance(a, GROUND, 2.0).unwrap();
        net.conductance(b, GROUND, 0.5).unwrap();
        let g = net.conductance_matrix().unwrap();
        let expect = Matrix::from_rows(&[&[3.0, -1.0], &[-1.0, 1.5]]).unwrap();
        assert!(g.approx_eq(&expect, 0.0));
        // Grounded network: SPD and consistent with a source solve.
        assert!(amc_linalg::cholesky::is_spd(&g, 0.0));
        let mut driven = net.clone();
        driven.voltage_source(a, GROUND, 1.0).unwrap();
        let op = driven.solve().unwrap();
        // G·v at node b must balance to zero injected current.
        let v = [driven.voltage(&op, a), driven.voltage(&op, b)];
        let i_b = g[(1, 0)] * v[0] + g[(1, 1)] * v[1];
        assert!(i_b.abs() < 1e-12, "KCL at the undriven node: {i_b}");
        // A netlist with only ground has no matrix to export.
        assert!(Netlist::new().conductance_matrix().is_err());
    }

    #[test]
    fn empty_netlist_solves_trivially() {
        let net = Netlist::new();
        let op = net.solve().unwrap();
        assert_eq!(op.node_voltages, vec![0.0]);
    }

    #[test]
    fn floating_node_detected() {
        let mut net = Netlist::new();
        let a = net.node();
        let _floating = net.node();
        net.voltage_source(a, GROUND, 1.0).unwrap();
        assert!(matches!(
            net.solve(),
            Err(CircuitError::NoOperatingPoint { .. })
        ));
    }
}

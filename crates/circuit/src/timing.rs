//! Settling-time models for the AMC circuits.
//!
//! Neither circuit is instantaneous: the op-amps' finite gain-bandwidth
//! product (GBWP) sets the dynamics.
//!
//! * **MVM** — the computing time is *linear in the maximal sum of
//!   conductances along a row of the array* and controlled by the feedback
//!   conductance and GBWP of the TIAs (Sun & Huang, IEEE TCAS-II 68(8),
//!   2021 — the paper's ref. \[22\]). The dominant closed-loop time constant
//!   of TIA `i` is `(1 + Ŝ_i) / ω_gbw` with `Ŝ_i` the normalized row sum.
//! * **INV** — the time constant is set by the *minimal eigenvalue* of the
//!   normalized matrix and the op-amp GBWP (Sun et al., IEEE T-ED 67(7),
//!   2020 — the paper's ref. \[23\]): `τ ≈ 1 / (ω_gbw·λ_min)`.
//!
//! Settling to a relative accuracy `ε` multiplies either constant by
//! `ln(1/ε)`.

use amc_linalg::{lu::LuFactor, Matrix};

use crate::opamp::OpAmpSpec;
use crate::{CircuitError, Result};

/// Default settling accuracy target (0.1%), giving `ln(1/ε) ≈ 6.9`.
pub const DEFAULT_SETTLE_EPSILON: f64 = 1e-3;

/// Settling-time estimate for an MVM operation.
///
/// `max_row_sum_normalized` is `max_i Σ_j |Ĝ_ij|` — the largest normalized
/// row-conductance sum of the (combined pos+neg) array, available from
/// [`amc_device::array::CrossbarArray::max_row_conductance_sum`] divided by
/// `G₀`.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidConfig`] for an invalid op-amp spec or a
/// negative row sum.
pub fn mvm_settle_time(
    max_row_sum_normalized: f64,
    opamp: &OpAmpSpec,
    epsilon: f64,
) -> Result<f64> {
    opamp.validate()?;
    if !(max_row_sum_normalized >= 0.0 && max_row_sum_normalized.is_finite()) {
        return Err(CircuitError::config("row sum must be non-negative"));
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CircuitError::config("epsilon must lie in (0, 1)"));
    }
    let omega = std::f64::consts::TAU * opamp.gbwp_hz;
    Ok((1.0 + max_row_sum_normalized) / omega * (1.0 / epsilon).ln())
}

/// Settling-time estimate for an INV operation on the normalized matrix
/// `g_hat = G/G₀`.
///
/// Uses the magnitude of the smallest eigenvalue of the symmetric part of
/// `g_hat` (exact for the symmetric matrices the paper benchmarks;
/// a conservative proxy otherwise), estimated by inverse power iteration.
///
/// # Errors
///
/// * [`CircuitError::InvalidConfig`] for invalid spec/epsilon or a
///   non-square matrix.
/// * [`CircuitError::NoOperatingPoint`] if the matrix is singular (the
///   circuit would not settle at all).
pub fn inv_settle_time(g_hat: &Matrix, opamp: &OpAmpSpec, epsilon: f64) -> Result<f64> {
    opamp.validate()?;
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CircuitError::config("epsilon must lie in (0, 1)"));
    }
    let lambda = min_eigenvalue_magnitude(g_hat)?;
    let omega = std::f64::consts::TAU * opamp.gbwp_hz;
    Ok((1.0 / epsilon).ln() / (omega * lambda))
}

/// Estimates `|λ_min|` of the symmetric part of a square matrix by inverse
/// power iteration (a handful of LU solves).
///
/// # Errors
///
/// * [`CircuitError::InvalidConfig`] if the matrix is not square or empty.
/// * [`CircuitError::NoOperatingPoint`] if the matrix is singular.
pub fn min_eigenvalue_magnitude(a: &Matrix) -> Result<f64> {
    if !a.is_square() || a.rows() == 0 {
        return Err(CircuitError::config(
            "eigenvalue estimate requires a non-empty square matrix",
        ));
    }
    let n = a.rows();
    // Symmetric part: (A + Aᵀ)/2.
    let sym = a.add_matrix(&a.transpose())?.scaled(0.5);
    let lu = LuFactor::new(&sym)
        .map_err(|e| CircuitError::no_op_point(format!("singular matrix: {e}")))?;
    // Inverse power iteration converges to the eigenvector of the smallest
    // |eigenvalue|; 50 iterations is plenty for a timing estimate. This
    // runs for every INV settle-time estimate, so the iteration reuses
    // two scratch buffers through the borrowed linalg kernels instead of
    // allocating three vectors per pass.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let mut w = vec![0.0; n];
    let mut av = vec![0.0; n];
    let mut lambda = f64::NAN;
    for _ in 0..100 {
        lu.solve_into(&v, &mut w)?;
        let norm = amc_linalg::vector::norm2(&w);
        if norm == 0.0 {
            return Err(CircuitError::no_op_point("inverse iteration broke down"));
        }
        for (vi, &wi) in v.iter_mut().zip(&w) {
            *vi = wi / norm;
        }
        // Rayleigh quotient on the symmetric part.
        sym.matvec_into(&v, &mut av)?;
        let next = amc_linalg::vector::dot(&v, &av).abs();
        if !lambda.is_nan() && (next - lambda).abs() <= 1e-12 * next.max(1e-300) {
            lambda = next;
            break;
        }
        lambda = next;
    }
    if !lambda.is_finite() || lambda <= 0.0 {
        return Err(CircuitError::no_op_point(
            "eigenvalue estimate did not converge to a positive value",
        ));
    }
    Ok(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mvm_time_linear_in_row_sum() {
        let spec = OpAmpSpec::default_45nm();
        let t1 = mvm_settle_time(1.0, &spec, 1e-3).unwrap();
        let t2 = mvm_settle_time(3.0, &spec, 1e-3).unwrap();
        assert!((t2 / t1 - 2.0).abs() < 1e-12); // (1+3)/(1+1) = 2
        assert!(t1 > 0.0);
    }

    #[test]
    fn mvm_time_scales_with_accuracy() {
        let spec = OpAmpSpec::default_45nm();
        let loose = mvm_settle_time(1.0, &spec, 1e-2).unwrap();
        let tight = mvm_settle_time(1.0, &spec, 1e-6).unwrap();
        assert!((tight / loose - 3.0).abs() < 1e-12); // ln ratios 6/2
    }

    #[test]
    fn mvm_time_validation() {
        let spec = OpAmpSpec::default_45nm();
        assert!(mvm_settle_time(-1.0, &spec, 1e-3).is_err());
        assert!(mvm_settle_time(1.0, &spec, 0.0).is_err());
        assert!(mvm_settle_time(1.0, &spec, 1.5).is_err());
    }

    #[test]
    fn eigenvalue_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 0.5, 2.0]);
        let l = min_eigenvalue_magnitude(&a).unwrap();
        assert!((l - 0.5).abs() < 1e-9, "got {l}");
    }

    #[test]
    fn eigenvalue_of_spd_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let l = min_eigenvalue_magnitude(&a).unwrap();
        assert!((l - 1.0).abs() < 1e-9, "got {l}");
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(min_eigenvalue_magnitude(&a).is_err());
        assert!(min_eigenvalue_magnitude(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn inv_time_grows_for_ill_conditioned_matrices() {
        let spec = OpAmpSpec::default_45nm();
        let well = Matrix::identity(4);
        let ill = Matrix::from_diag(&[1.0, 1.0, 1.0, 1e-3]);
        let t_well = inv_settle_time(&well, &spec, 1e-3).unwrap();
        let t_ill = inv_settle_time(&ill, &spec, 1e-3).unwrap();
        assert!(t_ill > 100.0 * t_well);
    }

    #[test]
    fn inv_time_is_microseconds_scale_for_unit_matrix() {
        // Sanity: 10 MHz GBWP, λ=1, ε=1e-3 -> ln(1000)/(2π·1e7) ≈ 110 ns.
        let spec = OpAmpSpec::default_45nm();
        let t = inv_settle_time(&Matrix::identity(8), &spec, 1e-3).unwrap();
        assert!(t > 5e-8 && t < 5e-7, "got {t}");
    }
}

//! The [`AnalogSimulator`] facade: one entry point for simulating an AMC
//! operation end to end (interconnect transformation → circuit equilibrium
//! → saturation check → power and timing estimates).
//!
//! # Voltage vs mathematical value
//!
//! The circuits operate on *normalized* matrices (`Ĝ = A/scale` after the
//! mapping stage), so physical output voltages differ from the
//! mathematical result by the mapping scale:
//!
//! * MVM: `volts = −Ĝ·v_in` ⇒ mathematical value = `volts · scale`
//!   (equals `−A·x`).
//! * INV: `volts = −Ĝ⁻¹·v_in` ⇒ mathematical value = `volts / scale`
//!   (equals `−A⁻¹·b`).
//!
//! [`CircuitOutput`] carries both; the AMC minus sign is preserved in each
//! (the BlockAMC algorithm exploits those signs, see the paper's Fig. 2).

use amc_device::array::ProgrammedMatrix;
use amc_linalg::Matrix;

use crate::interconnect::{series_effective_conductances, InterconnectModel};
use crate::opamp::{GainModel, OpAmpSpec};
use crate::{grid, inv, mvm, power, timing, CircuitError, Result};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Op-amp model (gain, GBWP, supply, quiescent current).
    pub opamp: OpAmpSpec,
    /// Wire-resistance model.
    pub interconnect: InterconnectModel,
    /// If `true`, outputs beyond the op-amp supply rails fail the
    /// simulation with [`CircuitError::OutputSaturated`].
    pub check_saturation: bool,
    /// Settling accuracy target used by the timing estimates.
    pub settle_epsilon: f64,
}

impl SimConfig {
    /// Fully ideal circuit: infinite-gain op-amps, perfect wires, no rail
    /// checks. With ideal device programming this reproduces the numerical
    /// solver exactly — useful as a self-check.
    pub fn ideal() -> Self {
        SimConfig {
            opamp: OpAmpSpec::ideal(),
            interconnect: InterconnectModel::Ideal,
            check_saturation: false,
            settle_epsilon: timing::DEFAULT_SETTLE_EPSILON,
        }
    }

    /// The paper's circuit non-idealities: finite-gain 45 nm op-amps and
    /// 1 Ω/segment interconnect (series approximation for speed).
    pub fn paper_nonideal() -> Self {
        SimConfig {
            opamp: OpAmpSpec::default_45nm(),
            interconnect: InterconnectModel::paper_default(),
            check_saturation: false,
            settle_epsilon: timing::DEFAULT_SETTLE_EPSILON,
        }
    }

    /// Finite-gain op-amps with ideal wires — the configuration behind the
    /// paper's "ideal mapping" Fig. 6 accuracy study.
    pub fn finite_gain_only() -> Self {
        SimConfig {
            opamp: OpAmpSpec::default_45nm(),
            interconnect: InterconnectModel::Ideal,
            check_saturation: false,
            settle_epsilon: timing::DEFAULT_SETTLE_EPSILON,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for invalid op-amp or
    /// interconnect parameters, an out-of-range `settle_epsilon`, or the
    /// unsupported combination of exact-grid interconnect with finite-gain
    /// op-amps (the grid solver assumes ideal virtual grounds).
    pub fn validate(&self) -> Result<()> {
        self.opamp.validate()?;
        self.interconnect.validate()?;
        if !(self.settle_epsilon > 0.0 && self.settle_epsilon < 1.0) {
            return Err(CircuitError::config("settle_epsilon must lie in (0, 1)"));
        }
        if self.interconnect.is_exact_grid() && self.opamp.gain != GainModel::Ideal {
            return Err(CircuitError::config(
                "exact-grid interconnect requires ideal op-amps \
                 (the grid formulation assumes perfect virtual grounds)",
            ));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_nonideal()
    }
}

/// Result of one simulated AMC operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitOutput {
    /// Mathematical result including the AMC minus sign
    /// (`−A·x` for MVM, `−A⁻¹·b` for INV).
    pub values: Vec<f64>,
    /// Physical op-amp output voltages.
    pub volts: Vec<f64>,
    /// Static power at the operating point, in watts (arrays + resistors +
    /// op-amp quiescent).
    pub power_w: f64,
    /// Estimated settling time, in seconds.
    pub settle_time_s: f64,
}

/// End-to-end simulator of AMC operations on programmed arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogSimulator {
    config: SimConfig,
}

impl AnalogSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Does not panic: invalid configurations are reported by the
    /// operation methods (validation is re-run per call so a config edited
    /// in place cannot bypass it).
    pub fn new(config: SimConfig) -> Self {
        AnalogSimulator { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Effective per-array conductances after the interconnect model.
    fn effective_conductances(&self, p: &ProgrammedMatrix) -> Result<(Matrix, Matrix)> {
        match self.config.interconnect {
            InterconnectModel::Ideal | InterconnectModel::ExactGrid { .. } => {
                Ok((p.pos().conductances(), p.neg().conductances()))
            }
            InterconnectModel::SeriesApprox { r_segment } => Ok((
                series_effective_conductances(&p.pos().conductances(), r_segment)?,
                series_effective_conductances(&p.neg().conductances(), r_segment)?,
            )),
        }
    }

    /// Simulates an MVM operation: returns `−A·x` (mathematically) for the
    /// matrix `A` represented by `programmed`.
    ///
    /// # Errors
    ///
    /// Configuration, shape, convergence, and (if enabled) saturation
    /// errors.
    pub fn mvm(&self, programmed: &ProgrammedMatrix, x: &[f64]) -> Result<CircuitOutput> {
        self.config.validate()?;
        let g0 = programmed.g0();
        let (gp, gn) = self.effective_conductances(programmed)?;

        let volts = match self.config.interconnect {
            InterconnectModel::ExactGrid { r_segment } => {
                grid::mvm_exact(programmed, x, r_segment)?.volts
            }
            _ => mvm::solve_mvm(&gp, &gn, g0, x, self.config.opamp.gain)?.volts,
        };
        if self.config.check_saturation {
            self.config.opamp.check_saturation(&volts)?;
        }
        let power_w = match self.config.interconnect {
            InterconnectModel::ExactGrid { r_segment } => {
                let out = grid::mvm_exact(programmed, x, r_segment)?;
                out.array_power_w + gp.rows() as f64 * self.config.opamp.static_power_w()
            }
            _ => power::mvm_power(&gp, &gn, g0, x, &volts, &self.config.opamp)?,
        };
        let max_row = gp.add_matrix(&gn)?.norm_inf() / g0;
        let settle_time_s =
            timing::mvm_settle_time(max_row, &self.config.opamp, self.config.settle_epsilon)?;
        let scale = programmed.scale();
        Ok(CircuitOutput {
            values: volts.iter().map(|v| v * scale).collect(),
            volts,
            power_w,
            settle_time_s,
        })
    }

    /// Simulates an INV operation: returns `−A⁻¹·b` (mathematically) for
    /// the matrix `A` represented by `programmed` — i.e. solves `A·x = b`
    /// in one step, with the AMC minus sign.
    ///
    /// # Errors
    ///
    /// Configuration, shape, operating-point, and (if enabled) saturation
    /// errors.
    pub fn inv(&self, programmed: &ProgrammedMatrix, b: &[f64]) -> Result<CircuitOutput> {
        self.config.validate()?;
        let g0 = programmed.g0();
        let (gp, gn) = self.effective_conductances(programmed)?;

        let (volts, grid_power) = match self.config.interconnect {
            InterconnectModel::ExactGrid { r_segment } => {
                let out = grid::inv_exact(programmed, b, r_segment)?;
                let p = out.array_power_w;
                (out.volts, Some(p))
            }
            _ => (
                inv::solve_inv(&gp, &gn, g0, b, self.config.opamp.gain)?.volts,
                None,
            ),
        };
        if self.config.check_saturation {
            self.config.opamp.check_saturation(&volts)?;
        }
        let power_w = match grid_power {
            Some(p) => p + gp.rows() as f64 * self.config.opamp.static_power_w(),
            None => power::inv_power(&gp, &gn, g0, b, &volts, &self.config.opamp)?,
        };
        let g_hat = gp.sub_matrix(&gn)?.scaled(1.0 / g0);
        let settle_time_s =
            timing::inv_settle_time(&g_hat, &self.config.opamp, self.config.settle_epsilon)?;
        let scale = programmed.scale();
        Ok(CircuitOutput {
            values: volts.iter().map(|v| v / scale).collect(),
            volts,
            power_w,
            settle_time_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_device::mapping::MappingConfig;
    use amc_device::variation::VariationModel;
    use amc_linalg::{lu, vector};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn program(a: &Matrix, seed: u64) -> ProgrammedMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ProgrammedMatrix::program(
            a,
            &MappingConfig::paper_default(),
            &VariationModel::None,
            &mut rng,
        )
        .unwrap()
    }

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]).unwrap()
    }

    #[test]
    fn ideal_mvm_matches_mathematics() {
        let a = sample();
        let p = program(&a, 1);
        let sim = AnalogSimulator::new(SimConfig::ideal());
        let x = [0.3, -0.1];
        let out = sim.mvm(&p, &x).unwrap();
        let expect: Vec<f64> = a.matvec(&x).unwrap().iter().map(|v| -v).collect();
        assert!(vector::approx_eq(&out.values, &expect, 1e-12));
        assert!(out.power_w > 0.0);
        assert!(out.settle_time_s > 0.0);
    }

    #[test]
    fn ideal_inv_matches_numerical_solver() {
        let a = sample();
        let p = program(&a, 2);
        let sim = AnalogSimulator::new(SimConfig::ideal());
        let b = [0.4, 0.1];
        let out = sim.inv(&p, &b).unwrap();
        let x_num = lu::solve(&a, &b).unwrap();
        let expect: Vec<f64> = x_num.iter().map(|v| -v).collect();
        assert!(vector::approx_eq(&out.values, &expect, 1e-10));
    }

    #[test]
    fn volts_and_values_differ_by_scale() {
        let a = sample(); // scale = 2
        let p = program(&a, 3);
        let sim = AnalogSimulator::new(SimConfig::ideal());
        let out_mvm = sim.mvm(&p, &[0.1, 0.2]).unwrap();
        for (val, v) in out_mvm.values.iter().zip(&out_mvm.volts) {
            assert!((val - v * 2.0).abs() < 1e-15);
        }
        let out_inv = sim.inv(&p, &[0.1, 0.2]).unwrap();
        for (val, v) in out_inv.values.iter().zip(&out_inv.volts) {
            assert!((val - v / 2.0).abs() < 1e-15);
        }
    }

    #[test]
    fn finite_gain_perturbs_inv_solution() {
        let a = sample();
        let p = program(&a, 4);
        let ideal = AnalogSimulator::new(SimConfig::ideal());
        let finite = AnalogSimulator::new(SimConfig::finite_gain_only());
        let b = [0.4, 0.1];
        let vi = ideal.inv(&p, &b).unwrap();
        let vf = finite.inv(&p, &b).unwrap();
        let err = amc_linalg::metrics::relative_error(&vi.values, &vf.values);
        assert!(err > 1e-6 && err < 1e-2, "err={err}");
    }

    #[test]
    fn series_interconnect_perturbs_and_exact_grid_agrees_roughly() {
        let a = sample();
        let p = program(&a, 5);
        let b = [0.3, 0.2];
        let ideal = AnalogSimulator::new(SimConfig::ideal());
        let mut cfg = SimConfig::ideal();
        cfg.interconnect = InterconnectModel::SeriesApprox { r_segment: 20.0 };
        let series = AnalogSimulator::new(cfg);
        let mut cfg = SimConfig::ideal();
        cfg.interconnect = InterconnectModel::ExactGrid { r_segment: 20.0 };
        let exact = AnalogSimulator::new(cfg);

        let vi = ideal.inv(&p, &b).unwrap();
        let vs = series.inv(&p, &b).unwrap();
        let ve = exact.inv(&p, &b).unwrap();
        let e_series = amc_linalg::metrics::relative_error(&vi.values, &vs.values);
        let e_exact = amc_linalg::metrics::relative_error(&vi.values, &ve.values);
        assert!(e_series > 1e-6, "series model must perturb");
        assert!(e_exact > 1e-6, "exact model must perturb");
        // The approximation should agree with the exact model within ~3x
        // on this small array.
        let ratio = e_series / e_exact;
        assert!(
            (0.3..3.0).contains(&ratio),
            "series vs exact ratio {ratio} (e_series={e_series}, e_exact={e_exact})"
        );
    }

    #[test]
    fn exact_grid_with_finite_gain_is_rejected() {
        let mut cfg = SimConfig::paper_nonideal();
        cfg.interconnect = InterconnectModel::ExactGrid { r_segment: 1.0 };
        let sim = AnalogSimulator::new(cfg);
        let p = program(&sample(), 6);
        assert!(matches!(
            sim.inv(&p, &[0.1, 0.1]),
            Err(CircuitError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn saturation_check_trips() {
        // Near-singular matrix drives huge outputs.
        let a = Matrix::from_rows(&[&[1.0, 0.999], &[0.999, 1.0]]).unwrap();
        let p = program(&a, 7);
        let mut cfg = SimConfig::ideal();
        cfg.check_saturation = true;
        let sim = AnalogSimulator::new(cfg);
        let err = sim.inv(&p, &[1.0, -1.0]);
        assert!(matches!(err, Err(CircuitError::OutputSaturated { .. })));
    }

    #[test]
    fn default_config_is_paper_nonideal() {
        assert_eq!(SimConfig::default(), SimConfig::paper_nonideal());
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::ideal().validate().is_ok());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let mut cfg = SimConfig::ideal();
        cfg.settle_epsilon = 0.0;
        assert!(cfg.validate().is_err());
    }
}

//! Power-delivery-network (PDN) workload matrices.
//!
//! An on-chip power grid is a resistive mesh: metal straps partition the
//! die into a `rows x cols` grid of supply nodes, every node drains a
//! load current through the circuits under it (a load conductance to
//! ground in the small-signal DC model), and a sparse pattern of
//! package vias ties some nodes stiffly to the external supply. The IR
//! drop analysis `G·v = i_load` over that mesh is one of the highest-
//! volume linear-system workloads in electronic design automation —
//! precisely the kind of repeated same-matrix solve the BlockAMC
//! architecture amortizes array programming over.
//!
//! This module builds such grids with [`crate::mna::Netlist`] and
//! exports the node equations through
//! [`Netlist::conductance_matrix`](crate::mna::Netlist::conductance_matrix),
//! so the scenario registry gets circuit-shaped matrices that are
//! derived from an actual netlist rather than synthesized directly:
//! symmetric, diagonally dominant, SPD (every node leaks to ground),
//! with the 2-D sparsity structure real PDNs have.

use amc_linalg::Matrix;
use rand::Rng;

use crate::mna::{Netlist, GROUND};
use crate::{CircuitError, Result};

/// Geometry and electrical parameters of a PDN grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnSpec {
    /// Grid rows (supply-node rows).
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Conductance of one metal strap segment between adjacent nodes,
    /// in siemens.
    pub g_wire: f64,
    /// Per-node load conductance to ground (the circuits drawing
    /// current), in siemens.
    pub g_load: f64,
    /// Conductance of a package via tying a node to the supply, in
    /// siemens (vias are much stiffer than loads).
    pub g_via: f64,
    /// Every `via_pitch`-th node (in both directions) gets a via;
    /// `0` disables vias.
    pub via_pitch: usize,
    /// Relative uniform jitter applied to every wire and load
    /// conductance (manufacturing spread), in `[0, 1)`: each element is
    /// scaled by `1 + U(−jitter, +jitter)` from the caller's RNG.
    pub jitter_rel: f64,
}

impl PdnSpec {
    /// A representative on-chip grid: 1 S straps, 0.05 S distributed
    /// loads, 10 S vias every 4th node, 10 % manufacturing spread.
    pub fn default_grid(rows: usize, cols: usize) -> Self {
        PdnSpec {
            rows,
            cols,
            g_wire: 1.0,
            g_load: 0.05,
            g_via: 10.0,
            via_pitch: 4,
            jitter_rel: 0.10,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for an empty grid,
    /// non-positive wire/load conductance, negative via conductance, or
    /// jitter outside `[0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 {
            return Err(CircuitError::config("PDN grid must be non-empty"));
        }
        for (name, g) in [("wire", self.g_wire), ("load", self.g_load)] {
            if !(g.is_finite() && g > 0.0) {
                return Err(CircuitError::config(format!(
                    "PDN {name} conductance must be positive and finite, got {g}"
                )));
            }
        }
        if !(self.g_via.is_finite() && self.g_via >= 0.0) {
            return Err(CircuitError::config(format!(
                "PDN via conductance must be non-negative and finite, got {}",
                self.g_via
            )));
        }
        if !(self.jitter_rel.is_finite() && (0.0..1.0).contains(&self.jitter_rel)) {
            return Err(CircuitError::config(format!(
                "PDN jitter must be in [0, 1), got {}",
                self.jitter_rel
            )));
        }
        Ok(())
    }

    /// Problem size: one unknown node voltage per grid node.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }
}

/// Builds the PDN netlist of `spec` and exports its node-conductance
/// matrix (`spec.size()` square, SPD, diagonally dominant).
///
/// The matrix is the `G` of the IR-drop system `G·v = i_load`; jitter
/// draws come from `rng`, so instances are reproducible per seed.
///
/// # Errors
///
/// Parameter validation ([`PdnSpec::validate`]) and netlist failures.
pub fn pdn_matrix<R: Rng + ?Sized>(spec: &PdnSpec, rng: &mut R) -> Result<Matrix> {
    spec.validate()?;
    let mut net = Netlist::new();
    let nodes = net.nodes(spec.size());
    let at = |r: usize, c: usize| nodes[r * spec.cols + c];
    let jittered = |g: f64, rng: &mut R| -> f64 {
        if spec.jitter_rel == 0.0 {
            g
        } else {
            g * (1.0 + rng.gen_range(-spec.jitter_rel..spec.jitter_rel))
        }
    };
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            if c + 1 < spec.cols {
                let g = jittered(spec.g_wire, rng);
                net.conductance(at(r, c), at(r, c + 1), g)?;
            }
            if r + 1 < spec.rows {
                let g = jittered(spec.g_wire, rng);
                net.conductance(at(r, c), at(r + 1, c), g)?;
            }
            let g = jittered(spec.g_load, rng);
            net.conductance(at(r, c), GROUND, g)?;
            if spec.via_pitch > 0
                && spec.g_via > 0.0
                && r % spec.via_pitch == 0
                && c % spec.via_pitch == 0
            {
                net.conductance(at(r, c), GROUND, spec.g_via)?;
            }
        }
    }
    net.conductance_matrix()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_linalg::cholesky;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn pdn_matrix_is_spd_and_dominant() {
        let spec = PdnSpec::default_grid(4, 4);
        let a = pdn_matrix(&spec, &mut rng(1)).unwrap();
        assert_eq!(a.shape(), (16, 16));
        assert!(a.is_symmetric(0.0));
        assert!(a.is_diagonally_dominant());
        assert!(cholesky::is_spd(&a, 0.0));
        // Via sites carry the extra tie to ground on the diagonal.
        assert!(a[(0, 0)] > spec.g_via);
    }

    #[test]
    fn pdn_matrix_is_reproducible_per_seed() {
        let spec = PdnSpec::default_grid(3, 5);
        let a = pdn_matrix(&spec, &mut rng(7)).unwrap();
        let b = pdn_matrix(&spec, &mut rng(7)).unwrap();
        assert_eq!(a, b);
        let c = pdn_matrix(&spec, &mut rng(8)).unwrap();
        assert_ne!(a, c, "different seeds draw different jitter");
    }

    #[test]
    fn jitter_free_grid_matches_hand_stamps() {
        let spec = PdnSpec {
            rows: 1,
            cols: 3,
            g_wire: 2.0,
            g_load: 0.5,
            g_via: 0.0,
            via_pitch: 0,
            jitter_rel: 0.0,
        };
        let a = pdn_matrix(&spec, &mut rng(0)).unwrap();
        // Middle node: two straps + load on the diagonal.
        assert!((a[(1, 1)] - 4.5).abs() < 1e-15);
        assert!((a[(0, 0)] - 2.5).abs() < 1e-15);
        assert!((a[(0, 1)] + 2.0).abs() < 1e-15);
        assert_eq!(a[(0, 2)], 0.0);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut r = rng(0);
        let bad = |f: fn(&mut PdnSpec)| {
            let mut s = PdnSpec::default_grid(3, 3);
            f(&mut s);
            pdn_matrix(&s, &mut rng(0)).is_err()
        };
        assert!(bad(|s| s.rows = 0));
        assert!(bad(|s| s.cols = 0));
        assert!(bad(|s| s.g_wire = 0.0));
        assert!(bad(|s| s.g_load = -1.0));
        assert!(bad(|s| s.g_via = -1.0));
        assert!(bad(|s| s.jitter_rel = 1.0));
        assert!(pdn_matrix(&PdnSpec::default_grid(2, 2), &mut r).is_ok());
    }

    #[test]
    fn grid_solves_the_ir_drop_system() {
        // The exported matrix really is the node equation matrix: for a
        // uniform unit load current the drop is largest far from vias.
        let mut spec = PdnSpec::default_grid(5, 5);
        spec.jitter_rel = 0.0;
        spec.via_pitch = 4; // vias at the four corners
        let a = pdn_matrix(&spec, &mut rng(0)).unwrap();
        let i_load = vec![0.01; spec.size()];
        let v = amc_linalg::lu::solve(&a, &i_load).unwrap();
        let center = v[2 * 5 + 2];
        let corner = v[0];
        assert!(center > corner, "IR drop peaks away from the vias");
        assert!(v.iter().all(|&x| x > 0.0));
    }
}

use std::fmt;

/// Error type for all fallible operations in `amc-circuit`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// Invalid simulator or circuit configuration.
    InvalidConfig {
        /// Explanation of what was wrong.
        message: String,
    },
    /// Input vector shape does not match the circuit.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The circuit equilibrium does not exist or could not be computed
    /// (e.g. the effective matrix became singular under non-idealities —
    /// physically, the op-amp feedback loop has no stable operating point).
    NoOperatingPoint {
        /// Explanation of the breakdown.
        message: String,
    },
    /// An op-amp output exceeded its supply rails; the linear analysis is
    /// no longer valid.
    OutputSaturated {
        /// Index of the first saturated op-amp.
        index: usize,
        /// Voltage the linear solution demanded.
        voltage: f64,
        /// Supply limit.
        limit: f64,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(amc_linalg::LinalgError),
    /// An underlying device-model operation failed.
    Device(amc_device::DeviceError),
}

impl CircuitError {
    /// Shorthand constructor for [`CircuitError::InvalidConfig`].
    pub fn config(message: impl Into<String>) -> Self {
        CircuitError::InvalidConfig {
            message: message.into(),
        }
    }

    /// Shorthand constructor for [`CircuitError::NoOperatingPoint`].
    pub fn no_op_point(message: impl Into<String>) -> Self {
        CircuitError::NoOperatingPoint {
            message: message.into(),
        }
    }
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidConfig { message } => {
                write!(f, "invalid circuit configuration: {message}")
            }
            CircuitError::ShapeMismatch { op, expected, got } => {
                write!(f, "shape mismatch in {op}: expected {expected}, got {got}")
            }
            CircuitError::NoOperatingPoint { message } => {
                write!(f, "no circuit operating point: {message}")
            }
            CircuitError::OutputSaturated {
                index,
                voltage,
                limit,
            } => write!(
                f,
                "op-amp {index} saturated: linear solution needs {voltage:.3} V, \
                 supply limit is ±{limit:.3} V"
            ),
            CircuitError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CircuitError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Linalg(e) => Some(e),
            CircuitError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amc_linalg::LinalgError> for CircuitError {
    fn from(e: amc_linalg::LinalgError) -> Self {
        CircuitError::Linalg(e)
    }
}

impl From<amc_device::DeviceError> for CircuitError {
    fn from(e: amc_device::DeviceError) -> Self {
        CircuitError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CircuitError::config("bad gain")
            .to_string()
            .contains("bad gain"));
        assert!(CircuitError::ShapeMismatch {
            op: "mvm",
            expected: 4,
            got: 3
        }
        .to_string()
        .contains("mvm"));
        assert!(CircuitError::OutputSaturated {
            index: 2,
            voltage: 5.0,
            limit: 1.2
        }
        .to_string()
        .contains("saturated"));
    }

    #[test]
    fn wraps_sources() {
        use std::error::Error;
        let e = CircuitError::from(amc_linalg::LinalgError::Singular { pivot: 1 });
        assert!(e.source().is_some());
        let e = CircuitError::from(amc_device::DeviceError::config("x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}

//! Analog circuit simulation of in-memory analog matrix computing (AMC).
//!
//! This crate is the reproduction's substitute for the paper's HSPICE
//! simulations. The BlockAMC accuracy experiments are DC operating-point
//! analyses of linear resistive networks around (ideal or finite-gain)
//! op-amps; this crate computes the same equilibria directly:
//!
//! * [`opamp`] — op-amp models: ideal (infinite gain), finite open-loop
//!   gain, output saturation, gain-bandwidth product for timing.
//! * [`mvm`] — the matrix-vector-multiplication circuit of Fig. 1(a):
//!   transimpedance amplifiers (TIAs) collect word-line currents, giving
//!   `v_out = −(G/G₀)·v_in`.
//! * [`inv`] — the inversion circuit of Fig. 1(b): op-amp outputs feed back
//!   through the array, settling to `v_out = −(G/G₀)⁻¹·v_in`, i.e. the
//!   circuit *solves the linear system in one step*.
//! * [`interconnect`] — wire-resistance models.
//!   [`interconnect::InterconnectModel::SeriesApprox`] folds per-cell
//!   accumulated wire resistance into the conductances in O(m·n);
//!   [`grid::ResistiveGrid`] solves the *exact* 2-D resistive ladder
//!   network (every wire segment an explicit resistor) via sparse
//!   conjugate gradients — bit-for-bit the paper's circuit at 1 Ω/segment.
//! * [`timing`] — settling-time estimates: MVM time is linear in the
//!   largest row-conductance sum (Sun & Huang, TCAS-II 2021); INV time is
//!   set by the smallest eigenvalue of the normalized matrix and the
//!   op-amp GBWP (Sun et al., T-ED 2020).
//! * [`power`] — static power of arrays and op-amps at the DC operating
//!   point.
//! * [`mna`] / [`pdn`] — general modified nodal analysis for one-off
//!   netlists, and power-delivery-network grids exported as SPD
//!   linear-system workloads for the scenario registry.
//! * [`sim`] — the [`sim::AnalogSimulator`] facade combining all of the
//!   above; this is what the BlockAMC engine drives.
//!
//! # Example
//!
//! ```
//! use amc_circuit::sim::{AnalogSimulator, SimConfig};
//! use amc_device::array::ProgrammedMatrix;
//! use amc_device::mapping::MappingConfig;
//! use amc_device::variation::VariationModel;
//! use amc_linalg::Matrix;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), amc_circuit::CircuitError> {
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let programmed = ProgrammedMatrix::program(
//!     &a,
//!     &MappingConfig::paper_default(),
//!     &VariationModel::None,
//!     &mut rng,
//! )?;
//! let sim = AnalogSimulator::new(SimConfig::ideal());
//! // The INV circuit solves A·x = b in one step (output carries a minus
//! // sign; voltages are in normalized units here, see `sim`).
//! let out = sim.inv(&programmed, &[0.3, 0.4])?;
//! let x: Vec<f64> = out.values.iter().map(|v| -v).collect();
//! let b = a.matvec(&x)?;
//! assert!((b[0] - 0.3).abs() < 1e-9 && (b[1] - 0.4).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod grid;
pub mod interconnect;
pub mod inv;
pub mod mna;
pub mod mvm;
pub mod noise;
pub mod opamp;
pub mod pdn;
pub mod power;
pub mod sim;
pub mod timing;
pub mod transient;

pub use error::CircuitError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;

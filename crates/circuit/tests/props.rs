//! Property-based tests of the circuit-simulation invariants.

use amc_circuit::inv::solve_inv;
use amc_circuit::mvm::solve_mvm;
use amc_circuit::opamp::GainModel;
use amc_linalg::{generate, vector, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const G0: f64 = 1e-4;

/// A well-posed pair of conductance arrays (from a diagonally dominant
/// signed matrix) plus an input vector.
fn circuit_case() -> impl Strategy<Value = (Matrix, Matrix, Vec<f64>)> {
    (2usize..=8, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generate::diagonally_dominant(n, 1.0, &mut rng).unwrap();
        let normalized = a.scaled(1.0 / a.max_abs());
        let (pos, neg) = normalized.split_signs();
        let v = generate::random_vector(n, &mut rng);
        (pos.scaled(G0), neg.scaled(G0), v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mvm_is_linear((gp, gn, v) in circuit_case(), alpha in -3.0f64..3.0) {
        let out1 = solve_mvm(&gp, &gn, G0, &v, GainModel::Ideal).unwrap();
        let scaled_in = vector::scale(&v, alpha);
        let out2 = solve_mvm(&gp, &gn, G0, &scaled_in, GainModel::Ideal).unwrap();
        let expect = vector::scale(&out1.volts, alpha);
        prop_assert!(vector::approx_eq(&out2.volts, &expect,
            1e-9 * vector::norm_inf(&expect).max(1.0)));
    }

    #[test]
    fn inv_then_mvm_is_identity((gp, gn, v) in circuit_case()) {
        let x = solve_inv(&gp, &gn, G0, &v, GainModel::Ideal).unwrap();
        let back = solve_mvm(&gp, &gn, G0, &x.volts, GainModel::Ideal).unwrap();
        // MVM(-Ĝ⁻¹·(−v)) … circuit algebra: Ĝ·x = −v, MVM returns −Ĝ·x = v.
        prop_assert!(vector::approx_eq(&back.volts, &v,
            1e-7 * vector::norm_inf(&v).max(1.0)));
    }

    #[test]
    fn finite_gain_converges_to_ideal((gp, gn, v) in circuit_case()) {
        let ideal = solve_inv(&gp, &gn, G0, &v, GainModel::Ideal).unwrap();
        let mut prev_err = f64::INFINITY;
        for a0 in [1e2, 1e4, 1e6] {
            let finite = solve_inv(&gp, &gn, G0, &v, GainModel::Finite { a0 }).unwrap();
            let err = amc_linalg::metrics::relative_error_l2(&ideal.volts, &finite.volts);
            prop_assert!(err <= prev_err + 1e-12, "error must shrink with gain");
            prev_err = err;
        }
        prop_assert!(prev_err < 1e-4);
    }

    #[test]
    fn series_interconnect_only_reduces_conductance(
        (gp, _gn, _v) in circuit_case(),
        r_seg in 0.1f64..50.0,
    ) {
        use amc_circuit::interconnect::series_effective_conductances;
        let eff = series_effective_conductances(&gp, r_seg).unwrap();
        for (&e, &g) in eff.as_slice().iter().zip(gp.as_slice()) {
            if g == 0.0 {
                prop_assert_eq!(e, 0.0);
            } else {
                prop_assert!(e < g && e > 0.0);
            }
        }
    }

    #[test]
    fn grid_sense_currents_superpose(
        (gp, _gn, v) in circuit_case(),
        r_seg in 0.5f64..10.0,
    ) {
        use amc_circuit::grid::ResistiveGrid;
        let grid = ResistiveGrid::new(&gp, r_seg).unwrap();
        let s_full = grid.solve(&v).unwrap();
        let half: Vec<f64> = v.iter().map(|x| x / 2.0).collect();
        let s_half = grid.solve(&half).unwrap();
        for (f, h) in s_full.sense_currents.iter().zip(&s_half.sense_currents) {
            prop_assert!((f - 2.0 * h).abs() < 1e-12 + 1e-9 * f.abs());
        }
    }

    #[test]
    fn power_is_non_negative((gp, gn, v) in circuit_case()) {
        use amc_circuit::opamp::OpAmpSpec;
        use amc_circuit::power;
        let out = solve_mvm(&gp, &gn, G0, &v, GainModel::Ideal).unwrap();
        let p = power::mvm_power(&gp, &gn, G0, &v, &out.volts, &OpAmpSpec::ideal()).unwrap();
        prop_assert!(p >= 0.0);
        let x = solve_inv(&gp, &gn, G0, &v, GainModel::Ideal).unwrap();
        let p = power::inv_power(&gp, &gn, G0, &v, &x.volts, &OpAmpSpec::ideal()).unwrap();
        prop_assert!(p > 0.0);
    }

    #[test]
    fn settle_time_estimates_are_positive_and_finite((gp, gn, _v) in circuit_case()) {
        use amc_circuit::opamp::OpAmpSpec;
        use amc_circuit::timing;
        let g_hat = gp.sub_matrix(&gn).unwrap().scaled(1.0 / G0);
        let t = timing::inv_settle_time(&g_hat, &OpAmpSpec::ideal(), 1e-3).unwrap();
        prop_assert!(t.is_finite() && t > 0.0);
        let row = gp.add_matrix(&gn).unwrap().norm_inf() / G0;
        let t = timing::mvm_settle_time(row, &OpAmpSpec::ideal(), 1e-3).unwrap();
        prop_assert!(t.is_finite() && t > 0.0);
    }
}

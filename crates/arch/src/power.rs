//! Power model (Fig. 10(b)).

use crate::inventory::{component_counts, SolverKind};
use crate::params::ComponentParams;
use crate::Result;

/// Power breakdown of one solver, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// The architecture.
    pub kind: SolverKind,
    /// Problem size.
    pub n: usize,
    /// Op-amp power (`N·V_s·I_q`, eq. 7), W.
    pub opa: f64,
    /// DAC power, W.
    pub dac: f64,
    /// ADC power, W.
    pub adc: f64,
    /// RRAM array power, W.
    pub rram: f64,
}

impl PowerBreakdown {
    /// Total power, W.
    pub fn total(&self) -> f64 {
        self.opa + self.dac + self.adc + self.rram
    }
}

/// Computes the power breakdown of `kind` for an `n × n` problem.
///
/// # Errors
///
/// Propagates parameter-validation and inventory errors.
pub fn power_breakdown(
    kind: SolverKind,
    n: usize,
    params: &ComponentParams,
) -> Result<PowerBreakdown> {
    params.validate()?;
    let c = component_counts(kind, n)?;
    Ok(PowerBreakdown {
        kind,
        n,
        opa: c.opa as f64 * params.power_opa_w,
        dac: c.dac as f64 * params.power_dac_w,
        adc: c.adc as f64 * params.power_adc_w,
        rram: c.rram_cells as f64 * params.power_cell_w,
    })
}

/// Relative saving of `candidate` versus `baseline` (positive = lower).
pub fn power_saving(baseline: &PowerBreakdown, candidate: &PowerBreakdown) -> f64 {
    1.0 - candidate.total() / baseline.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_512(kind: SolverKind) -> PowerBreakdown {
        power_breakdown(kind, 512, &ComponentParams::calibrated_45nm()).unwrap()
    }

    #[test]
    fn savings_match_paper_fig10b() {
        // Paper: one-stage −40%, two-stage −37.4% vs original.
        let orig = at_512(SolverKind::OriginalAmc);
        let one = at_512(SolverKind::OneStage);
        let two = at_512(SolverKind::TwoStage);
        let s1 = power_saving(&orig, &one);
        let s2 = power_saving(&orig, &two);
        assert!((s1 - 0.40).abs() < 0.005, "one-stage saving {s1}");
        assert!((s2 - 0.374).abs() < 0.005, "two-stage saving {s2}");
    }

    #[test]
    fn original_total_is_fig10_scale() {
        // The Fig. 10(b) axis tops out around 140 mW; the calibrated
        // original solver draws 128 mW.
        let orig = at_512(SolverKind::OriginalAmc);
        assert!(
            (orig.total() - 0.128).abs() < 0.002,
            "total {}",
            orig.total()
        );
    }

    #[test]
    fn adc_dominates_periphery_power() {
        // RePAST-class interfaces: ADC is the most power-hungry channel.
        let orig = at_512(SolverKind::OriginalAmc);
        assert!(orig.adc > orig.dac);
        assert!(orig.adc > orig.opa);
    }

    #[test]
    fn rram_power_equal_across_solvers() {
        let orig = at_512(SolverKind::OriginalAmc);
        let two = at_512(SolverKind::TwoStage);
        assert!((orig.rram - two.rram).abs() < 1e-12);
    }

    #[test]
    fn two_stage_sits_between_original_and_one_stage() {
        let orig = at_512(SolverKind::OriginalAmc).total();
        let one = at_512(SolverKind::OneStage).total();
        let two = at_512(SolverKind::TwoStage).total();
        assert!(one < two && two < orig);
    }
}

//! Area / power / energy / latency models for AMC solvers.
//!
//! Reproduces the macro performance analysis of the BlockAMC paper
//! (§IV.B, Fig. 10): component inventories for the original single-array
//! AMC solver, the one-stage BlockAMC macro, and the two-stage solver,
//! multiplied by a calibrated 45 nm component library.
//!
//! The paper's headline numbers at `n = 512`:
//!
//! | Solver      | Area (mm²) | Area saving | Power saving |
//! |-------------|-----------:|------------:|-------------:|
//! | Original    |    0.01577 |           — |            — |
//! | One-stage   |    0.00807 |       48.3% |          40% |
//! | Two-stage   |    0.01383 |       12.3% |        37.4% |
//!
//! [`params::ComponentParams::calibrated_45nm`] documents how the unit
//! areas/powers were fitted to those totals; [`report`] regenerates the
//! figure.
//!
//! # Example
//!
//! ```
//! use amc_arch::inventory::SolverKind;
//! use amc_arch::params::ComponentParams;
//! use amc_arch::area::area_breakdown;
//!
//! # fn main() -> Result<(), amc_arch::ArchError> {
//! let p = ComponentParams::calibrated_45nm();
//! let orig = area_breakdown(SolverKind::OriginalAmc, 512, &p)?;
//! let one = area_breakdown(SolverKind::OneStage, 512, &p)?;
//! assert!(one.total() < 0.55 * orig.total()); // ≈48% smaller
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
mod error;
pub mod inventory;
pub mod latency;
pub mod params;
pub mod power;
pub mod report;
pub mod scaling;

pub use error::ArchError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, ArchError>;

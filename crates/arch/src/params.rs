//! The 45 nm component library.
//!
//! The paper estimates area and power from four component classes — OPA,
//! DAC, ADC, and RRAM array — with "parameters for estimating the area and
//! power of ADCs and DACs refer\[ring\] to previous works (RePAST)" and OPA
//! power from `P_OPA = N·V_s·I_q` (eq. 7). The paper does not tabulate the
//! unit values, so this reproduction *calibrates* them against the
//! published totals; the fit is documented per field below and verified by
//! unit tests.

/// Per-unit area and power of the four component classes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentParams {
    /// Area of one operational amplifier, mm².
    pub area_opa_mm2: f64,
    /// Area of one DAC channel, mm².
    pub area_dac_mm2: f64,
    /// Area of one ADC channel, mm².
    pub area_adc_mm2: f64,
    /// Area of one RRAM cell (1T1R), mm².
    pub area_cell_mm2: f64,
    /// Static power of one op-amp (`V_s·I_q`), W.
    pub power_opa_w: f64,
    /// Power of one DAC channel, W.
    pub power_dac_w: f64,
    /// Power of one ADC channel, W.
    pub power_adc_w: f64,
    /// Average signal-dependent power per RRAM cell, W.
    pub power_cell_w: f64,
}

impl ComponentParams {
    /// Unit parameters calibrated to reproduce the paper's Fig. 10 totals
    /// at `n = 512`.
    ///
    /// Derivation (all at n = 512, using the inventories in
    /// [`crate::inventory`]):
    ///
    /// * Area. Original total 0.01577 mm² and one-stage total
    ///   0.00807 mm² differ only by halving the periphery counts, so
    ///   periphery area is `2·(0.01577 − 0.00807) = 0.01541 mm²` (512
    ///   channels → 30.1 µm²/channel) and the RRAM array is the remaining
    ///   0.00037 mm² (512² cells → 1.41e-9 mm²/cell). The two-stage total
    ///   0.01383 mm² then splits the periphery into OPA (count n) vs
    ///   DAC+ADC (count n/2): `256·a_opa = 0.01383 − 0.00807` →
    ///   `a_opa = 22.5 µm²`, leaving 7.6 µm² for DAC+ADC, split 2.6/5.0
    ///   (ADC ≈ 2× DAC, consistent with RePAST-class interfaces).
    /// * Power. OPA power is `V_s·I_q = 1.3 V × 10 µA = 13 µW` (eq. 7
    ///   with the 45 nm op-amp of `amc-circuit`). Solving the same three
    ///   totals with savings 40% (one-stage) and 37.4% (two-stage) yields
    ///   a 128 mW original solver: DAC 62 µW, ADC 125 µW, and an RRAM
    ///   array draw of 25.6 mW (512² cells → 97.7 nW/cell).
    pub fn calibrated_45nm() -> Self {
        ComponentParams {
            area_opa_mm2: 2.25e-5,
            area_dac_mm2: 2.6e-6,
            area_adc_mm2: 5.0e-6,
            area_cell_mm2: 1.41e-9,
            power_opa_w: 1.3e-5,
            power_dac_w: 6.2e-5,
            power_adc_w: 1.25e-4,
            power_cell_w: 9.7656e-8,
        }
    }

    /// Validates that all parameters are positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ArchError::InvalidConfig`] otherwise.
    pub fn validate(&self) -> crate::Result<()> {
        let vals = [
            self.area_opa_mm2,
            self.area_dac_mm2,
            self.area_adc_mm2,
            self.area_cell_mm2,
            self.power_opa_w,
            self.power_dac_w,
            self.power_adc_w,
            self.power_cell_w,
        ];
        if vals.iter().all(|v| v.is_finite() && *v > 0.0) {
            Ok(())
        } else {
            Err(crate::ArchError::config(
                "component parameters must be positive and finite",
            ))
        }
    }
}

impl Default for ComponentParams {
    fn default() -> Self {
        Self::calibrated_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_values_are_valid() {
        assert!(ComponentParams::calibrated_45nm().validate().is_ok());
        assert_eq!(
            ComponentParams::default(),
            ComponentParams::calibrated_45nm()
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = ComponentParams::calibrated_45nm();
        p.area_opa_mm2 = 0.0;
        assert!(p.validate().is_err());
        let mut p = ComponentParams::calibrated_45nm();
        p.power_cell_w = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn opa_power_matches_eq7() {
        // V_s·I_q = 1.3 V × 10 µA.
        let p = ComponentParams::calibrated_45nm();
        assert!((p.power_opa_w - 1.3 * 1e-5).abs() < 1e-12);
    }
}

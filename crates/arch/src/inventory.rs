//! Component inventories of the three solver architectures.

use crate::{ArchError, Result};

/// Which solver architecture to count components for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// A single full-size INV circuit (`n × n` array, `n` op-amps,
    /// `n` DAC and `n` ADC channels).
    OriginalAmc,
    /// The one-stage BlockAMC macro: four `(n/2)²` arrays sharing one
    /// column of `n/2` op-amps and `n/2`-channel converters.
    OneStage,
    /// The two-stage solver: sixteen `(n/4)²` arrays in four one-stage
    /// macros. Per the paper, "OPAs are separately deployed for the
    /// first-stage INV and MVM, resulting in the same count of OPAs [as
    /// the original] and thus a rise of area and power" — so the OPA
    /// count stays `n` while the converter interfaces remain at the
    /// first-stage width `n/2`.
    TwoStage,
}

impl SolverKind {
    /// All architectures, in the paper's comparison order.
    pub const ALL: [SolverKind; 3] = [
        SolverKind::OriginalAmc,
        SolverKind::OneStage,
        SolverKind::TwoStage,
    ];

    /// Display label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SolverKind::OriginalAmc => "Original AMC",
            SolverKind::OneStage => "One-stage BlockAMC",
            SolverKind::TwoStage => "Two-stage BlockAMC",
        }
    }
}

/// Component counts of one solver deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentCounts {
    /// Operational amplifiers.
    pub opa: usize,
    /// DAC channels.
    pub dac: usize,
    /// ADC channels.
    pub adc: usize,
    /// RRAM cells (sum over all arrays).
    pub rram_cells: usize,
    /// Number of crossbar arrays.
    pub arrays: usize,
}

/// Counts the components a solver of kind `kind` needs for an `n × n`
/// problem.
///
/// Note: all three architectures store `n²` cells in total — BlockAMC
/// saves *periphery*, not memory (the paper's Fig. 10 shows the RRAM bar
/// nearly equal across solvers).
///
/// # Errors
///
/// Returns [`ArchError::InvalidConfig`] if `n < 4` (the two-stage solver
/// needs quarter-size blocks) — use larger problems for architecture
/// comparisons.
pub fn component_counts(kind: SolverKind, n: usize) -> Result<ComponentCounts> {
    if n < 4 {
        return Err(ArchError::config(format!(
            "architecture comparison requires n >= 4, got {n}"
        )));
    }
    let half = n.div_ceil(2);
    let quarter = n.div_ceil(4);
    Ok(match kind {
        SolverKind::OriginalAmc => ComponentCounts {
            opa: n,
            dac: n,
            adc: n,
            rram_cells: n * n,
            arrays: 1,
        },
        SolverKind::OneStage => ComponentCounts {
            opa: half,
            dac: half,
            adc: half,
            rram_cells: 4 * half * half,
            arrays: 4,
        },
        SolverKind::TwoStage => ComponentCounts {
            opa: 2 * half,
            dac: half,
            adc: half,
            rram_cells: 16 * quarter * quarter,
            arrays: 16,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_at_512_match_paper_architecture() {
        let orig = component_counts(SolverKind::OriginalAmc, 512).unwrap();
        assert_eq!(orig.opa, 512);
        assert_eq!(orig.dac, 512);
        assert_eq!(orig.adc, 512);
        assert_eq!(orig.rram_cells, 512 * 512);
        assert_eq!(orig.arrays, 1);

        let one = component_counts(SolverKind::OneStage, 512).unwrap();
        assert_eq!(one.opa, 256, "shared OPA column halves the count");
        assert_eq!(one.arrays, 4);
        assert_eq!(one.rram_cells, 512 * 512, "same total storage");

        let two = component_counts(SolverKind::TwoStage, 512).unwrap();
        assert_eq!(two.opa, 512, "separate INV/MVM deployment");
        assert_eq!(two.dac, 256);
        assert_eq!(two.arrays, 16);
        assert_eq!(two.rram_cells, 512 * 512);
    }

    #[test]
    fn odd_sizes_round_up() {
        let one = component_counts(SolverKind::OneStage, 9).unwrap();
        assert_eq!(one.opa, 5);
        assert_eq!(one.rram_cells, 4 * 25);
        let two = component_counts(SolverKind::TwoStage, 9).unwrap();
        assert_eq!(two.rram_cells, 16 * 9);
    }

    #[test]
    fn small_sizes_rejected() {
        assert!(component_counts(SolverKind::TwoStage, 2).is_err());
    }

    #[test]
    fn labels_and_all() {
        assert_eq!(SolverKind::ALL.len(), 3);
        assert_eq!(SolverKind::OriginalAmc.label(), "Original AMC");
        assert_eq!(SolverKind::OneStage.label(), "One-stage BlockAMC");
        assert_eq!(SolverKind::TwoStage.label(), "Two-stage BlockAMC");
    }
}

//! Architecture scaling: how area/power evolve with problem size, and
//! when each solver becomes infeasible on real arrays.
//!
//! The paper's core motivation is that a single array cannot exceed the
//! manufacturable size ("generally below 256×256, in the consideration of
//! multi-bit storage capability"). This module turns that constraint into
//! a feasibility table: for each problem size, which architectures fit
//! within a given maximum array dimension, and what they cost.

use crate::area::area_breakdown;
use crate::inventory::SolverKind;
use crate::params::ComponentParams;
use crate::power::power_breakdown;
use crate::{ArchError, Result};

/// The manufacturable-array ceiling the paper cites (cells per side).
pub const PAPER_MAX_ARRAY_SIDE: usize = 256;

/// Largest single-array side each architecture needs for an `n × n`
/// problem.
pub fn required_array_side(kind: SolverKind, n: usize) -> usize {
    match kind {
        SolverKind::OriginalAmc => n,
        SolverKind::OneStage => n.div_ceil(2),
        SolverKind::TwoStage => n.div_ceil(4),
    }
}

/// Returns `true` if the architecture fits within arrays of
/// `max_side × max_side` cells.
pub fn is_feasible(kind: SolverKind, n: usize, max_side: usize) -> bool {
    required_array_side(kind, n) <= max_side
}

/// One row of the scaling table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Problem size.
    pub n: usize,
    /// Architecture.
    pub kind: SolverKind,
    /// Required array side.
    pub array_side: usize,
    /// Feasible within [`PAPER_MAX_ARRAY_SIDE`]?
    pub feasible: bool,
    /// Total area, mm².
    pub area_mm2: f64,
    /// Total power, W.
    pub power_w: f64,
}

/// Computes the scaling table over the given sizes for all three
/// architectures.
///
/// # Errors
///
/// Propagates model errors; requires every size ≥ 4.
pub fn scaling_table(sizes: &[usize], params: &ComponentParams) -> Result<Vec<ScalingPoint>> {
    if sizes.is_empty() {
        return Err(ArchError::config("no sizes supplied"));
    }
    let mut out = Vec::with_capacity(sizes.len() * 3);
    for &n in sizes {
        for kind in SolverKind::ALL {
            let area = area_breakdown(kind, n, params)?;
            let power = power_breakdown(kind, n, params)?;
            out.push(ScalingPoint {
                n,
                kind,
                array_side: required_array_side(kind, n),
                feasible: is_feasible(kind, n, PAPER_MAX_ARRAY_SIDE),
                area_mm2: area.total(),
                power_w: power.total(),
            });
        }
    }
    Ok(out)
}

/// Renders the scaling table as text.
pub fn render_scaling_table(points: &[ScalingPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6} {:<22} {:>10} {:>9} {:>12} {:>11}\n",
        "n", "solver", "array", "feasible", "area (mm^2)", "power (mW)"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>6} {:<22} {:>7}x{:<3} {:>8} {:>12.5} {:>11.2}\n",
            p.n,
            p.kind.label(),
            p.array_side,
            p.array_side,
            if p.feasible { "yes" } else { "NO" },
            p.area_mm2,
            p.power_w * 1e3
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_requirements_halve_per_stage() {
        assert_eq!(required_array_side(SolverKind::OriginalAmc, 512), 512);
        assert_eq!(required_array_side(SolverKind::OneStage, 512), 256);
        assert_eq!(required_array_side(SolverKind::TwoStage, 512), 128);
        // Odd sizes round up.
        assert_eq!(required_array_side(SolverKind::OneStage, 9), 5);
    }

    #[test]
    fn feasibility_matches_the_papers_motivation() {
        // At n = 512 the original AMC needs a 512-cell array — beyond the
        // manufacturable ceiling; one-stage BlockAMC just fits; two-stage
        // fits comfortably. This is the paper's entire premise.
        assert!(!is_feasible(
            SolverKind::OriginalAmc,
            512,
            PAPER_MAX_ARRAY_SIDE
        ));
        assert!(is_feasible(SolverKind::OneStage, 512, PAPER_MAX_ARRAY_SIDE));
        assert!(is_feasible(SolverKind::TwoStage, 512, PAPER_MAX_ARRAY_SIDE));
        // And at n = 1024 only the two-stage solver survives.
        assert!(!is_feasible(
            SolverKind::OneStage,
            1024,
            PAPER_MAX_ARRAY_SIDE
        ));
        assert!(is_feasible(
            SolverKind::TwoStage,
            1024,
            PAPER_MAX_ARRAY_SIDE
        ));
    }

    #[test]
    fn table_covers_all_architectures() {
        let t = scaling_table(&[64, 512], &ComponentParams::calibrated_45nm()).unwrap();
        assert_eq!(t.len(), 6);
        assert!(t.iter().all(|p| p.area_mm2 > 0.0 && p.power_w > 0.0));
        assert!(scaling_table(&[], &ComponentParams::calibrated_45nm()).is_err());
    }

    #[test]
    fn render_marks_infeasible_rows() {
        let t = scaling_table(&[512], &ComponentParams::calibrated_45nm()).unwrap();
        let text = render_scaling_table(&t);
        assert!(text.contains("NO"));
        assert!(text.contains("yes"));
        assert!(text.contains("Original AMC"));
    }

    #[test]
    fn area_grows_monotonically_with_n() {
        let p = ComponentParams::calibrated_45nm();
        let t = scaling_table(&[64, 128, 256, 512], &p).unwrap();
        let one_stage: Vec<f64> = t
            .iter()
            .filter(|x| x.kind == SolverKind::OneStage)
            .map(|x| x.area_mm2)
            .collect();
        for w in one_stage.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}

//! Chip-area model (Fig. 10(a)).

use crate::inventory::{component_counts, SolverKind};
use crate::params::ComponentParams;
use crate::Result;

/// Area breakdown of one solver, in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// The architecture.
    pub kind: SolverKind,
    /// Problem size.
    pub n: usize,
    /// Op-amp area, mm².
    pub opa: f64,
    /// DAC area, mm².
    pub dac: f64,
    /// ADC area, mm².
    pub adc: f64,
    /// RRAM array area, mm².
    pub rram: f64,
}

impl AreaBreakdown {
    /// Total area, mm².
    pub fn total(&self) -> f64 {
        self.opa + self.dac + self.adc + self.rram
    }
}

/// Computes the area breakdown of `kind` for an `n × n` problem.
///
/// # Errors
///
/// Propagates parameter-validation and inventory errors.
pub fn area_breakdown(
    kind: SolverKind,
    n: usize,
    params: &ComponentParams,
) -> Result<AreaBreakdown> {
    params.validate()?;
    let c = component_counts(kind, n)?;
    Ok(AreaBreakdown {
        kind,
        n,
        opa: c.opa as f64 * params.area_opa_mm2,
        dac: c.dac as f64 * params.area_dac_mm2,
        adc: c.adc as f64 * params.area_adc_mm2,
        rram: c.rram_cells as f64 * params.area_cell_mm2,
    })
}

/// Relative saving of `candidate` versus `baseline` (positive = smaller).
pub fn area_saving(baseline: &AreaBreakdown, candidate: &AreaBreakdown) -> f64 {
    1.0 - candidate.total() / baseline.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_512(kind: SolverKind) -> AreaBreakdown {
        area_breakdown(kind, 512, &ComponentParams::calibrated_45nm()).unwrap()
    }

    #[test]
    fn totals_match_paper_fig10a() {
        // Paper: 0.01577 / 0.00807 / 0.01383 mm².
        let orig = at_512(SolverKind::OriginalAmc);
        let one = at_512(SolverKind::OneStage);
        let two = at_512(SolverKind::TwoStage);
        assert!(
            (orig.total() - 0.01577).abs() / 0.01577 < 0.01,
            "orig {}",
            orig.total()
        );
        assert!(
            (one.total() - 0.00807).abs() / 0.00807 < 0.01,
            "one {}",
            one.total()
        );
        assert!(
            (two.total() - 0.01383).abs() / 0.01383 < 0.01,
            "two {}",
            two.total()
        );
    }

    #[test]
    fn savings_match_abstract() {
        // Abstract: one-stage saves 48.83%; §IV.B: two-stage saves 12.3%.
        let orig = at_512(SolverKind::OriginalAmc);
        let one = at_512(SolverKind::OneStage);
        let two = at_512(SolverKind::TwoStage);
        let s1 = area_saving(&orig, &one);
        let s2 = area_saving(&orig, &two);
        assert!((s1 - 0.4883).abs() < 0.005, "one-stage saving {s1}");
        assert!((s2 - 0.123).abs() < 0.005, "two-stage saving {s2}");
    }

    #[test]
    fn rram_area_is_equal_across_solvers() {
        let orig = at_512(SolverKind::OriginalAmc);
        let one = at_512(SolverKind::OneStage);
        assert!((orig.rram - one.rram).abs() < 1e-12);
    }

    #[test]
    fn periphery_dominates_area() {
        let orig = at_512(SolverKind::OriginalAmc);
        assert!(orig.opa + orig.dac + orig.adc > 10.0 * orig.rram);
    }

    #[test]
    fn scales_with_n() {
        let p = ComponentParams::calibrated_45nm();
        let small = area_breakdown(SolverKind::OneStage, 64, &p).unwrap();
        let large = area_breakdown(SolverKind::OneStage, 128, &p).unwrap();
        assert!(large.total() > small.total());
    }
}

use std::fmt;

/// Error type for `amc-arch` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// Invalid model parameters or problem size.
    InvalidConfig {
        /// Explanation of what was wrong.
        message: String,
    },
}

impl ArchError {
    /// Shorthand constructor for [`ArchError::InvalidConfig`].
    pub fn config(message: impl Into<String>) -> Self {
        ArchError::InvalidConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidConfig { message } => {
                write!(f, "invalid architecture model configuration: {message}")
            }
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        let e = ArchError::config("n must be >= 2");
        assert!(e.to_string().contains("n must be >= 2"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
